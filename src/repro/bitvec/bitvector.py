"""Packed bit-vectors used to annotate JSON chunks with predicate validity.

CIAO clients produce one :class:`BitVector` per pushed-down predicate per
chunk (bit ``1`` = the record *may* satisfy the predicate, bit ``0`` = the
record definitely does not).  The server unions them to decide which records
to load and intersects them to skip tuples at query time, so the hot
operations here are ``|``, ``&``, ``count`` and ``iter_set``.

Bits are packed little-endian within each byte: bit ``i`` lives at
``data[i // 8] >> (i % 8) & 1``.  All logical operators require equal-length
operands; mixing chunk sizes is a logic error and raises ``ValueError``.

The bulk operations (``intersect_update``, ``union_update``, ``slice``,
``concat``, ``select``, ``count``, ``iter_set``) are implemented as
word-level kernels over Python big-ints: the whole payload is reinterpreted
as one little-endian integer and combined with a single C-level ``&``/``|``/
shift, so cost scales with machine words, not bits.  A 1M-bit intersect is
two ``int.from_bytes`` calls, one ``&``, and one ``to_bytes`` — orders of
magnitude faster than a per-byte Python loop
(``benchmarks/bench_parallel_ingest.py`` tracks the ratio).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence


class BitVector:
    """A fixed-length sequence of bits with fast bulk logical operations.

    >>> bv = BitVector.from_bits([1, 0, 1, 1])
    >>> bv.count()
    3
    >>> list(bv.iter_set())
    [0, 2, 3]
    """

    __slots__ = ("_length", "_data")

    def __init__(self, length: int,
                 data: bytearray | bytes | memoryview | None = None):
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        self._length = length
        nbytes = (length + 7) // 8
        if data is None:
            self._data = bytearray(nbytes)
        else:
            if len(data) != nbytes:
                raise ValueError(
                    f"need {nbytes} bytes for {length} bits, got {len(data)}"
                )
            self._data = bytearray(data)
            self._mask_tail()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, length: int) -> "BitVector":
        """A vector of *length* cleared bits."""
        return cls(length)

    @classmethod
    def ones(cls, length: int) -> "BitVector":
        """A vector of *length* set bits."""
        bv = cls(length)
        bv._data = bytearray(b"\xff" * len(bv._data))
        bv._mask_tail()
        return bv

    #: Bits packed per accumulator word in :meth:`from_bits`.  4096 bits
    #: keeps each big-int update on a 512-byte integer (cheap to shift and
    #: OR) while amortizing the ``to_bytes`` flush across many elements.
    _PACK_CHUNK = 4096

    @classmethod
    def from_bits(cls, bits: Sequence[int] | Iterable[int]) -> "BitVector":
        """Build from an iterable of truthy/falsy values.

        This is the batch engine's selection-vector builder (one call per
        predicate per :class:`~repro.engine.batch.ColumnBatch`), so like
        the other bulk operations it works word-level: truthy positions
        are accumulated into a chunked big-int and flushed with a single
        ``to_bytes`` per chunk instead of per-bit byte indexing.
        """
        if not isinstance(bits, (list, tuple)):
            bits = list(bits)
        n = len(bits)
        bv = cls(n)
        data = bv._data
        chunk_size = cls._PACK_CHUNK
        for base in range(0, n, chunk_size):
            acc = 0
            chunk = bits[base:base + chunk_size]
            for offset, bit in enumerate(chunk):
                if bit:
                    acc |= 1 << offset
            if acc:
                nbytes = (len(chunk) + 7) >> 3
                start = base >> 3
                data[start:start + nbytes] = acc.to_bytes(nbytes, "little")
        return bv

    @classmethod
    def from_indices(cls, length: int, indices: Iterable[int]) -> "BitVector":
        """Build a *length*-bit vector with the given positions set."""
        bv = cls(length)
        for i in indices:
            bv.set(i)
        return bv

    @classmethod
    def from_bools(cls, bools: Iterable[bool]) -> "BitVector":
        """Alias of :meth:`from_bits` reading better at call sites."""
        return cls.from_bits(bools)

    # ------------------------------------------------------------------
    # Single-bit access
    # ------------------------------------------------------------------
    def set(self, index: int, value: bool = True) -> None:
        """Set (or clear, with ``value=False``) bit *index*."""
        self._check_index(index)
        if value:
            self._data[index >> 3] |= 1 << (index & 7)
        else:
            self._data[index >> 3] &= ~(1 << (index & 7)) & 0xFF

    def clear(self, index: int) -> None:
        """Clear bit *index*."""
        self.set(index, False)

    def get(self, index: int) -> bool:
        """Return bit *index* as a bool."""
        self._check_index(index)
        return bool(self._data[index >> 3] >> (index & 7) & 1)

    def __getitem__(self, index: int) -> bool:
        if isinstance(index, slice):
            raise TypeError("use .slice(start, stop) for sub-vectors")
        if index < 0:
            index += self._length
        return self.get(index)

    def __setitem__(self, index: int, value: bool) -> None:
        if index < 0:
            index += self._length
        self.set(index, bool(value))

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        combined = int.from_bytes(self._data, "little") & int.from_bytes(
            other._data, "little"
        )
        return self._from_int(combined)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        combined = int.from_bytes(self._data, "little") | int.from_bytes(
            other._data, "little"
        )
        return self._from_int(combined)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        combined = int.from_bytes(self._data, "little") ^ int.from_bytes(
            other._data, "little"
        )
        return self._from_int(combined)

    def _from_int(self, value: int) -> "BitVector":
        out = BitVector(self._length)
        out._data = bytearray(value.to_bytes(len(self._data), "little"))
        out._mask_tail()
        return out

    def __invert__(self) -> "BitVector":
        out = BitVector(self._length)
        nbytes = len(self._data)
        if nbytes:
            flipped = int.from_bytes(self._data, "little") ^ (
                (1 << (nbytes * 8)) - 1
            )
            out._data[:] = flipped.to_bytes(nbytes, "little")
            out._mask_tail()
        return out

    def intersect_update(self, other: "BitVector") -> None:
        """In-place AND, avoiding an allocation on the hot skipping path."""
        self._check_compatible(other)
        nbytes = len(self._data)
        if nbytes:
            combined = int.from_bytes(self._data, "little") & int.from_bytes(
                other._data, "little"
            )
            self._data[:] = combined.to_bytes(nbytes, "little")

    def union_update(self, other: "BitVector") -> None:
        """In-place OR, used when folding per-predicate vectors for loading."""
        self._check_compatible(other)
        nbytes = len(self._data)
        if nbytes:
            combined = int.from_bytes(self._data, "little") | int.from_bytes(
                other._data, "little"
            )
            self._data[:] = combined.to_bytes(nbytes, "little")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of set bits (population count)."""
        return int.from_bytes(self._data, "little").bit_count()

    def any(self) -> bool:
        """True if at least one bit is set."""
        return any(self._data)

    def all(self) -> bool:
        """True if every bit is set."""
        return self.count() == self._length

    def density(self) -> float:
        """Fraction of set bits; 0.0 for the empty vector."""
        if self._length == 0:
            return 0.0
        return self.count() / self._length

    def iter_set(self) -> Iterator[int]:
        """Yield the indices of set bits in increasing order."""
        data = self._data
        for word_index in range(0, len(data), 8):
            word = int.from_bytes(data[word_index:word_index + 8], "little")
            base = word_index << 3
            while word:
                low = word & -word
                yield base + low.bit_length() - 1
                word ^= low

    def to_bits(self) -> List[int]:
        """Expand to a list of 0/1 ints (small vectors / tests only)."""
        return [1 if self.get(i) else 0 for i in range(self._length)]

    def slice(self, start: int, stop: int) -> "BitVector":
        """Copy of bits ``[start, stop)`` as a new vector."""
        if not 0 <= start <= stop <= self._length:
            raise ValueError(f"bad slice [{start}, {stop}) of {self._length} bits")
        width = stop - start
        out = BitVector(width)
        if width:
            window = (int.from_bytes(self._data, "little") >> start) & (
                (1 << width) - 1
            )
            out._data[:] = window.to_bytes(len(out._data), "little")
        return out

    def concat(self, other: "BitVector") -> "BitVector":
        """New vector holding ``self`` followed by ``other``."""
        out = BitVector(self._length + other._length)
        if out._length:
            combined = int.from_bytes(self._data, "little") | (
                int.from_bytes(other._data, "little") << self._length
            )
            out._data[:] = combined.to_bytes(len(out._data), "little")
        return out

    def select(self, positions: Sequence[int]) -> "BitVector":
        """Gather bits at *positions* into a dense ``len(positions)``-vector.

        Bit ``i`` of the result is ``self[positions[i]]``.  This is the bulk
        primitive behind deriving row-group bit-vectors from chunk vectors:
        the loader keeps only the parsed positions, and the stored vector
        must be re-indexed to the surviving rows.  Out-of-range positions
        raise ``IndexError``.
        """
        out = BitVector(len(positions))
        data = self._data
        length = self._length
        gathered = 0
        for row, position in enumerate(positions):
            if not 0 <= position < length:
                raise IndexError(
                    f"bit {position} out of range for {length} bits"
                )
            if data[position >> 3] >> (position & 7) & 1:
                gathered |= 1 << row
        if gathered:
            out._data[:] = gathered.to_bytes(len(out._data), "little")
        return out

    # ------------------------------------------------------------------
    # Serialization (wire format for the client/server protocol)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize as ``<u32 length little-endian><packed payload>``."""
        return self._length.to_bytes(4, "little") + bytes(self._data)

    @classmethod
    def from_bytes(cls, raw: bytes | memoryview) -> "BitVector":
        """Inverse of :meth:`to_bytes`; strict about payload size and padding.

        Wire decoding is deliberately unforgiving: a payload whose size does
        not match the declared length, or whose tail padding carries set
        bits, is corrupt.  Constructing a vector from it anyway (as
        ``__init__``'s silent ``_mask_tail`` would) would *change semantics*
        — bits a client set would vanish — so corruption fails loudly here
        instead.
        """
        if len(raw) < 4:
            raise ValueError("bit-vector payload shorter than its header")
        length = int.from_bytes(raw[:4], "little")
        payload = raw[4:]
        nbytes = (length + 7) // 8
        if len(payload) != nbytes:
            raise ValueError(
                f"need {nbytes} payload bytes for {length} bits, "
                f"got {len(payload)}"
            )
        tail = length & 7
        if tail and nbytes and payload[-1] >> tail:
            raise ValueError(
                "nonzero bits in the tail padding of a bit-vector payload"
            )
        return cls(length, payload)

    def serialized_size(self) -> int:
        """Byte size :meth:`to_bytes` will produce (header + payload)."""
        return 4 + len(self._data)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._length == other._length and self._data == other._data

    def __hash__(self) -> int:
        return hash((self._length, bytes(self._data)))

    def __repr__(self) -> str:
        if self._length <= 64:
            bits = "".join(str(b) for b in self.to_bits())
            return f"BitVector({bits!r})"
        return f"BitVector(length={self._length}, set={self.count()})"

    def copy(self) -> "BitVector":
        """Independent copy."""
        return BitVector(self._length, bytes(self._data))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _mask_tail(self) -> None:
        tail = self._length & 7
        if tail and self._data:
            self._data[-1] &= (1 << tail) - 1

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._length:
            raise IndexError(f"bit {index} out of range for {self._length} bits")

    def _check_compatible(self, other: "BitVector") -> None:
        if self._length != other._length:
            raise ValueError(
                f"length mismatch: {self._length} vs {other._length} bits"
            )


def intersect_all(vectors: Sequence[BitVector]) -> BitVector:
    """AND a non-empty sequence of equal-length vectors.

    This is the data-skipping primitive: a query's conjunctive predicates map
    to one vector each and a tuple survives only if *every* vector agrees.
    """
    if not vectors:
        raise ValueError("intersect_all needs at least one vector")
    out = vectors[0].copy()
    for vec in vectors[1:]:
        out.intersect_update(vec)
    return out


def union_all(vectors: Sequence[BitVector]) -> BitVector:
    """OR a non-empty sequence of equal-length vectors.

    This is the partial-loading primitive: a record is loaded if it is valid
    for *at least one* pushed-down predicate.
    """
    if not vectors:
        raise ValueError("union_all needs at least one vector")
    out = vectors[0].copy()
    for vec in vectors[1:]:
        out.union_update(vec)
    return out
