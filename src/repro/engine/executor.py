"""Query execution entry point."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .catalog import Catalog, TableEntry
from .operators import ExecutionStats, Operator
from .planner import PlanInfo, plan_query
from .sql import ParsedQuery, parse_sql


@dataclass
class QueryResult:
    """Rows plus everything the experiments measure about the run."""

    rows: List[Dict[str, Any]]
    stats: ExecutionStats
    plan_info: PlanInfo
    wall_seconds: float

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result (COUNT(*))."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(
                f"result is not scalar: {len(self.rows)} rows"
            )
        return next(iter(self.rows[0].values()))


class Executor:
    """Parse → plan → run against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def execute(self, sql: str) -> QueryResult:
        """Run one SQL statement."""
        parsed = parse_sql(sql)
        return self.execute_parsed(parsed)

    def execute_parsed(self, parsed: ParsedQuery) -> QueryResult:
        """Run an already-parsed statement."""
        table = self.catalog.lookup(parsed.table)
        return run_plan(*plan_query(parsed, table))


def run_plan(plan: Operator, info: PlanInfo) -> QueryResult:
    """Drive an operator tree to completion."""
    stats = ExecutionStats()
    start = time.perf_counter()
    rows = list(plan.execute(stats))
    elapsed = time.perf_counter() - start
    stats.rows_emitted = len(rows)
    return QueryResult(
        rows=rows, stats=stats, plan_info=info, wall_seconds=elapsed
    )
