"""Synthetic stand-in for the LogHub Windows System Log dataset.

The real dataset is a 27 GB text dump of a Windows 7 machine: timestamp, log
level, the service that produced the entry, and a message.  CIAO assumes
clients emit JSON, so each entry here is a JSON object with ``time``,
``level``, ``component`` and ``info`` keys.

Table II alignment:

=========================  ===========  =================================
Template                   #Candidates  Realized here by
=========================  ===========  =================================
``info LIKE <string>``     200          200 keywords, Zipf-spread probs
``time LIKE`` (month)      12           months uniform
``time LIKE`` (day)        31           days ~uniform
``time LIKE`` (hour)       24           hours uniform
``time LIKE`` (minute)     60           minutes uniform
``time LIKE`` (second)     60           seconds uniform
=========================  ===========  =================================

The micro-benchmarks (Figs 7–12) additionally need predicates whose
selectivities are roughly 0.35 / 0.15 / 0.01; the ``component`` field's
weights are chosen so ``component = "CBS"`` ≈ 0.35, ``component = "CSI"``
≈ 0.15 and ``component = "WuaEng"`` ≈ 0.01, mirroring how the authors picked
attributes "whose frequencies roughly represent the corresponding
selectivity".
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Tuple

from .base import DatasetGenerator
from .textgen import keyword_pool, sentence
from .zipf import WeightedSampler

#: (component, frequency) pairs; frequencies double as exact selectivities
#: for ``component = <value>`` predicates.
COMPONENTS: List[Tuple[str, float]] = [
    ("CBS", 0.35),
    ("CSI", 0.15),
    ("WindowsUpdateAgent", 0.14),
    ("Defender", 0.12),
    ("Kernel-General", 0.10),
    ("DistributedCOM", 0.07),
    ("GroupPolicy", 0.06),
    ("WuaEng", 0.01),
]

#: Log-level distribution.
LEVELS: List[Tuple[str, float]] = [
    ("Info", 0.70),
    ("Warning", 0.20),
    ("Error", 0.09),
    ("Critical", 0.01),
]

#: 200 message keywords for the ``info LIKE`` template.  The first three
#: rank bands are *selectivity plateaus* at 0.35 / 0.15 / 0.01 — six
#: keywords each — so the sensitivity micro-benchmarks (Figs 7–12) can draw
#: several predicates of (roughly) equal selectivity, exactly as the
#: authors picked attributes "whose frequencies roughly represent the
#: corresponding selectivity".  The remaining ranks decay like real log
#: token frequencies.
INFO_KEYWORD_COUNT = 200
INFO_KEYWORDS: List[str] = keyword_pool("evt", INFO_KEYWORD_COUNT)
SELECTIVITY_PLATEAUS: List[Tuple[float, int]] = [
    (0.35, 6), (0.15, 6), (0.01, 6),
]


def _keyword_probs() -> List[float]:
    probs: List[float] = []
    for level, width in SELECTIVITY_PLATEAUS:
        probs.extend([level] * width)
    tail = INFO_KEYWORD_COUNT - len(probs)
    probs.extend(0.08 / (1 + rank) ** 0.9 for rank in range(tail))
    return probs


INFO_KEYWORD_PROBS: List[float] = _keyword_probs()


def plateau_keyword_ranks(level: float) -> List[int]:
    """Ranks of the keywords planted with exactly probability *level*."""
    start = 0
    for plateau, width in SELECTIVITY_PLATEAUS:
        if plateau == level:
            return list(range(start, start + width))
        start += width
    raise KeyError(
        f"no selectivity plateau at {level}; available: "
        f"{[p for p, _ in SELECTIVITY_PLATEAUS]}"
    )

#: The log spans 226 days in the paper; we cover 2016-01-01 .. 2016-08-13.
LOG_YEAR = 2016
LOG_MONTH_DAYS: List[Tuple[int, int]] = [
    (1, 31), (2, 29), (3, 31), (4, 30),
    (5, 31), (6, 30), (7, 31), (8, 13),
]


def component_selectivity(component: str) -> float:
    """Exact selectivity of ``component = <component>``."""
    for name, weight in COMPONENTS:
        if name == component:
            return weight
    raise KeyError(f"unknown component {component!r}")


class WinLogGenerator(DatasetGenerator):
    """Generator for synthetic Windows system-log records."""

    name = "winlog"

    def __init__(self, seed: int):
        super().__init__(seed)
        rng = self._rng
        self._components = WeightedSampler(
            [c for c, _ in COMPONENTS], [w for _, w in COMPONENTS], rng
        )
        self._levels = WeightedSampler(
            [lv for lv, _ in LEVELS], [w for _, w in LEVELS], rng
        )
        months = [m for m, _ in LOG_MONTH_DAYS]
        weights = [float(d) for _, d in LOG_MONTH_DAYS]
        self._months = WeightedSampler(months, weights, rng)
        self._month_days = dict(LOG_MONTH_DAYS)
        head = sum(width for _, width in SELECTIVITY_PLATEAUS)
        self._tail_cumulative: List[float] = []
        acc = 0.0
        for rank in range(head, INFO_KEYWORD_COUNT):
            acc += INFO_KEYWORD_PROBS[rank]
            self._tail_cumulative.append(acc)
        self._tail_total = acc
        self._next_event_id = 0

    def record(self) -> Dict[str, Any]:
        """One log entry as a JSON object.

        ``event_id`` is a monotone sequence number, as real log shippers
        attach: arrival order correlates with it perfectly, which is what
        makes min/max zone-map pruning on it effective (the zone-map
        extension and its ablation bench rely on this clustering).
        """
        rng = self._rng
        month = self._months.draw()
        day = rng.randint(1, self._month_days[month])
        hour = rng.randint(0, 23)
        minute = rng.randint(0, 59)
        second = rng.randint(0, 59)
        event_id = self._next_event_id
        self._next_event_id += 1
        return {
            "event_id": event_id,
            "time": (
                f"{LOG_YEAR:04d}-{month:02d}-{day:02d} "
                f"{hour:02d}:{minute:02d}:{second:02d}"
            ),
            "level": self._levels.draw(),
            "component": self._components.draw(),
            "info": self._message(),
        }

    def _message(self) -> str:
        """A log message with per-rank keyword planting.

        The plateau ranks are planted with *exact* per-keyword draws (their
        selectivities are contract: the micro-benchmarks rely on them).  The
        long decaying tail is approximated with one aggregate draw — plant
        "some tail keyword" with probability Σ tail probs, then pick which
        one proportionally — trimming ~180 RNG calls per record while
        keeping each tail keyword's marginal probability exact.
        """
        rng = self._rng
        words = sentence(rng, rng.randint(6, 14))
        planted: List[str] = []
        head = sum(width for _, width in SELECTIVITY_PLATEAUS)
        for rank in range(head):
            if rng.random() < INFO_KEYWORD_PROBS[rank]:
                planted.append(INFO_KEYWORDS[rank])
        if rng.random() < self._tail_total:
            pick = rng.random() * self._tail_total
            offset = bisect.bisect_left(self._tail_cumulative, pick)
            planted.append(INFO_KEYWORDS[head + offset])
        if planted:
            tokens = words.split(" ")
            for keyword in planted:
                tokens.insert(rng.randrange(len(tokens) + 1), keyword)
            words = " ".join(tokens)
        return words
