"""Unit tests for selectivity estimation."""

import pytest

from repro.core import clause, exact, key_value, substring
from repro.rawjson import dump_record
from repro.workload import (
    MIN_SELECTIVITY,
    estimate_selectivities,
    estimate_selectivity,
    false_positive_rates,
    measure_raw_hit_rates,
)

SAMPLE = [
    {"name": "Bob", "age": 10, "text": "aaa"},
    {"name": "Bob", "age": 20, "text": "bbb"},
    {"name": "Eve", "age": 10, "text": "contains kw here"},
    {"name": "Eve", "age": 30, "text": "kw"},
]
RAW = [dump_record(r) for r in SAMPLE]


class TestEstimates:
    def test_exact_fraction(self):
        assert estimate_selectivity(
            clause(exact("name", "Bob")), SAMPLE
        ) == pytest.approx(0.5)

    def test_zero_hits_floored(self):
        got = estimate_selectivity(clause(exact("name", "Zed")), SAMPLE)
        assert got == MIN_SELECTIVITY

    def test_batch_matches_single(self):
        clauses = [
            clause(exact("name", "Bob")),
            clause(key_value("age", 10)),
            clause(substring("text", "kw")),
        ]
        batch = estimate_selectivities(clauses, SAMPLE)
        for c in clauses:
            assert batch[c] == estimate_selectivity(c, SAMPLE)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            estimate_selectivity(clause(exact("a", "b")), [])
        with pytest.raises(ValueError):
            estimate_selectivities([], [])


class TestRawHitRates:
    def test_hit_rate_includes_false_positives(self):
        # "kw" appears in the text of two records; raw matching also sees
        # it anywhere in the serialized object.
        c = clause(substring("text", "kw"))
        rates = measure_raw_hit_rates([c], RAW)
        assert rates[c] >= estimate_selectivity(c, SAMPLE) - 1e-9

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            measure_raw_hit_rates([], [])


class TestFalsePositiveRates:
    def test_zero_for_precise_patterns(self):
        c = clause(exact("name", "Bob"))
        rates = false_positive_rates([c], SAMPLE, RAW)
        assert rates[c] == 0.0

    def test_positive_for_ambiguous_numbers(self):
        # age = 10 matches the raw "10" inside other numeric contexts;
        # construct a record where 10 appears under another key.
        sample = [{"age": 5, "zip": 10}, {"age": 10}]
        raw = [dump_record(r) for r in sample]
        c = clause(key_value("age", 5))
        # record 2: age=10 → semantic false; pattern "5"? no. Use zip=10:
        c2 = clause(key_value("zip", 10))
        rates = false_positive_rates([c, c2], sample, raw)
        assert 0.0 <= rates[c] <= 1.0
        assert 0.0 <= rates[c2] <= 1.0

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            false_positive_rates([], SAMPLE, RAW[:-1])
