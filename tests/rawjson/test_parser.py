"""Unit tests for the recursive-descent JSON parser."""

import json

import pytest

from repro.rawjson import (
    JsonSyntaxError,
    loads,
    parse_lines,
    parse_object,
    try_parse,
)


class TestValues:
    @pytest.mark.parametrize(
        "text",
        [
            "{}",
            "[]",
            '{"a": 1}',
            '{"a": {"b": [1, 2, {"c": null}]}}',
            '[1, 2.5, "x", true, false, null]',
            '"plain"',
            "-12",
            "0.125",
            '{"nested": {"deep": {"deeper": [[[1]]]}}}',
        ],
    )
    def test_agrees_with_stdlib(self, text):
        assert loads(text) == json.loads(text)

    def test_duplicate_keys_keep_last(self):
        # Matches stdlib json and most real-world parsers.
        assert loads('{"a": 1, "a": 2}') == {"a": 2}

    def test_number_types_preserved(self):
        value = loads('[1, 1.0]')
        assert isinstance(value[0], int)
        assert isinstance(value[1], float)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "{",
            "}",
            '{"a"}',
            '{"a": }',
            '{"a": 1,}',
            "[1, ]",
            "[1 2]",
            '{"a": 1} extra',
            "{'a': 1}",
            '{"a": 1 "b": 2}',
            '{1: 2}',
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ValueError):
            loads(text)

    def test_depth_limit(self):
        deep = "[" * 200 + "]" * 200
        with pytest.raises(JsonSyntaxError):
            loads(deep)

    def test_error_carries_position(self):
        with pytest.raises(JsonSyntaxError) as info:
            loads('{"a": 1,}')
        assert info.value.position == 8


class TestParseObject:
    def test_accepts_objects_only(self):
        assert parse_object('{"x": 1}') == {"x": 1}
        with pytest.raises(JsonSyntaxError):
            parse_object("[1]")
        with pytest.raises(JsonSyntaxError):
            parse_object('"str"')


class TestParseLines:
    def test_skips_blank_lines(self):
        lines = ['{"a": 1}', "", "  ", '{"a": 2}']
        assert list(parse_lines(lines)) == [{"a": 1}, {"a": 2}]

    def test_propagates_errors(self):
        with pytest.raises(ValueError):
            list(parse_lines(['{"a": 1}', "{broken"]))


class TestTryParse:
    def test_ok_path(self):
        value, ok = try_parse('{"a": [1]}')
        assert ok and value == {"a": [1]}

    def test_error_path(self):
        value, ok = try_parse("{nope")
        assert not ok and value is None

    def test_lexical_error_path(self):
        value, ok = try_parse('"unterminated')
        assert not ok and value is None
