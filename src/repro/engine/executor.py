"""Query execution entry point.

``run_plan`` drives the batch engine: the operator tree exchanges
columnar batches and rows are only materialized once, at the result
boundary.  Mid-load aggregate queries against a snapshot-mode table are
routed through the incremental snapshot cache
(:mod:`repro.engine.snapcache`), which reuses per-part partial aggregates
across successive snapshots instead of rescanning sealed parts.

Observability (``repro.obs``) hangs off the :class:`Executor`, not the
operators: per-query counters, spans, and the query-log record are all
folded from :class:`ExecutionStats`/:class:`PlanInfo` *after* the plan
runs, so the batch scan loop itself carries zero instrumentation and
the disabled path stays within the overhead guard asserted by
``benchmarks/bench_query_engine.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..obs.metrics import Metrics, resolve_metrics
from ..obs.querylog import (
    QueryLog,
    QueryLogRecord,
    current_client_id,
    resolve_query_log,
)
from ..obs.tracing import Tracer, resolve_tracer
from .catalog import Catalog
from .operators import ExecutionStats, Operator
from .planner import PlanInfo, plan_query
from .sql import ParsedQuery, parse_sql


@dataclass
class QueryResult:
    """Rows plus everything the experiments measure about the run."""

    rows: List[Dict[str, Any]]
    stats: ExecutionStats
    plan_info: PlanInfo
    wall_seconds: float

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result (COUNT(*))."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(
                f"result is not scalar: {len(self.rows)} rows"
            )
        return next(iter(self.rows[0].values()))


class Executor:
    """Parse → plan → run against a catalog.

    *metrics*, *tracer*, and *query_log* default to the shared no-op
    instances; a deployment that wants observability constructs real
    ones and injects them (``CiaoSession`` does this when asked).
    """

    def __init__(self, catalog: Catalog, *,
                 metrics: Optional[Metrics] = None,
                 tracer: Optional[Tracer] = None,
                 query_log: Optional[QueryLog] = None):
        self.catalog = catalog
        self.tracer = resolve_tracer(tracer)
        self.query_log = resolve_query_log(query_log)
        metrics = resolve_metrics(metrics)
        self.metrics = metrics
        # Instruments are cached once; the per-query path only ever
        # calls inc/observe on them (no-ops on the null registry).
        self._m_queries = metrics.counter("engine.queries")
        self._m_latency = metrics.histogram("engine.query_seconds")
        self._m_rows_emitted = metrics.counter("engine.rows_emitted")
        self._m_rows_examined = metrics.counter("engine.rows_examined")
        self._m_rg_scanned = metrics.counter("scan.row_groups_scanned")
        self._m_rg_skipped = metrics.counter("scan.row_groups_skipped")
        self._m_rg_pruned = metrics.counter("scan.row_groups_pruned")
        self._m_tuples_skipped = metrics.counter("scan.tuples_skipped")
        self._m_cache_hits = metrics.counter("snapcache.hits")
        self._m_cache_misses = metrics.counter("snapcache.misses")
        # One flag gates the whole fold, so a fully-disabled executor
        # adds a single attribute check per query over bare run_plan.
        self._observing = (
            metrics.enabled or self.query_log.enabled or self.tracer.enabled
        )

    def execute(self, sql: str) -> QueryResult:
        """Run one SQL statement."""
        parsed = parse_sql(sql)
        return self.execute_parsed(parsed, sql=sql)

    def execute_parsed(self, parsed: ParsedQuery,
                       sql: str = "") -> QueryResult:
        """Run an already-parsed statement.

        Aggregate queries over a table in snapshot-scan mode go through
        the incremental snapshot cache: sealed parts are immutable, so
        repeated mid-load aggregates only scan newly sealed parts plus
        the sideline delta.  Everything else plans and runs cold.
        """
        table = self.catalog.lookup(parsed.table)
        if not self._observing:
            return self._run(parsed, table)
        with self.tracer.trace("engine.query",
                               attrs={"table": parsed.table}):
            result = self._run(parsed, table)
            self._observe(parsed, result, sql)
        return result

    def _run(self, parsed: ParsedQuery, table) -> QueryResult:
        if table.in_snapshot_mode and parsed.is_aggregate:
            from .snapcache import execute_snapshot_aggregate
            with self.tracer.trace("engine.aggregate"):
                return execute_snapshot_aggregate(parsed, table,
                                                  table.snapshot_cache)
        with self.tracer.trace("engine.plan"):
            plan, info = plan_query(parsed, table)
        with self.tracer.trace("engine.scan"):
            return run_plan(plan, info)

    # ------------------------------------------------------------------
    def _observe(self, parsed: ParsedQuery, result: QueryResult,
                 sql: str) -> None:
        """Fold one finished query into metrics and the query log."""
        stats = result.stats
        info = result.plan_info
        self._m_queries.inc()
        self._m_latency.observe(result.wall_seconds)
        self._m_rows_emitted.inc(stats.rows_emitted)
        self._m_rows_examined.inc(stats.rows_examined)
        scanned = max(
            0, stats.row_groups_total - stats.row_groups_skipped
        )
        self._m_rg_scanned.inc(scanned)
        self._m_rg_skipped.inc(stats.row_groups_skipped)
        self._m_rg_pruned.inc(stats.row_groups_pruned_by_zonemap)
        self._m_tuples_skipped.inc(
            stats.tuples_skipped + stats.tuples_pruned_by_zonemap
        )
        self._m_cache_hits.inc(info.snapshot_cache_hits)
        self._m_cache_misses.inc(info.snapshot_cache_misses)
        if not self.query_log.enabled:
            return
        from .snapcache import query_fingerprint
        predicate_columns = (
            tuple(sorted(parsed.where.columns()))
            if parsed.where is not None else ()
        )
        skipped = stats.tuples_skipped + stats.tuples_pruned_by_zonemap
        candidates = stats.rows_examined + skipped
        selectivity = (
            stats.rows_examined / candidates if candidates > 0 else 1.0
        )
        if info.snapshot_cache_hits and info.snapshot_cache_misses:
            cache_outcome = "mixed"
        elif info.snapshot_cache_hits:
            cache_outcome = "hit"
        elif info.snapshot_cache_misses:
            cache_outcome = "miss"
        else:
            cache_outcome = "none"
        current = self.tracer.current()
        self.query_log.append(QueryLogRecord(
            fingerprint=query_fingerprint(parsed),
            table=parsed.table,
            sql=sql,
            predicate_columns=predicate_columns,
            selectivity=selectivity,
            rows_examined=stats.rows_examined,
            rows_emitted=stats.rows_emitted,
            row_groups_scanned=scanned,
            row_groups_skipped=stats.row_groups_skipped,
            row_groups_pruned=stats.row_groups_pruned_by_zonemap,
            tuples_skipped=skipped,
            snapshot_cache=cache_outcome,
            wall_seconds=result.wall_seconds,
            client_id=current_client_id(),
            trace_id=current.trace_id if current is not None else None,
        ))


def run_plan(plan: Operator, info: PlanInfo) -> QueryResult:
    """Drive an operator tree to completion (batch execution)."""
    stats = ExecutionStats()
    start = time.perf_counter()
    rows: List[Dict[str, Any]] = []
    for batch in plan.batches(stats):
        rows.extend(batch.iter_rows())
    elapsed = time.perf_counter() - start
    stats.rows_emitted = len(rows)
    return QueryResult(
        rows=rows, stats=stats, plan_info=info, wall_seconds=elapsed
    )
