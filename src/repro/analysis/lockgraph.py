"""Cross-module lock-acquisition graph, built statically from the AST.

Nodes are lock *declarations* — ``ClassName.attr`` for locks created in
a class (``self._lock = threading.Lock()`` or the sanitizer factories),
``module.name`` for module-level locks.  An edge ``A -> B`` means "some
code path acquires B while holding A": either a ``with`` statement
lexically nested inside another, or a call made under ``A`` to a
function whose (transitively computed) effect acquires ``B``.

Call effects are resolved by name, conservatively: ``self.m()`` binds to
the same class's ``m`` when it exists, any other ``obj.m()`` unions over
every known method named ``m``, and plain ``f()`` prefers the defining
module before falling back project-wide.  Over-approximation can add
edges that no real execution takes — acceptable for a deadlock linter,
where the cost of a false edge is a review, and the runtime sanitizer
(:mod:`repro.analysis.sanitizer`) cross-checks the graph against orders
a real run actually observed.

The review's verdict is recorded inline: a call site marked
``# ciaolint: allow[LCK002] -- reason`` is excluded from the call graph
— the reviewer asserts the call's *real* binding acquires no project
locks, so the conservative name union (e.g. ``.close()`` matching every
class with a ``close`` method) must not poison its callers' effects.
That keeps a reviewed false edge from fabricating a cycle, both here
and in the sanitizer's static/observed union, while the orders real
executions take remain fully checked at runtime.

``@guarded_by("_lock")`` methods are analyzed as if their body ran with
that lock held, so the requirement propagates to their callers' edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .model import Project, SourceModule

Edge = Tuple[str, str]

_LOCK_FACTORIES = {"make_lock", "make_rlock", "make_condition"}
_THREADING_LOCKS = {"Lock", "RLock", "Condition"}

#: The linter's own package is excluded from the graph: the sanitizer's
#: internal bookkeeping lock is a leaf by construction (its critical
#: sections only touch private containers), but name-based call
#: resolution would bind its ``.clear()``/``.append()`` calls to
#: arbitrary project methods and fabricate edges from it.
_SELF_PACKAGE = "repro/analysis/"


@dataclass
class LockDecl:
    """One lock declaration site."""

    lock_id: str
    rel_path: str
    line: int


@dataclass
class ClassInfo:
    """Per-class facts shared by the lock checkers."""

    module: SourceModule
    node: ast.ClassDef
    name: str
    #: lock attribute name -> declaration line.
    lock_attrs: Dict[str, int] = field(default_factory=dict)
    #: method name -> FunctionDef (direct children only).
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)

    def lock_id(self, attr: str) -> str:
        return f"{self.name}.{attr}"


@dataclass
class FunctionFacts:
    """What one function acquires and calls, with held-lock context."""

    key: Tuple[str, Optional[str], str]  # (rel_path, class, func)
    rel_path: str
    #: (lock_id, held stack at acquisition, line).
    acquisitions: List[Tuple[str, Tuple[str, ...], int]] = field(
        default_factory=list
    )
    #: (callee ref, held stack at call, line).
    calls: List[Tuple[Tuple[str, str], Tuple[str, ...], int]] = field(
        default_factory=list
    )


@dataclass
class LockGraph:
    """The assembled graph: declarations, edges, and provenance."""

    locks: Dict[str, LockDecl] = field(default_factory=dict)
    #: edge -> representative (rel_path, line) where it was derived.
    edges: Dict[Edge, Tuple[str, int]] = field(default_factory=dict)

    def edge_set(self) -> Set[Edge]:
        return set(self.edges)

    def cycles(self) -> List[List[str]]:
        """Every nontrivial strongly connected component (lock cycle)."""
        graph: Dict[str, List[str]] = {}
        for (src, dst) in self.edges:
            graph.setdefault(src, []).append(dst)
            graph.setdefault(dst, [])
        order: List[str] = []
        seen: Set[str] = set()
        for root in sorted(graph):
            if root in seen:
                continue
            stack: List[Tuple[str, int]] = [(root, 0)]
            seen.add(root)
            while stack:
                node, idx = stack.pop()
                children = graph[node]
                if idx < len(children):
                    stack.append((node, idx + 1))
                    child = children[idx]
                    if child not in seen:
                        seen.add(child)
                        stack.append((child, 0))
                else:
                    order.append(node)
        reverse: Dict[str, List[str]] = {node: [] for node in graph}
        for (src, dst) in self.edges:
            reverse[dst].append(src)
        assigned: Set[str] = set()
        components: List[List[str]] = []
        for root in reversed(order):
            if root in assigned:
                continue
            component: List[str] = []
            stack2 = [root]
            assigned.add(root)
            while stack2:
                node = stack2.pop()
                component.append(node)
                for prev in reverse[node]:
                    if prev not in assigned:
                        assigned.add(prev)
                        stack2.append(prev)
            components.append(sorted(component))
        return [
            c for c in components
            if len(c) > 1 or (c[0], c[0]) in self.edges
        ]


def _is_lock_creation(value: ast.AST) -> bool:
    """True when *value* contains a lock-constructing call."""
    for node in ast.walk(value):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "threading"
                    and func.attr in _THREADING_LOCKS):
                return True
            if func.attr in _LOCK_FACTORIES:
                return True
        elif isinstance(func, ast.Name):
            if func.id in _THREADING_LOCKS or func.id in _LOCK_FACTORIES:
                return True
    return False


def collect_classes(module: SourceModule) -> List[ClassInfo]:
    """Every class in *module* with its lock attributes and methods."""
    classes: List[ClassInfo] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = ClassInfo(module=module, node=node, name=node.name)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[child.name] = child
        for method in info.methods.values():
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not _is_lock_creation(stmt.value):
                    continue
                for target in stmt.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        info.lock_attrs.setdefault(
                            target.attr, stmt.lineno
                        )
        classes.append(info)
    return classes


def module_level_locks(module: SourceModule) -> Dict[str, int]:
    """Module-global lock names -> declaration line."""
    locks: Dict[str, int] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign) and _is_lock_creation(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    locks.setdefault(target.id, stmt.lineno)
    return locks


def guarded_by_decorations(func: ast.AST) -> List[str]:
    """Lock attribute names from an ``@guarded_by(...)`` decorator."""
    names: List[str] = []
    for deco in getattr(func, "decorator_list", []):
        if not isinstance(deco, ast.Call):
            continue
        target = deco.func
        deco_name = (
            target.id if isinstance(target, ast.Name)
            else target.attr if isinstance(target, ast.Attribute)
            else None
        )
        if deco_name != "guarded_by":
            continue
        for arg in deco.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                names.append(arg.value)
    return names


class _FunctionVisitor(ast.NodeVisitor):
    """Walk one function body tracking the held-lock stack."""

    def __init__(self, facts: FunctionFacts,
                 class_info: Optional[ClassInfo],
                 module_locks: Dict[str, int],
                 module_stem: str,
                 initial_held: Sequence[str]):
        self.facts = facts
        self.class_info = class_info
        self.module_locks = module_locks
        self.module_stem = module_stem
        self.held: List[str] = list(initial_held)

    # -- lock identification ------------------------------------------
    def _lock_id_for(self, expr: ast.AST) -> Optional[str]:
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and self.class_info is not None
                and expr.attr in self.class_info.lock_attrs):
            return self.class_info.lock_id(expr.attr)
        if isinstance(expr, ast.Name) and expr.id in self.module_locks:
            return f"{self.module_stem}.{expr.id}"
        return None

    # -- traversal -----------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):  # e.g. clock.window()
                lock_id = None
            else:
                lock_id = self._lock_id_for(expr)
            self.visit(expr)
            if lock_id is not None:
                self.facts.acquisitions.append(
                    (lock_id, tuple(self.held), node.lineno)
                )
                self.held.append(lock_id)
                pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    def visit_Call(self, node: ast.Call) -> None:
        ref = _callee_ref(node.func)
        if ref is not None:
            self.facts.calls.append((ref, tuple(self.held), node.lineno))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are analyzed as their own functions

    def visit_AsyncFunctionDef(self, node) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _callee_ref(func: ast.AST) -> Optional[Tuple[str, str]]:
    if isinstance(func, ast.Name):
        return ("func", func.id)
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            return ("self", func.attr)
        return ("method", func.attr)
    return None


def build_lock_graph(project: Project) -> LockGraph:
    """Assemble the cross-module lock graph for *project*."""
    graph = LockGraph()
    # Call sites whose derived edges a reviewer has waived (false edges
    # from conservative name resolution).
    waived: Set[Tuple[str, int]] = {
        (module.rel_path, marker.line)
        for module in project.modules
        for marker in module.allow_markers
        if marker.covers("LCK002", "lock-discipline")
    }
    all_classes: List[ClassInfo] = []
    facts_by_key: Dict[Tuple[str, Optional[str], str], FunctionFacts] = {}
    # Indexes for call resolution.
    methods_by_name: Dict[str, List[Tuple[str, Optional[str], str]]] = {}
    funcs_by_module: Dict[Tuple[str, str],
                          Tuple[str, Optional[str], str]] = {}
    funcs_by_name: Dict[str, List[Tuple[str, Optional[str], str]]] = {}
    class_init: Dict[str, Tuple[str, Optional[str], str]] = {}

    def analyze(func: ast.AST, module: SourceModule,
                class_info: Optional[ClassInfo],
                module_locks: Dict[str, int]) -> FunctionFacts:
        name = func.name
        key = (module.rel_path,
               class_info.name if class_info else None, name)
        facts = FunctionFacts(key=key, rel_path=module.rel_path)
        initial = []
        if class_info is not None:
            for lock_attr in guarded_by_decorations(func):
                if lock_attr in class_info.lock_attrs:
                    initial.append(class_info.lock_id(lock_attr))
        visitor = _FunctionVisitor(
            facts, class_info, module_locks,
            Path(module.rel_path).stem, initial,
        )
        for stmt in func.body:
            visitor.visit(stmt)
        facts.calls = [
            call for call in facts.calls
            if (facts.rel_path, call[2]) not in waived
        ]
        return facts

    for module in project.modules:
        if _SELF_PACKAGE in module.rel_path:
            continue
        module_locks = module_level_locks(module)
        stem = Path(module.rel_path).stem
        for lock_name, line in module_locks.items():
            lock_id = f"{stem}.{lock_name}"
            graph.locks.setdefault(
                lock_id, LockDecl(lock_id, module.rel_path, line)
            )
        classes = collect_classes(module)
        all_classes.extend(classes)
        for info in classes:
            for attr, line in info.lock_attrs.items():
                lock_id = info.lock_id(attr)
                graph.locks.setdefault(
                    lock_id, LockDecl(lock_id, module.rel_path, line)
                )
            for method in info.methods.values():
                facts = analyze(method, module, info, module_locks)
                facts_by_key[facts.key] = facts
                methods_by_name.setdefault(method.name, []).append(
                    facts.key
                )
                if method.name == "__init__":
                    class_init[info.name] = facts.key
        # Module-level and nested functions (not class methods).
        method_nodes = {
            m for info in classes for m in info.methods.values()
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if node in method_nodes:
                continue
            facts = analyze(node, module, None, module_locks)
            facts_by_key[facts.key] = facts
            funcs_by_module[(module.rel_path, node.name)] = facts.key
            funcs_by_name.setdefault(node.name, []).append(facts.key)

    class_by_name = {info.name: info for info in all_classes}

    def resolve(ref: Tuple[str, str], caller_key) -> List:
        kind, name = ref
        caller_module, caller_class, _ = caller_key
        if kind == "self":
            if caller_class is not None:
                key = (caller_module, caller_class, name)
                if key in facts_by_key:
                    return [key]
            return methods_by_name.get(name, [])
        if kind == "method":
            return methods_by_name.get(name, [])
        # Plain name: same-module function, then a class constructor,
        # then any function with that name anywhere.
        key = funcs_by_module.get((caller_module, name))
        if key is not None:
            return [key]
        if name in class_by_name and name in class_init:
            return [class_init[name]]
        return funcs_by_name.get(name, [])

    # Transitive acquisition effects, to fixpoint.
    acquires: Dict[Tuple, Set[str]] = {
        key: {lock for lock, _, _ in facts.acquisitions}
        for key, facts in facts_by_key.items()
    }
    changed = True
    while changed:
        changed = False
        for key, facts in facts_by_key.items():
            for ref, _, _ in facts.calls:
                for target in resolve(ref, key):
                    extra = acquires.get(target, set()) - acquires[key]
                    if extra:
                        acquires[key] |= extra
                        changed = True

    # Edges: direct nesting plus call effects under a held lock.
    for key, facts in facts_by_key.items():
        for lock, held, line in facts.acquisitions:
            for holder in held:
                if holder != lock:
                    graph.edges.setdefault(
                        (holder, lock), (facts.rel_path, line)
                    )
        for ref, held, line in facts.calls:
            if not held:
                continue
            for target in resolve(ref, key):
                for lock in acquires.get(target, ()):
                    for holder in held:
                        if holder != lock:
                            graph.edges.setdefault(
                                (holder, lock), (facts.rel_path, line)
                            )
    return graph


def build_lock_graph_from_paths(paths: Iterable[Path],
                                root: Optional[Path] = None) -> LockGraph:
    """Convenience: load a :class:`Project` from *paths* and build."""
    return build_lock_graph(Project.load(paths, root=root))
