"""A small SQL parser covering the paper's query shapes and a bit more.

Grammar (case-insensitive keywords)::

    query      := SELECT select_list FROM ident [WHERE disj] [LIMIT int]
    select_list:= '*' | item (',' item)*
    item       := agg '(' ('*' | ident) ')' | ident
    agg        := COUNT | SUM | AVG | MIN | MAX
    disj       := conj (OR conj)*
    conj       := unary (AND unary)*
    unary      := NOT unary | '(' disj ')' | predicate
    predicate  := ident (('='|'!='|'<>'|'<'|'<='|'>'|'>=') literal
                 | LIKE string
                 | IS [NOT] NULL
                 | IN '(' literal (',' literal)* ')')
    literal    := string | number | TRUE | FALSE | NULL

``col != NULL`` is accepted as the paper writes it (sugar for IS NOT NULL);
``col IN (...)`` desugars to a disjunction of equalities — exactly the
disjunctive clauses of §V-A.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Union

from .expressions import (
    And,
    Column,
    Comparison,
    Expr,
    IsNotNull,
    IsNull,
    LikeExpr,
    Literal,
    Not,
    Or,
)

AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class SqlError(ValueError):
    """Malformed SQL text."""


@dataclass(frozen=True)
class SelectItem:
    """One projection item: a column or an aggregate over one column/'*'."""

    aggregate: Optional[str]  # None for a bare column
    column: str               # '*' only valid under COUNT

    @property
    def label(self) -> str:
        """Output column name."""
        if self.aggregate is None:
            return self.column
        return f"{self.aggregate.lower()}({self.column})"


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed SELECT statement."""

    select: Tuple[SelectItem, ...]
    table: str
    where: Optional[Expr]
    limit: Optional[int]
    group_by: Tuple[str, ...] = ()

    @property
    def is_aggregate(self) -> bool:
        """True if any select item aggregates or the query groups."""
        return bool(self.group_by) or any(
            item.aggregate for item in self.select
        )


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
      | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
      | (?P<symbol><>|!=|<=|>=|[(),*=<>])
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise SqlError(f"cannot tokenize SQL at: {remainder[:30]!r}")
        pos = match.end()
        kind = match.lastgroup
        tokens.append((kind, match.group(kind)))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._pos = 0

    # -- token helpers --------------------------------------------------
    def _peek(self) -> Tuple[str, str]:
        return self._tokens[self._pos]

    def _next(self) -> Tuple[str, str]:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        kind, value = self._peek()
        if kind == "ident" and value.upper() == word:
            self._pos += 1
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            kind, value = self._peek()
            raise SqlError(f"expected {word}, found {value!r}")

    def _accept_symbol(self, symbol: str) -> bool:
        kind, value = self._peek()
        if kind == "symbol" and value == symbol:
            self._pos += 1
            return True
        return False

    def _expect_symbol(self, symbol: str) -> None:
        if not self._accept_symbol(symbol):
            kind, value = self._peek()
            raise SqlError(f"expected {symbol!r}, found {value!r}")

    def _expect_ident(self) -> str:
        kind, value = self._peek()
        if kind != "ident":
            raise SqlError(f"expected an identifier, found {value!r}")
        self._pos += 1
        return value

    # -- grammar ---------------------------------------------------------
    def parse(self) -> ParsedQuery:
        self._expect_keyword("SELECT")
        select = self._select_list()
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._disjunction()
        group_by: List[str] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expect_ident())
            while self._accept_symbol(","):
                group_by.append(self._expect_ident())
        limit = None
        if self._accept_keyword("LIMIT"):
            kind, value = self._next()
            if kind != "number" or "." in value:
                raise SqlError(f"LIMIT needs an integer, found {value!r}")
            limit = int(value)
        kind, value = self._peek()
        if kind != "eof":
            raise SqlError(f"trailing SQL after statement: {value!r}")
        return ParsedQuery(tuple(select), table, where, limit,
                           tuple(group_by))

    def _select_list(self) -> List[SelectItem]:
        if self._accept_symbol("*"):
            return [SelectItem(None, "*")]
        items = [self._select_item()]
        while self._accept_symbol(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        name = self._expect_ident()
        if name.upper() in AGGREGATES and self._accept_symbol("("):
            agg = name.upper()
            if self._accept_symbol("*"):
                if agg != "COUNT":
                    raise SqlError(f"{agg}(*) is not valid SQL")
                column = "*"
            else:
                column = self._expect_ident()
            self._expect_symbol(")")
            return SelectItem(agg, column)
        return SelectItem(None, name)

    def _disjunction(self) -> Expr:
        children = [self._conjunction()]
        while self._accept_keyword("OR"):
            children.append(self._conjunction())
        if len(children) == 1:
            return children[0]
        return Or(tuple(children))

    def _conjunction(self) -> Expr:
        children = [self._unary()]
        while self._accept_keyword("AND"):
            children.append(self._unary())
        if len(children) == 1:
            return children[0]
        return And(tuple(children))

    def _unary(self) -> Expr:
        if self._accept_keyword("NOT"):
            return Not(self._unary())
        if self._accept_symbol("("):
            inner = self._disjunction()
            self._expect_symbol(")")
            return inner
        return self._predicate()

    def _predicate(self) -> Expr:
        column = Column(self._expect_ident())
        if self._accept_keyword("LIKE"):
            kind, value = self._next()
            if kind != "string":
                raise SqlError("LIKE needs a string pattern")
            return LikeExpr(column, _unquote(value))
        if self._accept_keyword("IS"):
            negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNotNull(column) if negated else IsNull(column)
        if self._accept_keyword("IN"):
            self._expect_symbol("(")
            literals = [self._literal()]
            while self._accept_symbol(","):
                literals.append(self._literal())
            self._expect_symbol(")")
            return Or(
                tuple(
                    Comparison(column, "=", Literal(v)) for v in literals
                )
            )
        kind, value = self._peek()
        if kind == "symbol" and value in ("=", "!=", "<>", "<", "<=", ">",
                                          ">="):
            self._pos += 1
            op = "!=" if value == "<>" else value
            operand = self._literal()
            if operand is None:
                # The paper's `col != NULL` / `col = NULL` forms.
                return IsNotNull(column) if op == "!=" else IsNull(column)
            return Comparison(column, op, Literal(operand))
        raise SqlError(f"expected a predicate operator, found {value!r}")

    def _literal(self) -> Any:
        kind, value = self._next()
        if kind == "string":
            return _unquote(value)
        if kind == "number":
            if "." in value or "e" in value or "E" in value:
                return float(value)
            return int(value)
        if kind == "ident":
            upper = value.upper()
            if upper == "TRUE":
                return True
            if upper == "FALSE":
                return False
            if upper == "NULL":
                return None
        raise SqlError(f"expected a literal, found {value!r}")


def _unquote(token: str) -> str:
    return token[1:-1].replace("''", "'")


def parse_sql(text: str) -> ParsedQuery:
    """Parse one SELECT statement."""
    if not text or not text.strip():
        raise SqlError("empty SQL text")
    return _Parser(text).parse()
