"""Raw-CSV substrate: CIAO's no-parse matching applied to CSV records.

The paper notes its solution "can also be applied to other text-based data
formats, like CSV" (§IV-A); this package makes that concrete: an RFC
4180-style codec plus pattern matchers that evaluate the supported
predicates on serialized CSV lines without parsing them, under the same
one-sided-error contract as the JSON matchers.
"""

from .codec import (
    CsvCodec,
    CsvDialect,
    CsvError,
    escape_field,
    parse_line,
    parse_line_details,
    write_row,
)
from .matcher import (
    CompiledCsvClause,
    CsvUnsupportedError,
    compile_csv_clause,
    compile_csv_predicate,
)

__all__ = [
    "CompiledCsvClause",
    "CsvCodec",
    "CsvDialect",
    "CsvError",
    "CsvUnsupportedError",
    "compile_csv_clause",
    "compile_csv_predicate",
    "escape_field",
    "parse_line",
    "parse_line_details",
    "write_row",
]
