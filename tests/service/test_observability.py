"""End-to-end observability: one trace across the wire, query log, STATS.

The acceptance path for the obs subsystem: a ``RemoteSession.query()``
over a real :class:`SocketChannel` produces a single exported trace
containing both the client-side ``remote.query`` span and the
server-side ``service.query``/``engine.*`` spans, and the serving
session's query log records predicate columns and skip/scan counts.
"""

import json

import pytest

from repro.api import Budget, CiaoSession, Query, Workload, clause, key_value
from repro.obs import Metrics, QueryLog, Tracer
from repro.service import STATS_FORMAT, CiaoService, RemoteSession
from repro.transport import wire

SEED = 4321
N_RECORDS = 600
SQL_FILTERED = "SELECT COUNT(*) FROM t WHERE stars = 5"


@pytest.fixture()
def obs():
    return {
        "metrics": Metrics(),
        "tracer": Tracer("server"),
        "query_log": QueryLog(),
    }


@pytest.fixture()
def loaded_session(obs, tmp_path):
    workload = Workload(
        (Query((clause(key_value("stars", 5)),), name="five"),),
        dataset="yelp",
    )
    session = CiaoSession(
        workload, source="yelp", seed=SEED,
        data_dir=tmp_path / "obs-served", **obs,
    )
    session.plan(Budget(1.0))
    session.load(n_records=N_RECORDS).result()
    yield session
    session.close()


@pytest.fixture()
def service(loaded_session):
    with CiaoService(loaded_session) as service:
        yield service


class TestTraceAcrossTheWire:
    def test_single_trace_spans_both_processes(self, service):
        client_tracer = Tracer("client")
        with RemoteSession(service.address,
                           tracer=client_tracer) as remote:
            result = remote.query(SQL_FILTERED)
        assert result.scalar() > 0

        spans = client_tracer.spans()
        names = {s.name for s in spans}
        assert "remote.query" in names       # client side
        assert "service.query" in names      # server side, adopted
        assert "engine.query" in names
        # Exactly one trace id across every span.
        assert len({s.trace_id for s in spans}) == 1

        by_name = {s.name: s for s in spans}
        root = by_name["remote.query"]
        assert root.parent_id is None
        assert by_name["service.query"].parent_id == root.span_id
        assert by_name["engine.query"].parent_id == \
            by_name["service.query"].span_id
        # plan/scan nest under the engine span.
        for leaf in ("engine.plan", "engine.scan"):
            assert by_name[leaf].parent_id == \
                by_name["engine.query"].span_id

    def test_tree_and_chrome_export_cover_the_trace(self, service):
        client_tracer = Tracer("client")
        with RemoteSession(service.address,
                           tracer=client_tracer) as remote:
            remote.query(SQL_FILTERED)
        (root,) = client_tracer.span_tree()
        assert root["name"] == "remote.query"
        child_names = [c["name"] for c in root["children"]]
        assert child_names == ["service.query"]
        doc = client_tracer.chrome_trace()
        assert {e["name"] for e in doc["traceEvents"]} >= {
            "remote.query", "service.query", "engine.query",
        }
        json.dumps(doc)

    def test_untraced_client_leaves_no_server_spans_behind(
            self, obs, service):
        with RemoteSession(service.address) as remote:
            remote.query(SQL_FILTERED)
        # No trace context arrived, so the service filed nothing under
        # a wire trace id and shipped no spans.
        assert all(s.name != "service.query"
                   for s in obs["tracer"].spans())

    def test_server_tracer_drained_per_request(self, obs, service):
        client_tracer = Tracer("client")
        with RemoteSession(service.address,
                           tracer=client_tracer) as remote:
            remote.query(SQL_FILTERED)
        # The request's spans were shipped to the client, not retained.
        shipped = {s.span_id for s in client_tracer.spans()}
        for span in obs["tracer"].spans():
            assert span.span_id not in shipped


class TestQueryLog:
    def test_records_predicates_and_skip_counts(self, obs, service):
        log = obs["query_log"]
        log.drain()
        with RemoteSession(service.address,
                           client_id="obs-client") as remote:
            remote.query(SQL_FILTERED)
        (rec,) = log.records()
        assert rec.predicate_columns == ("stars",)
        assert rec.table == "t"
        assert rec.sql == SQL_FILTERED
        assert rec.client_id == "obs-client"
        assert rec.rows_examined > 0
        assert rec.row_groups_scanned + rec.row_groups_skipped > 0
        assert 0.0 <= rec.selectivity <= 1.0
        assert rec.wall_seconds >= 0.0

    def test_session_query_log_drains(self, obs, loaded_session):
        loaded_session.query(SQL_FILTERED)
        records = loaded_session.query_log(drain=True)
        assert records, "local query must be logged too"
        assert loaded_session.query_log() == []

    def test_local_queries_attributed_to_local(self, obs, loaded_session):
        obs["query_log"].drain()
        loaded_session.query(SQL_FILTERED)
        (rec,) = obs["query_log"].records()
        assert rec.client_id == "local"


class TestStats:
    def test_remote_stats_document(self, obs, service):
        with RemoteSession(service.address) as remote:
            remote.query(SQL_FILTERED)
            doc = remote.stats(query_log_tail=10)
        assert doc["format"] == STATS_FORMAT
        assert doc["connections"] >= 1
        assert doc["admission"]["granted"] >= 1
        counters = doc["metrics"]["counters"]
        assert counters["engine.queries"] >= 1
        assert any(r["sql"] == SQL_FILTERED for r in doc["query_log"])

    def test_stats_without_tail_omits_query_log(self, service):
        with RemoteSession(service.address) as remote:
            doc = remote.stats()
        assert "query_log" not in doc

    def test_stats_wire_message_shape(self, service):
        from repro.transport.sockets import SocketChannel
        from repro.transport.wire import decode_message, encode_message

        channel = SocketChannel.connect(service.address)
        channel.send(encode_message(wire.HELLO, {
            "client_id": "raw", "protocol": wire.PROTOCOL_VERSION,
        }))
        decode_message(channel.receive_wait(5.0))  # WELCOME
        channel.send(encode_message(wire.STATS, {}))
        reply = decode_message(channel.receive_wait(5.0))
        assert reply.tag == wire.STATS
        assert reply.header["format"] == STATS_FORMAT
        doc = json.loads(reply.body.decode("utf-8"))
        assert "metrics" in doc and "admission" in doc
        channel.close()


class TestServiceMetrics:
    def test_socket_and_service_counters_advance(self, obs, service):
        with RemoteSession(service.address) as remote:
            remote.query(SQL_FILTERED)
        snap = obs["metrics"].snapshot()
        counters = snap["counters"]
        assert counters["service.connections_accepted"] >= 1
        assert counters["socket.frames_in"] >= 1
        assert counters["socket.frames_out"] >= 1
        assert counters["socket.bytes_in"] > 0
        assert counters["socket.bytes_out"] > 0
        assert counters["engine.queries"] >= 1
        assert snap["histograms"]["engine.query_seconds"]["count"] >= 1
