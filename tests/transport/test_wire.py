"""Service wire codec: round trips, strict decoding, fuzzed truncation."""

import pytest

from repro.transport import Message, WireError, decode_message, encode_message
from repro.transport import wire


ALL_TAGS = sorted(wire._TAG_NAMES)


class TestRoundTrip:
    @pytest.mark.parametrize("tag", ALL_TAGS)
    def test_every_tag(self, tag):
        message = decode_message(encode_message(
            tag, {"k": "v", "n": 7}, b"\x00body\xff"
        ))
        assert message.tag == tag
        assert message.header == {"k": "v", "n": 7}
        assert message.body == b"\x00body\xff"
        assert message.name == wire.tag_name(tag)

    def test_defaults(self):
        message = decode_message(encode_message(wire.HELLO))
        assert message.header == {}
        assert message.body == b""

    def test_empty_header_nonempty_body(self):
        message = decode_message(
            encode_message(wire.CHUNKS, None, b"x" * 1000)
        )
        assert message.header == {}
        assert message.body == b"x" * 1000

    def test_header_encoding_is_canonical(self):
        # Key-sorted, whitespace-free: byte-stable across dict orders.
        a = encode_message(wire.QUERY, {"sql": "S", "snapshot": True})
        b = encode_message(wire.QUERY, {"snapshot": True, "sql": "S"})
        assert a == b

    def test_message_dataclass_default_isolated(self):
        first = Message(wire.HELLO)
        first.header["polluted"] = True
        assert Message(wire.HELLO).header == {}


class TestEncodeStrictness:
    def test_unknown_tag_rejected(self):
        with pytest.raises(WireError, match="unknown"):
            encode_message(200)

    def test_header_ceiling_enforced(self):
        with pytest.raises(WireError, match="ceiling"):
            encode_message(
                wire.HELLO, {"pad": "x" * (wire.MAX_HEADER_BYTES + 1)}
            )

    def test_body_must_be_bytes(self):
        with pytest.raises(WireError, match="bytes"):
            encode_message(wire.CHUNKS, {}, "text")


class TestDecodeStrictness:
    def test_bad_magic(self):
        payload = bytearray(encode_message(wire.HELLO, {"a": 1}))
        payload[:4] = b"NOPE"
        with pytest.raises(WireError, match="magic"):
            decode_message(bytes(payload))

    def test_unknown_tag(self):
        payload = bytearray(encode_message(wire.HELLO))
        payload[4] = 250
        with pytest.raises(WireError, match="unknown"):
            decode_message(bytes(payload))

    def test_truncation_at_every_offset(self):
        # Strictness satellite: any prefix of a valid message is an
        # error, never a misparse.
        payload = encode_message(
            wire.QUERY, {"sql": "SELECT COUNT(*) FROM t"}, b"body!"
        )
        for cut in range(len(payload)):
            with pytest.raises(WireError):
                decode_message(payload[:cut])

    def test_trailing_bytes_rejected(self):
        payload = encode_message(wire.BYE) + b"\x00"
        with pytest.raises(WireError, match="trailing"):
            decode_message(payload)

    def test_header_declares_past_ceiling(self):
        payload = bytearray(encode_message(wire.HELLO))
        declared = wire.MAX_HEADER_BYTES + 1
        payload[5:9] = declared.to_bytes(4, "little")
        with pytest.raises(WireError, match="ceiling"):
            decode_message(bytes(payload))

    def test_header_bad_json(self):
        good = encode_message(wire.HELLO, {"ab": 1})
        payload = bytearray(good)
        # Corrupt one byte inside the JSON header region.
        payload[10] = 0xFF
        with pytest.raises(WireError):
            decode_message(bytes(payload))

    def test_header_must_be_object(self):
        header_bytes = b"[1,2]"
        payload = (
            wire.MAGIC + bytes((wire.HELLO,))
            + len(header_bytes).to_bytes(4, "little") + header_bytes
            + (0).to_bytes(4, "little")
        )
        with pytest.raises(WireError, match="object"):
            decode_message(payload)


class TestOverSocket:
    def test_messages_survive_a_real_socket(self):
        from repro.transport import socket_pair

        a, b = socket_pair()
        a.send(encode_message(wire.HELLO, {"client_id": "c"}, b""))
        a.send(encode_message(wire.CHUNKS, {"frames": 2}, b"\x01" * 64))
        first = decode_message(b.receive_wait(5.0))
        second = decode_message(b.receive_wait(5.0))
        assert first.name == "HELLO"
        assert first.header["client_id"] == "c"
        assert second.name == "CHUNKS"
        assert second.body == b"\x01" * 64
        a.close()
        b.close()
