"""Metrics registry: concurrency-exact totals and the free null path."""

import threading
import tracemalloc

import pytest

from repro.obs import Metrics, NullMetrics
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRICS,
    resolve_metrics,
)


class TestInstruments:
    def test_counter_increments(self):
        metrics = Metrics()
        counter = metrics.counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_gauge_set_inc_dec(self):
        gauge = Metrics().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_histogram_buckets_cumulative(self):
        hist = Metrics().histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["le"] == [0.1, 1.0, 10.0]
        assert snap["counts"] == [1, 1, 1, 1]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(55.55)

    def test_histogram_upper_edge_inclusive(self):
        hist = Metrics().histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.snapshot()["counts"] == [1, 0, 0]

    def test_histogram_rejects_bad_buckets(self):
        metrics = Metrics()
        with pytest.raises(ValueError):
            metrics.histogram("empty", buckets=())
        with pytest.raises(ValueError):
            metrics.histogram("unsorted", buckets=(2.0, 1.0))

    def test_default_buckets_ascending(self):
        bounds = list(DEFAULT_LATENCY_BUCKETS)
        assert bounds == sorted(bounds)


class TestRegistry:
    def test_same_name_same_instrument(self):
        metrics = Metrics()
        assert metrics.counter("x") is metrics.counter("x")
        assert metrics.gauge("y") is metrics.gauge("y")
        assert metrics.histogram("z") is metrics.histogram("z")

    def test_snapshot_shape(self):
        metrics = Metrics()
        metrics.counter("c").inc(3)
        metrics.gauge("g").set(1.5)
        metrics.histogram("h").observe(0.01)
        snap = metrics.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_resolve_defaults_to_null(self):
        assert resolve_metrics(None) is NULL_METRICS
        real = Metrics()
        assert resolve_metrics(real) is real


class TestConcurrency:
    N_THREADS = 8
    N_INCS = 2000

    def test_counter_totals_exact(self):
        counter = Metrics().counter("c")

        def work():
            for _ in range(self.N_INCS):
                counter.inc()

        threads = [threading.Thread(target=work)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == self.N_THREADS * self.N_INCS

    def test_histogram_totals_exact(self):
        hist = Metrics().histogram("h", buckets=(0.5,))

        def work():
            for i in range(self.N_INCS):
                hist.observe(0.25 if i % 2 == 0 else 0.75)

        threads = [threading.Thread(target=work)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = self.N_THREADS * self.N_INCS
        snap = hist.snapshot()
        assert snap["count"] == total
        assert snap["counts"] == [total // 2, total // 2]

    def test_registry_create_race_single_instrument(self):
        metrics = Metrics()
        seen = []
        barrier = threading.Barrier(self.N_THREADS)

        def work():
            barrier.wait()
            seen.append(metrics.counter("contended"))

        threads = [threading.Thread(target=work)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1


class TestNullMetrics:
    def test_shared_singletons(self):
        null = Metrics.null()
        assert null is NULL_METRICS
        assert isinstance(null, NullMetrics)
        assert null.counter("a") is null.counter("b")
        assert null.gauge("a") is null.gauge("b")
        assert null.histogram("a") is null.histogram("b")
        assert not null.enabled

    def test_null_snapshot_empty(self):
        null = Metrics.null()
        null.counter("c").inc(100)
        assert null.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_null_hot_loop_allocation_free(self):
        """The disabled path must not allocate per observation."""
        counter = NULL_METRICS.counter("scan.rows")
        hist = NULL_METRICS.histogram("scan.seconds")

        def loop(n):
            for _ in range(n):
                counter.inc()
                hist.observe(0.001)

        loop(100)  # warm up
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        loop(10_000)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grown = sum(
            stat.size_diff
            for stat in after.compare_to(before, "lineno")
            if stat.size_diff > 0
        )
        # Tolerance covers tracemalloc's own bookkeeping; a per-call
        # allocation in the loop would show up as ~10k objects.
        assert grown < 64 * 1024
