"""Log analytics: the paper's motivating data-center scenario.

A central log server collects syslog-style events from many machines.
Analysts repeatedly filter on components, log levels, and message
keywords; most events are never touched by any query.  CIAO pushes the hot
predicates to the log shippers and the server loads only what the workload
can reach — this example sweeps the client budget and prints how loading
and query time respond (a miniature of the paper's Fig. 3).

Run:  python examples/log_analytics.py
"""

import tempfile
import time

from repro import Budget, CiaoOptimizer, CiaoServer, CostModel, \
    DEFAULT_COEFFICIENTS, SimulatedClient
from repro.data import make_generator
from repro.workload import estimate_selectivities, table3_workload

N_RECORDS = 8000
N_QUERIES = 30
BUDGETS_US = [0.0, 0.5, 1.0, 2.0, 4.0]


def run_budget(budget_us, workload, generator, lines, sample):
    """One sweep point: returns (loading_s, query_s, ratio, n_pushed)."""
    cost_model = CostModel(
        DEFAULT_COEFFICIENTS, generator.average_record_length()
    )
    plan = None
    if budget_us > 0:
        selectivities = estimate_selectivities(
            workload.candidate_pool, sample
        )
        optimizer = CiaoOptimizer(workload, selectivities, cost_model)
        plan = optimizer.plan(Budget(budget_us))

    with tempfile.TemporaryDirectory() as workdir:
        server = CiaoServer(workdir, plan=plan, workload=workload)
        client = SimulatedClient("shipper", plan=plan, chunk_size=1000)
        start = time.perf_counter()
        for chunk in client.process(iter(lines)):
            server.ingest(chunk)
        summary = server.finalize_loading()
        loading_s = time.perf_counter() - start

        start = time.perf_counter()
        for query in workload.queries:
            server.query(query.sql("t"))
        query_s = time.perf_counter() - start
    return loading_s, query_s, summary.loading_ratio, \
        (len(plan) if plan else 0)


def main() -> None:
    generator = make_generator("winlog", seed=2021)
    lines = list(generator.raw_lines(N_RECORDS))
    sample = generator.sample(2000)
    workload = table3_workload(
        "winlog", "A", seed=2021, n_queries=N_QUERIES
    )
    print(
        f"Workload: {len(workload)} queries, "
        f"{len(workload.candidate_pool)} distinct predicates, "
        f"{N_RECORDS} log events\n"
    )
    header = (
        f"{'budget':>8} {'#pushed':>8} {'load ratio':>11} "
        f"{'loading(s)':>11} {'query(s)':>9} {'end-to-end(s)':>14}"
    )
    print(header)
    print("-" * len(header))
    baseline = None
    for budget in BUDGETS_US:
        loading, query, ratio, pushed = run_budget(
            budget, workload, generator, lines, sample
        )
        total = loading + query
        if baseline is None:
            baseline = total
        print(
            f"{budget:>7.1f}µ {pushed:>8} {ratio:>11.2f} "
            f"{loading:>11.2f} {query:>9.2f} {total:>11.2f} "
            f"({baseline / total:.1f}x)"
        )


if __name__ == "__main__":
    main()
