"""Crash recovery: durable manifests rebuild servers and sessions.

The contract under test is the paper-system's fault story: a kill -9
loses at most the unsealed tail (everything past the last checkpoint),
recovery quarantines torn parts instead of crashing, recovered answers
are byte-identical over the same sealed set, and the recovered ingest
ledger makes client replay exactly-once.
"""

import json

import pytest

from repro.api import CiaoSession
from repro.api.config import DeploymentConfig
from repro.client.protocol import encode_chunk
from repro.obs.metrics import Metrics
from repro.rawjson.chunks import JsonChunk
from repro.recovery import Manifest, ManifestError
from repro.server.ciao import CiaoServer
from repro.service.results import canonical_result_bytes


def batch(i, rows=4):
    records = [
        json.dumps({"k": f"v{i % 3}", "n": i}) for _ in range(rows)
    ]
    return encode_chunk(JsonChunk(chunk_id=i, records=records))


def durable_server(path, **kwargs):
    kwargs.setdefault("n_shards", 2)
    kwargs.setdefault("shard_mode", "thread")
    kwargs.setdefault("seal_interval", 2)
    return CiaoServer(path, durable=True, **kwargs)


def feed(server, seqs, client_id="c1", source_id="src"):
    session = server.open_ingest_session(source_id)
    for seq in seqs:
        session.ingest_sequenced(batch(seq), seq=seq, client_id=client_id)
    return session


class TestDurableManifest:
    def test_constructor_writes_loading_manifest(self, tmp_path):
        server = durable_server(tmp_path)
        path = Manifest.path_for(tmp_path, "t")
        assert path.exists()
        _, doc = Manifest.load(path)
        assert doc["state"] == "loading"
        assert doc["generation"] == 0
        assert server.manifest_revision == 1

    def test_non_durable_server_has_no_manifest(self, tmp_path):
        server = CiaoServer(tmp_path)
        assert server.manifest_revision is None
        assert not Manifest.path_for(tmp_path, "t").exists()

    def test_checkpoint_advances_revision(self, tmp_path):
        server = durable_server(tmp_path)
        feed(server, range(1, 5))
        assert server.checkpoint() is True
        assert server.manifest_revision == 2
        _, doc = Manifest.load(Manifest.path_for(tmp_path, "t"))
        assert doc["ledger"] == [["c1", "src", 4]]
        assert doc["parts"], "checkpoint must record sealed parts"

    def test_finalize_writes_finalized_manifest(self, tmp_path):
        server = durable_server(tmp_path)
        feed(server, range(1, 5))
        server.finalize_loading()
        _, doc = Manifest.load(Manifest.path_for(tmp_path, "t"))
        assert doc["state"] == "finalized"
        assert doc["summary"]["loaded"] == 16

    def test_checkpoint_on_non_durable_is_a_noop(self, tmp_path):
        server = CiaoServer(tmp_path, n_shards=2, shard_mode="thread",
                            seal_interval=2)
        assert server.checkpoint() is False


class TestRecovery:
    def test_midload_recovery_is_byte_identical(self, tmp_path):
        server = durable_server(tmp_path)
        feed(server, range(1, 9))
        assert server.checkpoint() is True
        sql = "SELECT k, COUNT(*) FROM t GROUP BY k"
        before = canonical_result_bytes(server.query(sql))
        # Abandon the server (simulated kill -9) and rebuild from disk.
        recovered = CiaoServer.recover(tmp_path)
        assert recovered.state == "loading"
        assert recovered.generation == 1
        after = canonical_result_bytes(recovered.query(sql))
        assert before == after

    def test_uncheckpointed_tail_is_lost_and_replayable(self, tmp_path):
        server = durable_server(tmp_path)
        session = feed(server, range(1, 5))
        server.checkpoint()
        # These batches are acked but never checkpointed: the crash
        # eats them, and the recovered watermark says so.
        for seq in (5, 6):
            session.ingest_sequenced(batch(seq), seq=seq, client_id="c1")
        recovered = CiaoServer.recover(tmp_path)
        assert recovered.ledger_last("c1", "src") == 4
        replay = recovered.resume_ingest_session("src")
        results = [
            replay.ingest_sequenced(batch(seq), seq=seq, client_id="c1")
            for seq in (3, 4, 5, 6)  # client replays past the watermark
        ]
        assert [dup for _, dup in results] == [True, True, False, False]
        summary = recovered.finalize_loading()
        assert summary.received == 6 * 4  # every batch exactly once

    def test_finalized_recovery_is_byte_identical(self, tmp_path):
        server = durable_server(tmp_path)
        feed(server, range(1, 7))
        server.finalize_loading()
        sql = "SELECT k, COUNT(*) FROM t GROUP BY k"
        before = canonical_result_bytes(server.query(sql))
        recovered = CiaoServer.recover(tmp_path)
        assert recovered.state == "finalized"
        assert canonical_result_bytes(recovered.query(sql)) == before

    def test_torn_part_is_quarantined_not_fatal(self, tmp_path):
        metrics = Metrics()
        server = durable_server(tmp_path)
        feed(server, range(1, 9))
        server.checkpoint()
        _, doc = Manifest.load(Manifest.path_for(tmp_path, "t"))
        victim = tmp_path / doc["parts"][0]["path"]
        victim.write_bytes(victim.read_bytes()[:10])  # torn footer
        recovered = CiaoServer.recover(tmp_path, metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["recovery.parts_quarantined"] == 1
        assert victim.with_suffix(
            victim.suffix + ".quarantined"
        ).exists()
        # The surviving parts still answer.
        rows = recovered.query("SELECT COUNT(*) FROM t").rows
        assert 0 < rows[0]["count(*)"] < 32

    def test_recovered_generation_gets_fresh_part_paths(self, tmp_path):
        server = durable_server(tmp_path)
        feed(server, range(1, 5))
        server.checkpoint()
        recovered = CiaoServer.recover(tmp_path)
        feed(recovered, range(5, 9))
        summary = recovered.finalize_loading()
        assert summary.received == 8 * 4
        rows = recovered.query("SELECT COUNT(*) FROM t").rows
        assert rows == [{"count(*)": 32}]

    def test_recover_without_manifest_raises(self, tmp_path):
        with pytest.raises(ManifestError):
            CiaoServer.recover(tmp_path)


class TestSessionRecovery:
    def _loaded_dir(self, tmp_path, durable=True):
        config = DeploymentConfig(durable=durable)
        with CiaoSession(source="yelp", config=config,
                         data_dir=tmp_path) as session:
            session.load(n_records=120).result()
            return canonical_result_bytes(
                session.query("SELECT COUNT(*) FROM t")
            )

    def test_recover_from_data_dir_discovers_load_subdir(self, tmp_path):
        before = self._loaded_dir(tmp_path)
        with CiaoSession(recover_from=tmp_path) as session:
            assert session.server.state == "finalized"
            after = canonical_result_bytes(
                session.query("SELECT COUNT(*) FROM t")
            )
        assert before == after

    def test_recover_from_manifest_dir_directly(self, tmp_path):
        before = self._loaded_dir(tmp_path)
        with CiaoSession(recover_from=tmp_path / "load-0") as session:
            after = canonical_result_bytes(
                session.query("SELECT COUNT(*) FROM t")
            )
        assert before == after

    def test_recover_restores_plan_and_config(self, tmp_path):
        config = DeploymentConfig(
            mode="sharded", n_shards=2, shard_mode="thread",
            seal_interval=2, durable=True,
        )
        with CiaoSession(source="yelp", config=config,
                         data_dir=tmp_path) as session:
            session.load(n_records=80).result()
        with CiaoSession(recover_from=tmp_path) as recovered:
            assert recovered.config.durable is True
            assert recovered.config.resolved_n_shards == 2
            assert recovered.config.seal_interval == 2

    def test_midload_recovery_attaches_external_job(self, tmp_path):
        config = DeploymentConfig(
            mode="sharded", n_shards=2, shard_mode="thread",
            seal_interval=2, durable=True,
        )
        session = CiaoSession(config=config, data_dir=tmp_path)
        job = session.external_load()
        feed(job.server, range(1, 5))
        job.server.checkpoint()
        # Crash: the session object is abandoned un-finalized.
        recovered = CiaoSession(recover_from=tmp_path)
        rejoined = recovered.external_load()
        assert rejoined is recovered.last_job  # attach, not a fresh load
        assert rejoined.server.state == "loading"
        feed(rejoined.server, range(5, 7))
        report = rejoined.finish_external()
        assert report.received == 6 * 4
        recovered.close()

    def test_recover_from_empty_dir_raises(self, tmp_path):
        with pytest.raises(ManifestError, match="MANIFEST-t.json"):
            CiaoSession(recover_from=tmp_path)

    def test_non_durable_load_leaves_nothing_to_recover(self, tmp_path):
        self._loaded_dir(tmp_path, durable=False)
        with pytest.raises(ManifestError):
            CiaoSession(recover_from=tmp_path)
