"""CiaoService: concurrent remote serving on top of a CiaoSession.

The router→controller→service loop that turns the in-process session API
into a servable system:

* the **service** owns a listening socket and accepts up to
  ``max_connections`` concurrent clients;
* each connection gets a **router** thread that decodes
  :mod:`repro.transport.wire` messages and dispatches them;
* handlers are the **controllers** — ingest control
  (OPEN_INGEST/CHUNKS/END_INGEST/COMMIT feeding an external
  :class:`~repro.api.session.LoadJob`), plan shipping (GET_PLAN via
  :mod:`repro.core.plan_io`), and query serving (QUERY through
  query-side :class:`~repro.service.admission.QueryAdmission`).

Concurrency discipline: the service lock guards only the connection
registry and the external-job pointer — it is **never** held while
calling into the session or server, so the service adds no edges above
the server's lifecycle lock and the lock graph stays acyclic.  Query
execution runs between admission acquire/release with no service lock
held; saturation surfaces as a BUSY reply, never an unbounded queue.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

from ..analysis.sanitizer import make_lock
from ..api.session import CiaoSession, LoadJob
from ..core.plan_io import dumps_plan
from ..engine.executor import QueryResult
from ..obs.querylog import client_scope
from ..obs.tracing import TraceContext
from ..server.ciao import IngestSession
from ..transport.base import ChannelTimeout, TransportError
from ..transport.sockets import SocketChannel, SocketListener
from ..transport import wire
from ..transport.wire import Message, WireError, encode_message
from .admission import AdmissionSaturated, QueryAdmission
from .results import result_to_payload

#: Default ceiling on concurrently served connections.
DEFAULT_MAX_CONNECTIONS = 64

#: Self-describing format tag of the STATS reply body.
STATS_FORMAT = "ciao-stats/1"

#: Router receive poll; also bounds how fast close() is observed.
_POLL_SECONDS = 0.25

#: Default silence (seconds) before an idle connection is reaped.
DEFAULT_IDLE_TIMEOUT = 300.0


class _Connection:
    """Router for one accepted connection: decode, dispatch, reply."""

    def __init__(self, service: "CiaoService", channel: SocketChannel,
                 conn_id: int):
        self.service = service
        self.channel = channel
        self.conn_id = conn_id
        self.client_id = f"conn-{conn_id}"
        self._ingest: Optional[IngestSession] = None
        self.last_activity = time.monotonic()
        self.thread = threading.Thread(
            target=self._run, name=f"ciao-service-conn-{conn_id}",
            daemon=True,
        )

    def start(self) -> None:
        self.thread.start()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            self._serve()
        finally:
            # Only the stream's current owner may close it: a client
            # that reconnected and RESUMEd on a fresh connection has
            # already adopted the session, and this (stale) router must
            # not yank it out from under the live one.
            ingest = self._ingest
            if ingest is not None and \
                    self.service._release_ingest(self, ingest):
                ingest.close()
            self.channel.close()
            self.service._forget(self)

    def _serve(self) -> None:
        while not self.service.closed:
            try:
                payload = self.channel.receive_wait(_POLL_SECONDS)
            except ChannelTimeout:
                # The peer went silent past the socket's own recv
                # deadline — same remedy as the idle check below.
                self.service._m_idle_reaped.inc()
                return
            if payload is None:
                if self.channel.closed:
                    return
                idle = self.service.idle_timeout
                if idle is not None and \
                        time.monotonic() - self.last_activity > idle:
                    # Reap the connection: free this router thread and
                    # any admission the peer was holding hostage.  A
                    # live client heartbeats (PING) to stay connected.
                    self.service._m_idle_reaped.inc()
                    return
                continue
            self.last_activity = time.monotonic()
            try:
                message = wire.decode_message(payload)
            except WireError as exc:
                # A torn or corrupted frame: the stream itself is still
                # intact (framing survived), so the sender may simply
                # resend — the ingest ledger makes that safe.
                self._reply(wire.ERROR, {
                    "error": str(exc), "retryable": True,
                })
                continue
            if message.tag == wire.BYE:
                self._reply(wire.BYE, {})
                return
            try:
                self._dispatch(message)
            except AdmissionSaturated as exc:
                self.service._m_busy.inc()
                self._reply(wire.BUSY, {"error": str(exc)})
            except TransportError:
                return  # peer is gone; nothing left to reply to
            except Exception as exc:  # ciaolint: allow[API006] -- a handler fault must become an ERROR reply, not kill the connection
                self._reply(wire.ERROR, {
                    "error": f"{type(exc).__name__}: {exc}",
                })

    # ------------------------------------------------------------------
    def _dispatch(self, message: Message) -> None:
        tag = message.tag
        if tag == wire.HELLO:
            self._handle_hello(message)
        elif tag == wire.GET_PLAN:
            self._handle_get_plan()
        elif tag == wire.OPEN_INGEST:
            self._handle_open_ingest(message)
        elif tag == wire.CHUNKS:
            self._handle_chunks(message)
        elif tag == wire.END_INGEST:
            self._handle_end_ingest()
        elif tag == wire.RESUME:
            self._handle_resume(message)
        elif tag == wire.PING:
            self._handle_ping()
        elif tag == wire.COMMIT:
            self._handle_commit()
        elif tag == wire.QUERY:
            self._handle_query(message)
        elif tag == wire.STATS:
            self._handle_stats(message)
        else:
            self._reply(wire.ERROR, {
                "error": f"unexpected {message.name} message",
            })

    def _handle_hello(self, message: Message) -> None:
        protocol = message.header.get("protocol")
        if protocol != wire.PROTOCOL_VERSION:
            self._reply(wire.ERROR, {
                "error": (
                    f"protocol mismatch: client speaks {protocol!r}, "
                    f"service speaks {wire.PROTOCOL_VERSION}"
                ),
            })
            return
        client_id = message.header.get("client_id")
        if client_id:
            self.client_id = str(client_id)
        self._reply(wire.WELCOME, {
            "server": "ciao",
            "protocol": wire.PROTOCOL_VERSION,
            "mode": self.service.session.config.mode,
        })

    def _handle_get_plan(self) -> None:
        plan = self.service.session.pushdown_plan
        if plan is None:
            self._reply(wire.PLAN, {"present": False})
        else:
            self._reply(wire.PLAN, {"present": True},
                        dumps_plan(plan).encode("utf-8"))

    def _handle_open_ingest(self, message: Message) -> None:
        source_id = message.header.get("source_id") or self.client_id
        if self._ingest is not None and not self._ingest.closed:
            raise RuntimeError(
                f"connection already has ingest stream "
                f"{self._ingest.source_id!r} open"
            )
        self._ingest = self.service._open_ingest(str(source_id))
        self.service._claim_ingest(self, self._ingest)
        self._reply(wire.INGEST_ACK, {"opened": str(source_id)})

    def _handle_resume(self, message: Message) -> None:
        """Adopt (or re-adopt) an ingest stream after a client redial.

        Unlike OPEN_INGEST this is idempotent — a replayed RESUME
        re-attaches the same server-side stream — and it answers with
        the stream's applied watermark so the client replays exactly
        the batches the server never saw.  If the load already
        committed there is no stream to adopt: the client learns
        ``finalized`` and skips its replay entirely.
        """
        source_id = str(message.header.get("source_id") or self.client_id)
        self.service._m_resumes.inc()
        job = self.service._current_external_job()
        if job is not None and job.done:
            self._reply(wire.RESUME, {
                "source_id": source_id,
                "finalized": True,
                "last_seq": job.server.ledger_last(
                    self.client_id, source_id
                ),
            })
            return
        job = self.service._ensure_external_job()
        session = job.server.resume_ingest_session(source_id)
        stale = self._ingest
        if stale is not None and stale is not session and \
                self.service._release_ingest(self, stale):
            stale.close()
        self._ingest = session
        self.service._claim_ingest(self, session)
        self._reply(wire.RESUME, {
            "source_id": source_id,
            "finalized": False,
            "last_seq": job.server.ledger_last(self.client_id, source_id),
            "durable_seq": job.server.durable_seq(
                self.client_id, source_id
            ),
        })

    def _handle_ping(self) -> None:
        self.service._m_pings.inc()
        self._reply(wire.PONG, {})

    def _handle_chunks(self, message: Message) -> None:
        if self._ingest is None or self._ingest.closed:
            raise RuntimeError(
                "CHUNKS before OPEN_INGEST: open an ingest stream first"
            )
        if not wire.verify_crc(message.header, message.body):
            # Corrupted in flight: refuse without advancing the ledger
            # so the client's resend (same seq) applies cleanly.
            self.service._m_crc_rejects.inc()
            self._reply(wire.ERROR, {
                "error": "CHUNKS body failed its crc check",
                "retryable": True,
            })
            return
        seq = message.header.get("seq")
        if seq is None:
            # Legacy unsequenced stream: at-least-once, no dedupe.
            accepted = self._ingest.ingest(message.body)
            self._reply(wire.INGEST_ACK, {"frames_accepted": accepted})
            return
        accepted, duplicate = self._ingest.ingest_sequenced(
            message.body, seq=int(seq), client_id=self.client_id,
        )
        if duplicate:
            # Already applied — ack what the batch claimed to carry so
            # the client's accounting matches the first delivery.
            accepted = int(message.header.get("frames", 0))
        header: Dict[str, Any] = {
            "frames_accepted": accepted,
            "seq": int(seq),
            "duplicate": duplicate,
        }
        job = self.service._current_external_job()
        if job is not None:
            header["durable_seq"] = job.server.durable_seq(
                self.client_id, self._ingest.source_id
            )
        self._reply(wire.INGEST_ACK, header)
        if not duplicate:
            self.service._note_applied_batch()

    def _handle_end_ingest(self) -> None:
        if self._ingest is None:
            raise RuntimeError("END_INGEST without an open ingest stream")
        self._ingest.close()
        self._reply(wire.INGEST_ACK, {"closed": True})

    def _handle_commit(self) -> None:
        report = self.service._commit()
        self._reply(wire.COMMITTED, {"report": {
            "mode": report.mode,
            "received": report.received,
            "loaded": report.loaded,
            "sidelined": report.sidelined,
            "malformed": report.malformed,
            "chunks": report.chunks,
            "wall_seconds": report.wall_seconds,
        }})

    def _handle_query(self, message: Message) -> None:
        sql = message.header.get("sql")
        if not sql:
            raise ValueError("QUERY message carries no sql")
        snapshot = bool(message.header.get("snapshot"))
        trace = wire.extract_trace(message.header)
        tracer = self.service.session.tracer
        header: Dict[str, Any] = {}
        with client_scope(self.client_id):
            if trace is not None and tracer.enabled:
                # Re-root the server-side spans under the client's wire
                # context, then ship the finished records back in the
                # RESULT header so the client tracer can adopt them —
                # one trace id covers both halves of the query.
                trace_id, parent_id = trace
                with tracer.trace(
                    "service.query", parent=TraceContext(trace_id,
                                                         parent_id),
                    attrs={"client_id": self.client_id, "sql": str(sql)},
                ):
                    result = self.service._query(
                        self.client_id, str(sql), snapshot
                    )
                header["spans"] = [
                    s.to_dict() for s in tracer.drain(trace_id)
                ]
            else:
                result = self.service._query(
                    self.client_id, str(sql), snapshot
                )
        self._reply(wire.RESULT, header, result_to_payload(result))

    def _handle_stats(self, message: Message) -> None:
        tail = message.header.get("query_log_tail", 0)
        try:
            tail = max(0, int(tail))
        except (TypeError, ValueError):
            tail = 0
        payload = self.service.stats(query_log_tail=tail)
        body = json.dumps(payload, sort_keys=True,
                          default=str).encode("utf-8")
        self._reply(wire.STATS, {"format": STATS_FORMAT}, body)

    # ------------------------------------------------------------------
    def _reply(self, tag: int, header: Dict, body: bytes = b"") -> None:
        try:
            self.channel.send(encode_message(tag, header, body))
        except TransportError:
            pass  # peer hung up mid-reply; the router loop will exit


class CiaoService:
    """A network front end serving one :class:`CiaoSession` to N clients.

    Listens immediately on construction (``port=0`` picks a free port —
    read :attr:`address` back); every accepted connection is served by
    its own router thread, so ingest streams and queries from different
    clients genuinely interleave.  Query admission mirrors the ingest
    side's ``max_active``/``max_pending`` discipline (defaults come from
    the session's :class:`~repro.api.config.DeploymentConfig`
    ``query_max_active``/``query_max_pending`` knobs).

    The service does not own the session: closing the service stops
    serving but leaves the session and its loaded data usable in
    process.  Context-manager friendly.
    """

    def __init__(self, session: CiaoSession,
                 host: str = "127.0.0.1", port: int = 0, *,
                 max_connections: int = DEFAULT_MAX_CONNECTIONS,
                 query_max_active: Optional[int] = None,
                 query_max_pending: Optional[int] = None,
                 admission_timeout: Optional[float] = 30.0,
                 idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
                 checkpoint_every: Optional[int] = None):
        if max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError(
                f"idle_timeout must be positive or None, "
                f"got {idle_timeout}"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1 or None, "
                f"got {checkpoint_every}"
            )
        config = session.config
        self.session = session
        self.max_connections = max_connections
        self.admission_timeout = admission_timeout
        #: Silence bound before a router reaps its connection (liveness:
        #: a hung peer must not pin a thread and admission state
        #: forever).  ``None`` disables reaping.
        self.idle_timeout = idle_timeout
        #: Checkpoint the external load's durable manifest after every
        #: N applied CHUNKS batches (``None`` = only at commit).  Also
        #: bounds retrying clients' replay buffers, which prune to the
        #: durable watermark each checkpoint publishes.
        self.checkpoint_every = checkpoint_every
        # The session's registry instruments the whole service stack:
        # admission pressure, accepted sockets, BUSY turn-aways.
        metrics = session.obs_metrics
        self._m_busy = metrics.counter("service.busy_replies")
        self._m_accepted = metrics.counter("service.connections_accepted")
        self._m_connections = metrics.gauge("service.connections")
        self._m_idle_reaped = metrics.counter("heartbeat.idle_reaped")
        self._m_pings = metrics.counter("heartbeat.pings")
        self._m_resumes = metrics.counter("recovery.resumes")
        self._m_crc_rejects = metrics.counter("recovery.crc_rejects")
        self.admission = QueryAdmission(
            max_active=(
                query_max_active if query_max_active is not None
                else config.query_max_active
            ),
            max_pending=(
                query_max_pending if query_max_pending is not None
                else config.query_max_pending
            ),
            metrics=metrics,
        )
        self._listener = SocketListener(
            host, port, metrics=metrics, recv_deadline=idle_timeout,
        )
        self._lock = make_lock("CiaoService._lock")
        self._connections: List[_Connection] = []  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._next_conn = 0  # guarded-by: _lock
        self._external_job: Optional[LoadJob] = None  # guarded-by: _lock
        # Which router currently owns each ingest stream; RESUME on a
        # fresh connection steals ownership from the dead one.
        self._ingest_owner: Dict[str, _Connection] = {}  # guarded-by: _lock
        self._batches_since_checkpoint = 0  # guarded-by: _lock
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="ciao-service-accept",
            daemon=True,
        )
        self._acceptor.start()

    # ------------------------------------------------------------------
    @property
    def address(self):
        """The bound ``(host, port)`` clients dial."""
        return self._listener.address

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def connection_count(self) -> int:
        """Connections currently being served."""
        with self._lock:
            return len(self._connections)

    def close(self) -> None:
        """Stop accepting and disconnect every client (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections = list(self._connections)
        self._listener.close()
        for connection in connections:
            connection.channel.close()
        for connection in connections:
            connection.thread.join(timeout=10.0)
        self._acceptor.join(timeout=10.0)

    def __enter__(self) -> "CiaoService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Acceptor
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
            channel = self._listener.accept(timeout=_POLL_SECONDS)
            if channel is None:
                continue
            with self._lock:
                if self._closed:
                    at_capacity = True  # shutting down: turn it away
                else:
                    at_capacity = (
                        len(self._connections) >= self.max_connections
                    )
                if not at_capacity:
                    conn_id = self._next_conn
                    self._next_conn += 1
                    connection = _Connection(self, channel, conn_id)
                    self._connections.append(connection)
                    self._m_connections.set(len(self._connections))
            if at_capacity:
                self._m_busy.inc()
                try:
                    channel.send(encode_message(wire.BUSY, {
                        "error": (
                            f"service at max_connections="
                            f"{self.max_connections}"
                        ),
                    }))
                except TransportError:
                    pass  # the turned-away peer already hung up
                channel.close()
            else:
                self._m_accepted.inc()
                connection.start()

    def _forget(self, connection: _Connection) -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)
                self._m_connections.set(len(self._connections))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self, query_log_tail: int = 0) -> Dict[str, Any]:
        """A live operational snapshot (the STATS wire reply body).

        Always includes connection and admission accounting; the
        ``metrics`` section is empty unless the session was constructed
        with a real registry.  *query_log_tail* > 0 additionally embeds
        the most recent N query-log records.
        """
        with self._lock:
            connections = len(self._connections)
        admission = self.admission.stats
        doc: Dict[str, Any] = {
            "format": STATS_FORMAT,
            "connections": connections,
            "max_connections": self.max_connections,
            "admission": {
                "granted": admission.granted,
                "completed": admission.completed,
                "rejected": admission.rejected,
                "peak_active": admission.peak_active,
                "peak_queued": admission.peak_queued,
                "active": self.admission.active,
                "queued": self.admission.queued,
            },
            "metrics": self.session.metrics(),
            "heartbeat": {
                "idle_timeout": self.idle_timeout,
            },
        }
        job = self.session.last_job
        if job is not None:
            server = job.server
            doc["recovery"] = {
                "durable": server.durable,
                "manifest_revision": server.manifest_revision,
                "generation": server.generation,
                "ledger_streams": len(server.ledger_records()),
                "checkpoint_every": self.checkpoint_every,
            }
        compaction = self.session.compaction_stats()
        if compaction is not None:
            doc["compaction"] = compaction
        if query_log_tail > 0:
            records = self.session.query_log()
            doc["query_log"] = [
                r.to_dict() for r in records[-query_log_tail:]
            ]
        return doc

    # ------------------------------------------------------------------
    # Controllers (called from router threads, no service lock held)
    # ------------------------------------------------------------------
    def _open_ingest(self, source_id: str) -> IngestSession:
        job = self._ensure_external_job()
        return job.server.open_ingest_session(source_id)

    def _claim_ingest(self, connection: _Connection,
                      session: IngestSession) -> None:
        with self._lock:
            self._ingest_owner[session.source_id] = connection

    def _release_ingest(self, connection: _Connection,
                        session: IngestSession) -> bool:
        """Drop *connection*'s claim; True if it was the owner."""
        with self._lock:
            if self._ingest_owner.get(session.source_id) is connection:
                del self._ingest_owner[session.source_id]
                return True
            return False

    def _current_external_job(self) -> Optional[LoadJob]:
        with self._lock:
            return self._external_job

    def _note_applied_batch(self) -> None:
        """Count one applied CHUNKS batch toward the checkpoint cadence.

        The checkpoint itself runs with no service lock held — it
        quiesces the ingest pipeline and fsyncs the manifest, both far
        too heavy for the connection-registry lock.
        """
        if self.checkpoint_every is None:
            return
        with self._lock:
            self._batches_since_checkpoint += 1
            due = self._batches_since_checkpoint >= self.checkpoint_every
            if due:
                self._batches_since_checkpoint = 0
            job = self._external_job
        if due and job is not None:
            job.server.checkpoint()

    def _ensure_external_job(self) -> LoadJob:
        with self._lock:
            job = self._external_job
            needs_new = job is None or job.done
        if needs_new:
            # Created outside the lock: external_load builds a server
            # (storage directories, shard workers) and must not run
            # under the connection-registry lock.
            created = self.session.external_load()
            with self._lock:
                # First creator wins; a racing creator's job is unused
                # (external_load itself rejects concurrent actives, so
                # losing this race raises there instead).
                if self._external_job is None or self._external_job.done:
                    self._external_job = created
                job = self._external_job
        return job

    def _commit(self):
        with self._lock:
            job = self._external_job
        if job is None:
            raise RuntimeError(
                "COMMIT without a remote load: no ingest stream was "
                "opened on this service"
            )
        return job.finish_external()

    def _query(self, client_id: str, sql: str,
               snapshot: bool) -> QueryResult:
        ticket = self.admission.acquire(
            client_id, timeout=self.admission_timeout
        )
        try:
            return self._execute(sql, snapshot)
        finally:
            self.admission.release(ticket)

    def _execute(self, sql: str, snapshot: bool) -> QueryResult:
        session = self.session
        job = session.last_job
        if job is not None and not job.done:
            if snapshot and session.config.streaming_queries:
                return job.snapshot_query(sql)
            if job._external:
                # A plain query would wait for a COMMIT that may never
                # come from this client — refuse instead of wedging an
                # admission slot.
                raise RuntimeError(
                    "a remote load is in flight: COMMIT it first, or "
                    "use snapshot queries on a streaming deployment"
                )
        return session.query(sql)
