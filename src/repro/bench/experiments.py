"""One function per paper table/figure: the reproduction experiments.

Each function is deterministic given its config, returns plain data, and is
wrapped by a thin bench in ``benchmarks/`` that times it and prints the
paper-style series via :mod:`repro.bench.reporting`.  DESIGN.md §4 maps
figures to these functions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.calibration import (
    CalibrationReport,
    fit,
    measure_search_costs,
)
from ..core.patterns import compile_clause
from ..core.predicates import Workload
from ..data import make_generator
from ..data.randomness import rng_stream
from ..simulate.hardware import PLATFORMS, synthesize_observations
from ..workload.pool import PredicatePool
from ..workload.selectivity import measure_raw_hit_rates
from ..workload.workloads import (
    OVERLAP_LEVELS,
    SELECTIVITY_LEVELS,
    SKEWNESS_LEVELS,
    overlap_workload,
    selectivity_workload,
    skewness_workload,
    table3_workload,
)
from .runner import EndToEndRunner, ExperimentConfig, RunMetrics

#: The paper's budget grids (µs per record per client), Figs 3–5.
BUDGET_GRIDS: Dict[str, List[float]] = {
    "winlog": [0, 1, 3, 5, 7, 9],
    "yelp": [0, 10, 20, 30, 40, 50],
    "ycsb": [0, 25, 50, 75, 100, 125],
}

#: Fig. 6's budget grid (YCSB workload C, skipping-benefit fraction).
FIG6_BUDGETS: List[float] = [25, 50, 75, 100, 125]


# ----------------------------------------------------------------------
# Figs 3, 4, 5 — end-to-end budget sweeps per dataset and workload
# ----------------------------------------------------------------------
def end_to_end_sweep(dataset: str, workdir: str | Path,
                     config: Optional[ExperimentConfig] = None,
                     labels: Sequence[str] = ("A", "B", "C"),
                     n_queries: Optional[int] = None,
                     budgets: Optional[Sequence[float]] = None,
                     ) -> Dict[str, List[RunMetrics]]:
    """Reproduce one of Figs 3–5: per-workload budget sweeps."""
    config = config or ExperimentConfig(dataset=dataset)
    if config.dataset != dataset:
        raise ValueError("config.dataset does not match the experiment")
    runner = EndToEndRunner(config, workdir)
    budgets = list(budgets if budgets is not None else BUDGET_GRIDS[dataset])
    results: Dict[str, List[RunMetrics]] = {}
    for label in labels:
        workload = table3_workload(
            dataset, label, seed=config.seed, n_queries=n_queries
        )
        results[label] = runner.run_budget_sweep(
            workload, budgets, label_prefix=f"{label}/"
        )
    return results


def headline_speedups(sweep: Dict[str, List[RunMetrics]]
                      ) -> Dict[str, float]:
    """Best loading/query/end-to-end speedups across a sweep (the abstract's
    21× / 23× / 19× claims, shape-reproduced)."""
    best = {"loading": 0.0, "query": 0.0, "end_to_end": 0.0}
    for runs in sweep.values():
        baseline = runs[0]
        for m in runs[1:]:
            if m.loading_wall_s > 0:
                best["loading"] = max(
                    best["loading"],
                    baseline.loading_wall_s / m.loading_wall_s,
                )
            if m.query_wall_s > 0:
                best["query"] = max(
                    best["query"], baseline.query_wall_s / m.query_wall_s
                )
            if m.end_to_end_wall_s > 0:
                best["end_to_end"] = max(
                    best["end_to_end"],
                    baseline.end_to_end_wall_s / m.end_to_end_wall_s,
                )
    return best


# ----------------------------------------------------------------------
# Fig. 6 — fraction of queries benefiting from data skipping (YCSB, C)
# ----------------------------------------------------------------------
def skipping_benefit_sweep(workdir: str | Path,
                           config: Optional[ExperimentConfig] = None,
                           n_queries: Optional[int] = None,
                           budgets: Optional[Sequence[float]] = None,
                           ) -> List[Tuple[float, float]]:
    """Reproduce Fig. 6: (budget, benefiting fraction) series."""
    config = config or ExperimentConfig(dataset="ycsb")
    runner = EndToEndRunner(config, workdir)
    workload = table3_workload(
        "ycsb", "C", seed=config.seed, n_queries=n_queries
    )
    series: List[Tuple[float, float]] = []
    for budget in (budgets if budgets is not None else FIG6_BUDGETS):
        plan = runner.plan_for_budget(workload, budget)
        metrics = runner.run(workload, plan, label=f"C/B={budget:g}µs")
        fraction = (
            metrics.queries_benefiting / metrics.total_queries
            if metrics.total_queries else 0.0
        )
        series.append((budget, fraction))
    return series


# ----------------------------------------------------------------------
# Figs 7–12 — sensitivity micro-benchmarks (Windows log)
# ----------------------------------------------------------------------
@dataclass
class MicroResult:
    """One sensitivity run: a level plus its baseline-relative metrics."""

    level: str
    metrics: RunMetrics
    baseline: RunMetrics

    @property
    def loading_time_s(self) -> float:
        return self.metrics.loading_wall_s

    @property
    def loading_ratio(self) -> float:
        return self.metrics.loading_ratio

    @property
    def per_query_s(self) -> List[float]:
        return self.metrics.per_query_wall_s


def _micro_run(runner: EndToEndRunner, workload: Workload,
               pushed, level: str) -> MicroResult:
    baseline = runner.run(workload, None, label=f"{level}/baseline")
    plan = runner.plan_for_clauses(workload, pushed)
    metrics = runner.run(workload, plan, label=f"{level}/ciao")
    return MicroResult(level=level, metrics=metrics, baseline=baseline)


def selectivity_experiment(workdir: str | Path,
                           config: Optional[ExperimentConfig] = None,
                           ) -> List[MicroResult]:
    """Figs 7–8: vary predicate selectivity (0.35 / 0.15 / 0.01)."""
    config = config or ExperimentConfig(dataset="winlog")
    runner = EndToEndRunner(config, workdir)
    results = []
    for level in SELECTIVITY_LEVELS:
        workload, pushed = selectivity_workload(level)
        results.append(
            _micro_run(runner, workload, pushed, f"sel={level}")
        )
    return results


def overlap_experiment(workdir: str | Path,
                       config: Optional[ExperimentConfig] = None,
                       ) -> List[MicroResult]:
    """Figs 9–10: vary predicate overlap (low / medium / high)."""
    config = config or ExperimentConfig(dataset="winlog")
    runner = EndToEndRunner(config, workdir)
    results = []
    for level in OVERLAP_LEVELS:
        workload, pushed = overlap_workload(level)
        results.append(_micro_run(runner, workload, pushed, level))
    return results


def skewness_experiment(workdir: str | Path,
                        config: Optional[ExperimentConfig] = None,
                        ) -> List[MicroResult]:
    """Figs 11–12: vary predicate skewness (0.0 / 0.5 / 2.0)."""
    config = config or ExperimentConfig(dataset="winlog")
    runner = EndToEndRunner(config, workdir)
    results = []
    for level in SKEWNESS_LEVELS:
        workload, pushed = skewness_workload(level, seed=config.seed)
        results.append(
            _micro_run(runner, workload, pushed, f"skew={level}")
        )
    return results


# ----------------------------------------------------------------------
# Table IV — cost-model calibration across hardware platforms
# ----------------------------------------------------------------------
@dataclass
class CalibrationRow:
    """One Table IV row: platform, fitted R², paper's R²."""

    platform: str
    hardware: str
    r_squared: float
    paper_r_squared: float
    report: CalibrationReport = field(repr=False, default=None)


def cost_model_experiment(
    predicates_per_dataset: int = 100,
    hit_rate_records: int = 400,
    seed: int = 20210223,
    include_real_local: bool = True,
    real_records: int = 300,
) -> List[CalibrationRow]:
    """Reproduce Table IV.

    For each dataset, sample ``predicates_per_dataset`` pool clauses and
    measure their raw hit rates on a record sample (pattern length and
    record length come for free).  Each simulated platform observes those
    predicate shapes through its noise model; the §V-D model is then fitted
    per platform and R² reported.  Optionally a fourth row measures real
    ``str.find`` timings on the current machine.
    """
    shapes_by_dataset: Dict[str, List[Tuple[float, float]]] = {}
    record_lengths: Dict[str, float] = {}
    compiled_by_dataset = {}
    raw_by_dataset = {}
    for dataset in ("yelp", "winlog", "ycsb"):
        rng = rng_stream(seed, f"table4:{dataset}")
        pool = PredicatePool.from_templates(dataset, rng=rng)
        clauses = pool.clauses[:predicates_per_dataset]
        generator = make_generator(dataset, seed)
        raw = list(generator.raw_lines(hit_rate_records))
        hit_rates = measure_raw_hit_rates(clauses, raw)
        shapes: List[Tuple[float, float]] = []
        compiled = []
        for clause in clauses:
            cc = compile_clause(clause)
            shapes.append(
                (float(cc.total_pattern_length()), hit_rates[clause])
            )
            compiled.append(cc)
        shapes_by_dataset[dataset] = shapes
        record_lengths[dataset] = sum(len(r) for r in raw) / len(raw)
        compiled_by_dataset[dataset] = compiled
        raw_by_dataset[dataset] = raw

    rows: List[CalibrationRow] = []
    for name, profile in PLATFORMS.items():
        rng = rng_stream(seed, f"table4-noise:{name}")
        observations = []
        for dataset, shapes in shapes_by_dataset.items():
            observations.extend(
                synthesize_observations(
                    profile, shapes, record_lengths[dataset], rng
                )
            )
        report = fit(observations)
        rows.append(
            CalibrationRow(
                platform=name,
                hardware=profile.description,
                r_squared=report.r_squared,
                paper_r_squared=profile.paper_r_squared,
                report=report,
            )
        )

    if include_real_local:
        observations = []
        for dataset, compiled in compiled_by_dataset.items():
            records = raw_by_dataset[dataset][:real_records]
            observations.extend(
                measure_search_costs(compiled, records, repeats=3)
            )
        report = fit(observations)
        rows.append(
            CalibrationRow(
                platform="this-machine",
                hardware="real str.find timings on the current host",
                r_squared=report.r_squared,
                paper_r_squared=float("nan"),
                report=report,
            )
        )
    return rows
