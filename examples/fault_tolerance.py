"""Fault tolerance: kill -9 the server mid-load, recover, finish, verify.

The robustness story end to end across real process boundaries:

1. A server process opens a *durable* deployment (crash-atomic manifest
   checkpoints after every applied batch) and serves it over a socket.
2. Two client processes stream records in through retrying
   `RemoteSession`s — bounded attempts, exponential backoff, automatic
   reconnect, and exactly-once sequenced batches.
3. Mid-load, the driver SIGKILLs the server process.  No shutdown
   handler runs; everything past the last checkpoint is gone.
4. The driver starts a *new* server process that rebuilds the catalog
   from the manifest (`CiaoSession(recover_from=...)`) and serves it on
   a fresh port.  The clients' retry loops redial, RESUME their ingest
   streams at the server's recovered watermark, replay the unacked
   tail, and finish the load.
5. The driver commits and compares the committed table row-for-row
   against a clean, never-crashed run of the same records: zero loss,
   zero duplicates.

Run:  python examples/fault_tolerance.py
"""

import json
import multiprocessing as mp
import os
import signal
import tempfile
import time
from pathlib import Path
from queue import Empty

from repro.api import CiaoSession, DeploymentConfig
from repro.data import make_generator
from repro.recovery import Manifest, RetryPolicy
from repro.service import CiaoService, RemoteSession
from repro.transport import SocketChannel

N_CLIENTS = 2
RECORDS_PER_CLIENT = 1_500
SEED = 7
CRASH_AT_REVISION = 20
SQL_GROUP = "SELECT stars, COUNT(*) FROM t GROUP BY stars"


def durable_config() -> DeploymentConfig:
    return DeploymentConfig(mode="sharded", n_shards=2,
                            shard_mode="thread", seal_interval=4,
                            durable=True)


def server_process(data_dir, address_queue, done_queue, recover):
    """Serve a durable session; `recover=True` rebuilds from the manifest."""
    if recover:
        session = CiaoSession(recover_from=data_dir)
        print("[server-2] recovered catalog at manifest revision "
              f"{session.server.manifest_revision}")
    else:
        session = CiaoSession(config=durable_config(), data_dir=data_dir)
    with session:
        with CiaoService(session, checkpoint_every=1,
                         idle_timeout=60.0) as service:
            address_queue.put(service.address)
            done_queue.get()  # block until the driver says we're done


def client_process(address_queue, client_id, client_seed, result_queue):
    """Stream one partition through a retrying, reconnecting session.

    The client never learns the server died: its channel factory picks
    up the newest address the driver has broadcast before every dial,
    and the retry policy keeps it probing while the replacement server
    comes up.
    """
    current = {"address": None}

    def dial():
        try:
            while True:
                current["address"] = address_queue.get_nowait()
        except Empty:
            pass
        if current["address"] is None:
            current["address"] = address_queue.get(timeout=60)
        return SocketChannel.connect(current["address"])

    generator = make_generator("yelp", client_seed)
    records = list(generator.raw_lines(RECORDS_PER_CLIENT))
    remote = RemoteSession(
        channel_factory=dial, client_id=client_id, chunk_size=10,
        retry=RetryPolicy(max_attempts=60, base_delay=0.05,
                          max_delay=0.5, seed=client_seed),
        timeout=2.0,
    )
    accepted = remote.load(records, source_id=client_id, batch_size=1)
    remote.close()
    print(f"[{client_id}] shipped {len(records)} records "
          f"({accepted} chunk frames) across the crash")
    result_queue.put((client_id, accepted))


def clean_run(tmp_root):
    """The same records through a never-crashed deployment."""
    session = CiaoSession(config=durable_config(),
                          data_dir=tmp_root / "clean")
    with session:
        with CiaoService(session) as service:
            for i in range(N_CLIENTS):
                generator = make_generator("yelp", SEED + i)
                records = list(generator.raw_lines(RECORDS_PER_CLIENT))
                with RemoteSession(service.address,
                                   client_id=f"client-{i}") as remote:
                    remote.load(records, source_id=f"client-{i}")
            with RemoteSession(service.address,
                               client_id="committer") as remote:
                remote.commit()
                return remote.query(SQL_GROUP).rows


def canonical(rows):
    return sorted(rows, key=lambda row: json.dumps(row, sort_keys=True))


def main() -> None:
    tmp_root = Path(tempfile.mkdtemp(prefix="ciao-fault-tolerance-"))
    data_dir = tmp_root / "served"
    ctx = mp.get_context("spawn")
    server_addresses = ctx.Queue()
    client_addresses = [ctx.Queue() for _ in range(N_CLIENTS)]
    done_queue = ctx.Queue()
    result_queue = ctx.Queue()

    print("[driver] clean baseline run (no faults)...")
    baseline = clean_run(tmp_root)

    server = ctx.Process(target=server_process,
                         args=(data_dir, server_addresses, done_queue,
                               False))
    server.start()
    clients = [
        ctx.Process(target=client_process,
                    args=(client_addresses[i], f"client-{i}", SEED + i,
                          result_queue))
        for i in range(N_CLIENTS)
    ]
    spawned = [server] + clients
    try:
        address = server_addresses.get(timeout=60)
        for queue in client_addresses:
            queue.put(address)
        for client in clients:
            client.start()
        print(f"[driver] serving on {address[0]}:{address[1]}, "
              f"{N_CLIENTS} clients loading")

        # Let the load get durably underway, then kill -9 the server.
        manifest = Manifest.path_for(data_dir / "load-0", "t")
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if manifest.exists():
                _, doc = Manifest.load(manifest)
                if doc["revision"] >= CRASH_AT_REVISION:
                    break
            time.sleep(0.02)
        os.kill(server.pid, signal.SIGKILL)
        server.join()
        print(f"[driver] SIGKILLed the server at manifest revision "
              f"{Manifest.load(manifest)[1]['revision']}; "
              f"clients are now retrying against a dead socket")

        # Bring up the replacement and broadcast its fresh address.
        server2 = ctx.Process(target=server_process,
                              args=(data_dir, server_addresses,
                                    done_queue, True))
        server2.start()
        spawned.append(server2)
        address = server_addresses.get(timeout=60)
        for queue in client_addresses:
            queue.put(address)

        shipped = {}
        for _ in range(N_CLIENTS):
            client_id, accepted = result_queue.get(timeout=120)
            shipped[client_id] = accepted
        print(f"[driver] all clients finished: {shipped}")

        with RemoteSession(address, client_id="committer") as remote:
            report = remote.commit()
            rows = remote.query(SQL_GROUP).rows
        done_queue.put(None)

        expected = N_CLIENTS * RECORDS_PER_CLIENT
        assert report.get("received") == expected, (
            f"expected {expected} records exactly once, got "
            f"{report.get('received')}"
        )
        assert canonical(rows) == canonical(baseline), \
            "recovered answers diverged from the clean run"
        print(f"[driver] committed {expected} records exactly once; "
              f"answers match the clean run row-for-row")
        print("[driver] OK")
    finally:
        for process in spawned:
            if process.is_alive():
                process.terminate()
            process.join(timeout=10)


if __name__ == "__main__":
    main()
