"""Manifest: crash-atomic persistence, revisions, load validation."""

import json

import pytest

from repro.recovery import MANIFEST_FORMAT, Manifest, ManifestError
from repro.recovery.manifest import MAX_EVENTS


class TestWrite:
    def test_round_trip(self, tmp_path):
        manifest = Manifest(Manifest.path_for(tmp_path, "t"))
        assert not manifest.exists
        rev = manifest.write({"table": "t", "parts": []})
        assert rev == 1
        assert manifest.exists
        loaded, doc = Manifest.load(manifest.path)
        assert loaded.revision == 1
        assert doc["table"] == "t"
        assert doc["format"] == MANIFEST_FORMAT

    def test_revisions_are_monotonic(self, tmp_path):
        manifest = Manifest(tmp_path / "MANIFEST-t.json")
        assert manifest.write({}) == 1
        assert manifest.write({}) == 2
        _, doc = Manifest.load(manifest.path)
        assert doc["revision"] == 2

    def test_loaded_manifest_continues_numbering(self, tmp_path):
        manifest = Manifest(tmp_path / "MANIFEST-t.json")
        manifest.write({})
        manifest.write({})
        loaded, _ = Manifest.load(manifest.path)
        assert loaded.write({}) == 3

    def test_no_tmp_left_behind(self, tmp_path):
        manifest = Manifest(tmp_path / "MANIFEST-t.json")
        manifest.write({"parts": []})
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["MANIFEST-t.json"]

    def test_events_capped(self, tmp_path):
        manifest = Manifest(tmp_path / "MANIFEST-t.json")
        manifest.write({"events": [f"e{i}" for i in range(MAX_EVENTS * 2)]})
        _, doc = Manifest.load(manifest.path)
        assert len(doc["events"]) == MAX_EVENTS
        assert doc["events"][-1] == f"e{MAX_EVENTS * 2 - 1}"

    def test_unserializable_doc_leaves_old_revision(self, tmp_path):
        manifest = Manifest(tmp_path / "MANIFEST-t.json")
        manifest.write({"table": "t"})
        with pytest.raises(TypeError):
            manifest.write({"bad": object()})
        _, doc = Manifest.load(manifest.path)
        assert doc["table"] == "t"
        assert [p.name for p in tmp_path.iterdir()] == ["MANIFEST-t.json"]


class TestLoad:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="no readable manifest"):
            Manifest.load(tmp_path / "MANIFEST-t.json")

    def test_torn_json(self, tmp_path):
        path = tmp_path / "MANIFEST-t.json"
        path.write_text('{"format": "ciao-manifest/1", "rev')
        with pytest.raises(ManifestError, match="not valid JSON"):
            Manifest.load(path)

    def test_wrong_format_tag(self, tmp_path):
        path = tmp_path / "MANIFEST-t.json"
        path.write_text(json.dumps({"format": "other/9", "revision": 1}))
        with pytest.raises(ManifestError, match="format"):
            Manifest.load(path)

    def test_non_object_document(self, tmp_path):
        path = tmp_path / "MANIFEST-t.json"
        path.write_text("[1, 2]")
        with pytest.raises(ManifestError, match="JSON object"):
            Manifest.load(path)

    def test_bad_revision(self, tmp_path):
        path = tmp_path / "MANIFEST-t.json"
        path.write_text(json.dumps({
            "format": MANIFEST_FORMAT, "revision": "x",
        }))
        with pytest.raises(ManifestError, match="revision"):
            Manifest.load(path)

    def test_path_for(self, tmp_path):
        assert Manifest.path_for(tmp_path, "tbl") == \
            tmp_path / "MANIFEST-tbl.json"
