"""Integration tests for heterogeneous multi-client fleets.

Clients with smaller budgets execute budget-restricted prefixes of the
server's global plan; the server must never sideline a record that was not
tested against every pushed predicate.
"""

import pytest

from repro.client import SimulatedClient
from repro.core import (
    Budget,
    CiaoOptimizer,
    CostModel,
    DEFAULT_COEFFICIENTS,
)
from repro.data import make_generator
from repro.rawjson import parse_object
from repro.server import CiaoServer
from repro.workload import estimate_selectivities, table3_workload

SEED = 4242


@pytest.fixture(scope="module")
def setup():
    generator = make_generator("winlog", SEED)
    lines = list(generator.raw_lines(1200))
    workload = table3_workload("winlog", "A", seed=SEED, n_queries=12)
    sels = estimate_selectivities(
        workload.candidate_pool, generator.sample(800)
    )
    model = CostModel(DEFAULT_COEFFICIENTS, 160)
    optimizer = CiaoOptimizer(workload, sels, model)
    global_plan = optimizer.plan(Budget(6.0))
    return lines, workload, global_plan


class TestPlanRestriction:
    def test_restrict_is_a_prefix_with_stable_ids(self, setup):
        _, _, plan = setup
        sub = plan.restrict(Budget(plan.total_cost_us() / 2))
        assert len(sub) < len(plan)
        for entry, original in zip(sub.entries, plan.entries):
            assert entry.predicate_id == original.predicate_id
            assert entry.clause == original.clause

    def test_restrict_respects_budget(self, setup):
        _, _, plan = setup
        for fraction in (0.0, 0.3, 0.7, 1.0):
            budget = Budget(plan.total_cost_us() * fraction)
            sub = plan.restrict(budget)
            assert sub.total_cost_us() <= budget.us + 1e-9

    def test_full_budget_restriction_is_identity(self, setup):
        _, _, plan = setup
        sub = plan.restrict(Budget(plan.total_cost_us() + 1))
        assert [e.predicate_id for e in sub.entries] == plan.predicate_ids


class TestHeterogeneousFleet:
    def test_answers_exact_with_mixed_clients(self, tmp_path, setup):
        lines, workload, plan = setup
        server = CiaoServer(tmp_path, plan=plan, workload=workload)
        third = len(lines) // 3
        weak_plan = plan.restrict(Budget(plan.total_cost_us() / 3))
        clients = [
            SimulatedClient("strong", plan=plan, chunk_size=200),
            SimulatedClient("weak", plan=weak_plan, chunk_size=200),
            SimulatedClient("mute", plan=None, chunk_size=200),
        ]
        parts = [lines[:third], lines[third:2 * third], lines[2 * third:]]
        for client, part in zip(clients, parts):
            for chunk in client.process(part):
                server.ingest(chunk)
        server.finalize_loading()

        parsed = [parse_object(line) for line in lines]
        for query in workload.queries:
            expected = sum(1 for r in parsed if query.evaluate(r))
            assert server.query(query.sql("t")).scalar() == expected

    def test_partially_annotated_chunks_load_eagerly(self, tmp_path, setup):
        lines, workload, plan = setup
        server = CiaoServer(tmp_path, plan=plan, workload=workload)
        assert server.partial_loading_enabled
        weak_plan = plan.restrict(Budget(plan.total_cost_us() / 3))
        weak = SimulatedClient("weak", plan=weak_plan, chunk_size=300)
        for chunk in weak.process(lines):
            server.ingest(chunk)
        summary = server.finalize_loading()
        # Nothing may be sidelined: the weak client did not test every
        # pushed predicate.
        assert summary.loading_ratio == 1.0

    def test_fully_annotated_chunks_still_partially_load(self, tmp_path,
                                                         setup):
        lines, workload, plan = setup
        server = CiaoServer(tmp_path, plan=plan, workload=workload)
        strong = SimulatedClient("strong", plan=plan, chunk_size=300)
        for chunk in strong.process(lines):
            server.ingest(chunk)
        summary = server.finalize_loading()
        assert summary.loading_ratio < 1.0
