"""Fig. 4 — end-to-end experiments on the Yelp Review dataset.

Budgets 0–50 µs/record (Yelp records are long, so predicate evaluation is
pricier than on the log dataset); otherwise the Fig. 3 setup.
"""

from conftest import config_for, run_once

from repro.bench import (
    BUDGET_GRIDS,
    emit,
    emit_json,
    end_to_end_sweep,
    headline_speedups,
    metrics_table,
    speedup_summary,
    sweep_payload,
)

PARAMS = config_for("yelp", n_records=3000, n_queries=50)


def test_fig4_yelp_end_to_end(benchmark, tmp_path, results_dir):
    def experiment():
        return end_to_end_sweep(
            "yelp",
            tmp_path,
            config=PARAMS["config"],
            n_queries=PARAMS["n_queries"],
            budgets=BUDGET_GRIDS["yelp"],
        )

    sweep = run_once(benchmark, experiment)
    sections = []
    for label, runs in sweep.items():
        sections.append(metrics_table(runs, f"Fig 4 — workload {label}"))
        sections.append(speedup_summary(runs[0], runs[1:]))
    best = headline_speedups(sweep)
    sections.append(
        "best speedups across Fig 4: "
        f"loading {best['loading']:.1f}x, query {best['query']:.1f}x, "
        f"end-to-end {best['end_to_end']:.1f}x"
    )
    emit("fig4_yelp_end_to_end", "\n\n".join(sections), results_dir)
    emit_json("fig4_yelp_end_to_end", {
        "sweep": sweep_payload(sweep),
        "headline_speedups": best,
    }, results_dir)

    for label, runs in sweep.items():
        baseline = runs[0]
        assert baseline.budget_us == 0
        # Larger budgets push at least as many predicates.
        pushed = [m.n_pushed for m in runs]
        assert pushed == sorted(pushed), label
