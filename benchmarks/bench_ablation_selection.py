"""Ablation — selection algorithm quality and cost.

Compares the paper's Algorithm 1 (naive greedy), Algorithm 2 (benefit-cost
greedy), the combined max-of-both selector, and the CELF-accelerated
variant: objective value f(S) against the brute-force optimum on a small
pool, and marginal-gain evaluation counts on a full-size pool.
"""

from conftest import run_once

from repro.bench import emit, emit_json, format_table
from repro.core import (
    Budget,
    CiaoOptimizer,
    CostModel,
    DEFAULT_COEFFICIENTS,
    celf_greedy,
    exhaustive_optimum,
    naive_greedy,
    ratio_greedy,
    select_predicates,
)
from repro.data import make_generator
from repro.data.randomness import rng_stream
from repro.workload import (
    PredicatePool,
    UNIFORM,
    estimate_selectivities,
    generate_workload,
    zipfian,
)

SEED = 20210223


def build_optimizer(max_per_template, n_queries, exponent):
    rng = rng_stream(SEED, f"ablation-sel:{max_per_template}")
    pool = PredicatePool.from_templates(
        "winlog", rng=rng, max_per_template=max_per_template
    )
    dist = zipfian(exponent) if exponent else UNIFORM
    workload = generate_workload(
        pool, n_queries, 3.0, dist, rng_stream(SEED, "ablation-sel-q")
    )
    gen = make_generator("winlog", SEED)
    sels = estimate_selectivities(
        workload.candidate_pool, gen.sample(1200)
    )
    model = CostModel(DEFAULT_COEFFICIENTS, gen.average_record_length())
    return CiaoOptimizer(workload, sels, model)


def test_ablation_selection_quality_and_evals(benchmark, results_dir):
    def experiment():
        # Small instance: compare against the exhaustive optimum.
        small = build_optimizer(max_per_template=3, n_queries=10,
                                exponent=1.0)
        quality_rows = []
        for budget in (0.5, 1.0, 2.0):
            opt = exhaustive_optimum(small.objective, small.costs, budget)
            for name, algo in [
                ("naive (Alg.1)", naive_greedy),
                ("ratio (Alg.2)", ratio_greedy),
                ("combined", select_predicates),
                ("celf", celf_greedy),
            ]:
                result = algo(small.objective, small.costs, budget)
                quality_rows.append(
                    (
                        budget, name, result.objective_value,
                        opt.objective_value,
                        result.objective_value
                        / max(opt.objective_value, 1e-12),
                    )
                )
        # Full-size pool: count evaluations.
        large = build_optimizer(max_per_template=None, n_queries=100,
                                exponent=1.2)
        eval_rows = []
        for budget in (2.0, 5.0, 10.0):
            eager = ratio_greedy(large.objective, large.costs, budget)
            lazy = celf_greedy(large.objective, large.costs, budget)
            assert lazy.selected == eager.selected
            eval_rows.append(
                (
                    budget, len(eager), eager.evaluations,
                    lazy.evaluations,
                    eager.evaluations / max(lazy.evaluations, 1),
                )
            )
        return quality_rows, eval_rows

    quality_rows, eval_rows = run_once(benchmark, experiment)
    quality = format_table(
        ["budget", "algorithm", "f(S)", "OPT", "ratio to OPT"],
        quality_rows,
    )
    evals = format_table(
        ["budget", "#selected", "evals (eager)", "evals (CELF)",
         "saving"],
        eval_rows,
    )
    emit(
        "ablation_selection",
        f"== Selection ablation: quality ==\n{quality}\n\n"
        f"== Selection ablation: lazy evaluation ==\n{evals}",
        results_dir,
    )
    emit_json("ablation_selection", {
        "quality": {
            "headers": ["budget", "algorithm", "f(S)", "OPT",
                        "ratio to OPT"],
            "rows": [list(row) for row in quality_rows],
        },
        "lazy_evaluation": {
            "headers": ["budget", "#selected", "evals (eager)",
                        "evals (CELF)", "saving"],
            "rows": [list(row) for row in eval_rows],
        },
    }, results_dir)

    # Every algorithm clears the 0.316·OPT bound; combined ≥ both arms.
    for budget, name, value, opt, ratio in quality_rows:
        assert ratio >= 0.316 - 1e-9, (budget, name)
    # CELF strictly saves evaluations at scale.
    assert all(saving > 1.5 for *_, saving in eval_rows)
