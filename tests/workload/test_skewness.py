"""Unit tests for the skewness factor and skew-targeted workloads."""

import math
import random

import pytest

from repro.core import clause, exact
from repro.workload import (
    PredicatePool,
    multiplicities_for_skew,
    skewness_factor,
    workload_skewness,
    workload_with_skewness,
)


class TestSkewnessFactor:
    def test_uniform_counts_have_zero_skew(self):
        assert skewness_factor([2, 2, 2, 2]) == 0.0
        assert skewness_factor([1]) == 0.0

    def test_formula_matches_manual_computation(self):
        counts = [5, 2, 1, 1, 1]
        n = len(counts)
        mean = sum(counts) / n
        sigma = math.sqrt(sum((x - mean) ** 2 for x in counts) / n)
        expected = sum((x - mean) ** 3 for x in counts) / (
            (n - 1) * sigma ** 3
        )
        assert skewness_factor(counts) == pytest.approx(expected)

    def test_right_skewed_is_positive(self):
        assert skewness_factor([10, 1, 1, 1, 1]) > 0

    def test_left_skewed_is_negative(self):
        assert skewness_factor([10, 10, 10, 1]) < 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            skewness_factor([])


class TestMultiplicities:
    def test_partition_sums_to_slots(self):
        parts = multiplicities_for_skew(5, 2, 0.5)
        assert sum(parts) == 10
        assert max(parts) <= 5

    def test_zero_target_yields_uniform(self):
        parts = multiplicities_for_skew(5, 2, 0.0)
        assert skewness_factor(parts) == 0.0
        assert max(parts) == 1  # max-part penalty prefers the flattest

    def test_high_target_concentrates(self):
        parts = multiplicities_for_skew(5, 2, 2.0)
        assert max(parts) == 5

    def test_coverage_grows_with_target(self):
        tops = [
            max(multiplicities_for_skew(5, 2, t)) for t in (0.0, 0.5, 2.0)
        ]
        assert tops == sorted(tops)

    def test_too_many_slots_rejected(self):
        with pytest.raises(ValueError):
            multiplicities_for_skew(30, 2, 1.0)


class TestSkewWorkloads:
    @pytest.fixture()
    def pool(self):
        return PredicatePool(
            "demo", [clause(exact("c", f"v{i}")) for i in range(20)]
        )

    @pytest.mark.parametrize("target", [0.0, 0.5, 2.0])
    def test_workload_shape(self, pool, target):
        wl = workload_with_skewness(pool, 5, 2, target, random.Random(4))
        assert len(wl) == 5
        assert all(len(q) == 2 for q in wl)

    def test_achieved_skew_tracks_target(self, pool):
        achieved = [
            workload_skewness(
                workload_with_skewness(pool, 5, 2, t, random.Random(4))
            )
            for t in (0.0, 0.5, 2.0)
        ]
        assert achieved[0] == pytest.approx(0.0, abs=1e-9)
        assert achieved == sorted(achieved)

    def test_no_query_repeats_a_predicate(self, pool):
        wl = workload_with_skewness(pool, 5, 2, 2.0, random.Random(4))
        for q in wl:
            assert len(q.clauses) == len(set(q.clauses)) == 2

    def test_pool_too_small_rejected(self):
        tiny = PredicatePool("demo", [clause(exact("c", "v"))])
        with pytest.raises(ValueError):
            workload_with_skewness(tiny, 5, 2, 0.0, random.Random(4))
