"""Integration tests for coordinated fleet loading.

The contract under test: an N-client heterogeneous fleet produces exactly
the same query results as serial single-client ingest of the same records
— across shard counts, dispatch policies, backpressure settings, and
admission control.
"""

import pytest

from repro.client import SimulatedClient
from repro.core import (
    Budget,
    CiaoOptimizer,
    CostModel,
    DEFAULT_COEFFICIENTS,
)
from repro.data import make_generator
from repro.fleet import ClientPopulation, FleetCoordinator
from repro.server import CiaoServer
from repro.simulate import MemoryChannel
from repro.workload import estimate_selectivities, table3_workload

SEED = 20260727
N_RECORDS = 1500
CHUNK = 150


@pytest.fixture(scope="module")
def setup():
    generator = make_generator("yelp", SEED)
    lines = list(generator.raw_lines(N_RECORDS))
    workload = table3_workload("yelp", "A", seed=SEED, n_queries=10)
    sels = estimate_selectivities(
        workload.candidate_pool, generator.sample(800)
    )
    model = CostModel(DEFAULT_COEFFICIENTS, 160)
    plan = CiaoOptimizer(workload, sels, model).plan(Budget(15.0))
    return lines, workload, plan


@pytest.fixture(scope="module")
def reference(setup, tmp_path_factory):
    """Serial single-client ingest of the same records."""
    lines, workload, plan = setup
    server = CiaoServer(
        tmp_path_factory.mktemp("ref"), plan=plan, workload=workload
    )
    client = SimulatedClient("solo", plan=plan, chunk_size=CHUNK)
    for chunk in client.process(lines):
        server.ingest(chunk)
    server.finalize_loading()
    return server


def answers(server, workload):
    return [server.query(q.sql("t")).scalar() for q in workload.queries]


def run_fleet(tmp_path, setup, n_clients=5, n_shards=2, budget=6.0,
              **kwargs):
    lines, workload, plan = setup
    server_kwargs = kwargs.pop("server_kwargs", {})
    server = CiaoServer(
        tmp_path / "fleet", plan=plan, workload=workload,
        n_shards=n_shards, shard_mode="thread", **server_kwargs
    )
    population = kwargs.pop(
        "population", ClientPopulation.generate(n_clients, seed=SEED)
    )
    coordinator = FleetCoordinator(
        server, population,
        global_plan=plan,
        aggregate_budget=Budget(budget) if budget is not None else None,
        chunk_size=CHUNK,
        **kwargs,
    )
    report = coordinator.run(lines)
    return server, report


class TestEquivalence:
    def test_fleet_matches_serial_ingest(self, tmp_path, setup,
                                         reference):
        lines, workload, _ = setup
        server, report = run_fleet(tmp_path, setup)
        assert report.no_record_loss
        assert answers(server, workload) == answers(reference, workload)

    def test_serial_server_fleet(self, tmp_path, setup, reference):
        lines, workload, _ = setup
        server, report = run_fleet(tmp_path, setup, n_shards=1)
        assert report.no_record_loss
        assert answers(server, workload) == answers(reference, workload)

    def test_unbudgeted_fleet(self, tmp_path, setup, reference):
        """No aggregate budget: every client runs the full plan."""
        lines, workload, _ = setup
        server, report = run_fleet(tmp_path, setup, budget=None)
        assert all(c.n_pushed == len(setup[2]) for c in report.clients)
        assert answers(server, workload) == answers(reference, workload)

    def test_reallocation_keeps_answers_exact(self, tmp_path, setup,
                                              reference):
        lines, workload, _ = setup
        server, report = run_fleet(
            tmp_path, setup, realloc_interval=3
        )
        assert report.realloc_rounds >= 1
        assert report.no_record_loss
        assert answers(server, workload) == answers(reference, workload)


class TestDeterminism:
    """Same seed ⇒ identical population, partition, and query results."""

    def test_population_and_partition_reproduce(self, setup):
        lines, _, _ = setup
        a = ClientPopulation.generate(6, seed=SEED)
        b = ClientPopulation.generate(6, seed=SEED)
        assert a.specs == b.specs
        assert a.partition(lines) == b.partition(lines)

    def test_round_robin_results_identical_across_runs(self, tmp_path,
                                                       setup, reference):
        lines, workload, _ = setup
        first_server, first = run_fleet(
            tmp_path / "a", setup,
            server_kwargs={"dispatch": "round-robin"},
        )
        second_server, second = run_fleet(
            tmp_path / "b", setup,
            server_kwargs={"dispatch": "round-robin"},
        )
        assert first.no_record_loss and second.no_record_loss
        expected = answers(reference, workload)
        assert answers(first_server, workload) == expected
        assert answers(second_server, workload) == expected
        # Identical initial assignment both runs.
        assert (
            [c.assigned_records for c in first.clients]
            == [c.assigned_records for c in second.clients]
        )


class TestAccounting:
    def test_per_source_sessions(self, tmp_path, setup):
        server, report = run_fleet(tmp_path, setup)
        sources = server.ingest_sources
        assert set(sources) == {c.client_id for c in report.clients}
        assert sum(sources.values()) == report.summary.chunks
        assert report.chunks_by_source == sources
        # Shipped chunks per client match what the server attributed.
        for client in report.clients:
            assert sources[client.client_id] == client.shipped_chunks

    def test_budget_allocation_reflected(self, tmp_path, setup):
        from repro.fleet import FleetBudgetAllocator

        _, _, plan = setup
        population = ClientPopulation.generate(5, seed=SEED)
        expected = FleetBudgetAllocator(plan, Budget(6.0)).allocate(
            population.profiles()
        )
        server, report = run_fleet(
            tmp_path, setup, population=population
        )
        for client in report.clients:
            assert client.budget_us == pytest.approx(
                expected.budgets[client.client_id].us
            )
            assert client.n_pushed == expected.pushed(client.client_id)
            assert client.n_pushed <= len(plan)

    def test_ledger_accounts(self, tmp_path, setup):
        server, report = run_fleet(tmp_path, setup)
        assert report.ledger.virtual_us.get("prefiltering", 0) > 0
        assert report.ledger.wall_seconds.get("prefiltering", 0) > 0


class TestBackpressure:
    def test_channel_pending_stays_bounded(self, tmp_path, setup):
        lines, workload, plan = setup
        max_pending = 3
        peaks = {}

        class Watched(MemoryChannel):
            def __init__(self, client_id):
                super().__init__()
                self._client_id = client_id
                peaks[client_id] = 0

            def send(self, payload):
                super().send(payload)
                peaks[self._client_id] = max(
                    peaks[self._client_id], self.pending()
                )

        server, report = run_fleet(
            tmp_path, setup,
            max_pending=max_pending,
            channel_factory=Watched,
        )
        assert report.no_record_loss
        assert peaks and all(
            peak <= max_pending for peak in peaks.values()
        )

    def test_admission_control_completes(self, tmp_path, setup,
                                         reference):
        lines, workload, _ = setup
        server, report = run_fleet(tmp_path, setup, max_active=2)
        assert report.no_record_loss
        assert answers(server, workload) == answers(reference, workload)


class TestLifecycle:
    def test_run_is_single_use(self, tmp_path, setup):
        lines, workload, plan = setup
        server = CiaoServer(tmp_path / "once", plan=plan,
                            workload=workload)
        coordinator = FleetCoordinator(
            server, ClientPopulation.generate(2, seed=SEED),
            global_plan=plan, chunk_size=CHUNK,
        )
        coordinator.run(lines[:300])
        with pytest.raises(RuntimeError):
            coordinator.run(lines[:300])

    def test_parameter_validation(self, tmp_path, setup):
        lines, workload, plan = setup
        server = CiaoServer(tmp_path / "v", plan=plan, workload=workload)
        population = ClientPopulation.generate(2, seed=SEED)
        for kwargs in (
            {"chunk_size": 0},
            {"batch_size": 0},
            {"max_pending": 0},
            {"max_active": 0},
            {"realloc_interval": 0},
        ):
            with pytest.raises(ValueError):
                FleetCoordinator(server, population, **kwargs)
