"""ciaolint: AST-based project-invariant checks + runtime lock sanitizer.

Static half: ``python -m repro.analysis src`` runs five checkers
(lock-discipline, yield-under-lock, protocol-bounds, api-hygiene,
determinism) over the tree and exits non-zero on findings.  See
``README.md`` in this package for the annotation conventions and how to
add a checker.

Runtime half: :func:`make_lock`/:func:`make_rlock`/:func:`make_condition`
return plain :mod:`threading` primitives normally and order-recording
wrappers when ``CIAO_LOCKSAN=1`` — the observed acquisition orders are
checked against the static lock graph at test-session teardown.
"""

from repro.analysis.annotations import guarded_by
from repro.analysis.cli import AnalysisResult, main, run_analysis
from repro.analysis.findings import Finding
from repro.analysis.lockgraph import (
    LockGraph,
    build_lock_graph,
    build_lock_graph_from_paths,
)
from repro.analysis.model import Project
from repro.analysis.registry import Checker, all_checkers, register
from repro.analysis.sanitizer import (
    LockOrderError,
    make_condition,
    make_lock,
    make_rlock,
    verify_consistent,
)

__all__ = [
    "AnalysisResult",
    "Checker",
    "Finding",
    "LockGraph",
    "LockOrderError",
    "Project",
    "all_checkers",
    "build_lock_graph",
    "build_lock_graph_from_paths",
    "guarded_by",
    "main",
    "make_condition",
    "make_lock",
    "make_rlock",
    "register",
    "run_analysis",
    "verify_consistent",
]
