"""Workload substrate: Table II templates, predicate pools, selectivity
estimation, query generation, and the canonical experiment workloads."""

from .generator import (
    SelectionDistribution,
    UNIFORM,
    fixed_size_query,
    generate_query,
    generate_workload,
    overlap_statistics,
    zipfian,
)
from .pool import PredicatePool
from .selectivity import (
    MIN_SELECTIVITY,
    estimate_selectivities,
    estimate_selectivity,
    false_positive_rates,
    measure_raw_hit_rates,
)
from .skewness import (
    multiplicities_for_skew,
    skewness_factor,
    workload_skewness,
    workload_with_skewness,
)
from .templates import PredicateTemplate, table2_summary, templates_for
from .workloads import (
    OVERLAP_LEVELS,
    SELECTIVITY_LEVELS,
    SKEWNESS_LEVELS,
    TABLE3_SPECS,
    WorkloadSpec,
    overlap_workload,
    selectivity_workload,
    skewness_workload,
    table3_workload,
)

__all__ = [
    "MIN_SELECTIVITY",
    "OVERLAP_LEVELS",
    "PredicatePool",
    "PredicateTemplate",
    "SELECTIVITY_LEVELS",
    "SKEWNESS_LEVELS",
    "SelectionDistribution",
    "TABLE3_SPECS",
    "UNIFORM",
    "WorkloadSpec",
    "estimate_selectivities",
    "estimate_selectivity",
    "false_positive_rates",
    "fixed_size_query",
    "generate_query",
    "generate_workload",
    "measure_raw_hit_rates",
    "multiplicities_for_skew",
    "overlap_statistics",
    "overlap_workload",
    "selectivity_workload",
    "skewness_factor",
    "skewness_workload",
    "table2_summary",
    "table3_workload",
    "templates_for",
    "workload_skewness",
    "workload_with_skewness",
    "zipfian",
]
