"""The client-assisted data loader (paper §VI-A).

For every received chunk the loader:

1. computes the **load mask** — the union of the chunk's predicate
   bit-vectors (a record is loaded iff it may satisfy at least one pushed
   predicate);
2. **parses** the selected records with the from-scratch JSON parser (the
   expensive step partial loading exists to avoid) and writes them as one
   Parquet-lite row group, attaching the *derived* bit-vectors (original
   vectors restricted to the loaded positions);
3. appends the rejected records, unparsed, to the raw JSON sideline store.

Malformed-record policy: a selected record that fails to parse is counted
as ``malformed`` and its raw text is appended to the sideline store, so no
byte of input is ever dropped (corruption is quarantined, not erased).  The
per-chunk invariant is ``received == loaded + sidelined + malformed`` —
the three report counters partition the chunk — while the *side store*
receives ``sidelined + malformed`` records.

Scaling: one loader is strictly serial.  Under heavy multi-client traffic
the server fans chunks across several loaders via
:class:`repro.server.pipeline.ShardedIngestPipeline` — each shard owns a
private loader writing shard-local Parquet-lite parts and a shard-local
sideline, and the pipeline merges all shard outputs into the catalog when
loading finalizes.  Nothing in this module is shard-aware; the pipeline
composes loaders without changing their contract.

Partial-loading policy: the mask is honoured only when the loader was
constructed with ``partial_loading=True``.  The CIAO server enables it when
the pushed-down set covers every prospective query (§VI-B: a covered query
never needs the sideline).  With partial loading off — low budgets, low
overlap, or the eager baseline — every record is loaded, but bit-vectors
are *still* retained for data skipping, which is why workloads with no
loading win can still show query wins (Fig. 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..bitvec.bitvector import BitVector
from ..obs.metrics import Metrics, resolve_metrics
from ..rawjson.chunks import JsonChunk
from ..rawjson.parser import try_parse
from ..storage.columnar import ParquetLiteWriter
from ..storage.jsonstore import JsonSideStore
from ..storage.schema import (
    Schema,
    infer_schema,
    merge_schemas,
    schema_covers,
)


@dataclass
class LoadReport:
    """Accounting for one ingested chunk."""

    chunk_id: int
    received: int
    loaded: int
    sidelined: int
    malformed: int
    wall_seconds: float


@dataclass
class LoadSummary:
    """Accounting for a whole loading session."""

    chunks: int = 0
    received: int = 0
    loaded: int = 0
    sidelined: int = 0
    malformed: int = 0
    wall_seconds: float = 0.0
    reports: List[LoadReport] = field(default_factory=list)

    @property
    def loading_ratio(self) -> float:
        """Loaded / received — the y-axis of Figs 7, 9, 11."""
        return self.loaded / self.received if self.received else 0.0

    def add(self, report: LoadReport) -> None:
        """Fold one chunk report in."""
        self.chunks += 1
        self.received += report.received
        self.loaded += report.loaded
        self.sidelined += report.sidelined
        self.malformed += report.malformed
        self.wall_seconds += report.wall_seconds
        self.reports.append(report)


class ClientAssistedLoader:
    """Load annotated chunks into Parquet-lite + sideline storage.

    JSON streams have no declared schema, so the loader infers one from the
    first loaded chunk and *rotates* to a new file with a widened schema
    whenever a later chunk introduces new keys or wider types — the same
    strategy streaming warehouses use for schema drift.  All produced files
    together form the table (:attr:`parquet_paths`).

    Args:
        parquet_path: Base output path; rotated parts append ``.partN``.
        side_store: Sideline store for unloaded records.
        partial_loading: Honour the load mask; off = load everything.
        schema: Optional pre-agreed schema (servers usually know one from
            historical data); inference and rotation still widen it if the
            stream disagrees.
    """

    def __init__(self, parquet_path: str | Path,
                 side_store: JsonSideStore,
                 partial_loading: bool,
                 schema: Optional[Schema] = None,
                 required_predicate_ids: Optional[Sequence[int]] = None,
                 metrics: Optional[Metrics] = None):
        self.parquet_path = Path(parquet_path)
        metrics = resolve_metrics(metrics)
        self._m_chunks = metrics.counter("loader.chunks")
        self._m_received = metrics.counter("loader.records_received")
        self._m_loaded = metrics.counter("loader.records_loaded")
        self._m_sidelined = metrics.counter("loader.records_sidelined")
        self._m_malformed = metrics.counter("loader.records_malformed")
        self._m_seconds = metrics.histogram("loader.chunk_seconds")
        self._m_seals = metrics.counter("loader.parts_sealed")
        self.side_store = side_store
        self.partial_loading = partial_loading
        self._schema = schema
        #: Ids every chunk must annotate before any of its records may be
        #: sidelined.  In heterogeneous fleets a weak client evaluates only
        #: a sub-plan; a record it did not test against some pushed
        #: predicate could still satisfy that predicate, so it must load.
        self._required_ids = (
            frozenset(required_predicate_ids)
            if required_predicate_ids is not None else None
        )
        self._writer: Optional[ParquetLiteWriter] = None
        self.parquet_paths: List[Path] = []
        self.summary = LoadSummary()
        self._finalized = False

    def _may_sideline(self, chunk: JsonChunk) -> bool:
        if not self.partial_loading:
            return False
        if self._required_ids is None:
            return bool(chunk.bitvectors)
        return self._required_ids <= set(chunk.bitvectors)

    def ingest(self, chunk: JsonChunk) -> LoadReport:
        """Load one chunk per the partial-loading policy."""
        if self._finalized:
            raise RuntimeError("loader already finalized")
        start = time.perf_counter()
        if self._may_sideline(chunk):
            mask = chunk.load_mask()
        else:
            mask = BitVector.ones(len(chunk.records))
        selected, rejected = chunk.split_by_mask(mask)

        parsed_rows: List[Mapping[str, Any]] = []
        kept_positions: List[int] = []
        malformed_positions: List[int] = []
        for position in selected:
            value, ok = try_parse(chunk.records[position])
            if ok and isinstance(value, dict):
                parsed_rows.append(value)
                kept_positions.append(position)
            else:
                malformed_positions.append(position)

        if parsed_rows:
            writer = self._ensure_writer(parsed_rows)
            derived = self._derive_bitvectors(chunk, kept_positions)
            writer.write_row_group(
                parsed_rows,
                bitvectors=derived,
                source_chunk_id=chunk.chunk_id,
            )
        # Mask-rejected AND malformed records both land in the side store,
        # in arrival order: malformed input is quarantined raw, never
        # dropped (see the module docstring for the counting invariant).
        unloaded = sorted(rejected + malformed_positions)
        if unloaded:
            self.side_store.append(
                chunk.chunk_id, (chunk.records[i] for i in unloaded)
            )
        report = LoadReport(
            chunk_id=chunk.chunk_id,
            received=len(chunk.records),
            loaded=len(parsed_rows),
            sidelined=len(rejected),
            malformed=len(malformed_positions),
            wall_seconds=time.perf_counter() - start,
        )
        assert report.received == (
            report.loaded + report.sidelined + report.malformed
        ), "loader invariant violated: counters must partition the chunk"
        self.summary.add(report)
        self._m_chunks.inc()
        self._m_received.inc(report.received)
        self._m_loaded.inc(report.loaded)
        self._m_sidelined.inc(report.sidelined)
        self._m_malformed.inc(report.malformed)
        self._m_seconds.observe(report.wall_seconds)
        return report

    def seal_part(self) -> None:
        """Close the currently open Parquet part, making it readable.

        The loader keeps accepting chunks: the next loaded chunk opens a
        fresh ``.partN`` file.  This is what lets streaming readers scan a
        consistent loaded-so-far view while ingestion continues — a sealed
        part has its footer written and is immutable from then on.
        No-op when no part is open.
        """
        if self._writer is not None:
            self._writer.close()  # ciaolint: allow[LCK002] -- ParquetLiteWriter.close takes no locks; the `.close()` name union binds wider
            self._writer = None
            self._m_seals.inc()

    @property
    def sealed_paths(self) -> List[Path]:
        """Parquet parts already sealed (footer written, safe to read).

        Excludes the part currently being written, if any.
        """
        if self._writer is None:
            return list(self.parquet_paths)
        return [p for p in self.parquet_paths if p != self._writer.path]

    def finalize(self) -> LoadSummary:
        """Seal the Parquet-lite file; idempotent."""
        if not self._finalized:
            if self._writer is not None:
                self._writer.close()  # ciaolint: allow[LCK002] -- ParquetLiteWriter.close takes no locks; the `.close()` name union binds wider
                self._writer = None
            self._finalized = True
        return self.summary

    # ------------------------------------------------------------------
    def _ensure_writer(self, rows: Sequence[Mapping[str, Any]]
                       ) -> ParquetLiteWriter:
        needed = infer_schema(rows)
        if self._schema is None:
            self._schema = needed
        elif not schema_covers(self._schema, needed):
            self._schema = merge_schemas(self._schema, needed)
            if self._writer is not None:
                self._writer.close()  # ciaolint: allow[LCK002] -- ParquetLiteWriter.close takes no locks; the `.close()` name union binds wider
                self._writer = None
        if self._writer is None:
            part = self.parquet_path.with_suffix(
                f".part{len(self.parquet_paths)}" + self.parquet_path.suffix
            )
            self._writer = ParquetLiteWriter(part, self._schema)
            self.parquet_paths.append(part)
        return self._writer

    @staticmethod
    def _derive_bitvectors(chunk: JsonChunk,
                           kept_positions: Sequence[int]
                           ) -> Dict[int, BitVector]:
        """Restrict chunk bit-vectors to the loaded rows (paper §VI-A).

        Row ``i`` of the row group corresponds to ``kept_positions[i]`` of
        the original chunk.
        """
        return {
            pid: bv.select(kept_positions)
            for pid, bv in chunk.bitvectors.items()
        }
