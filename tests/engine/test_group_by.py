"""Unit tests for GROUP BY aggregation."""

import random

import pytest

from repro.engine import (
    Catalog,
    Executor,
    PlannerError,
    SqlError,
    TableEntry,
    parse_sql,
)
from repro.storage import ParquetLiteWriter, infer_schema


@pytest.fixture(scope="module")
def rows():
    rng = random.Random(7)
    return [
        {
            "city": rng.choice(["x", "y", "z"]),
            "tier": rng.choice(["gold", "free"]),
            "amount": rng.randrange(100),
            "note": rng.choice(["a", None]),
        }
        for _ in range(120)
    ]


@pytest.fixture(scope="module")
def executor(rows, tmp_path_factory):
    path = tmp_path_factory.mktemp("groupby") / "t.pql"
    with ParquetLiteWriter(path, infer_schema(rows)) as writer:
        for start in range(0, len(rows), 40):
            writer.write_row_group(rows[start:start + 40])
    catalog = Catalog()
    catalog.register(TableEntry(name="t", parquet_paths=[path]))
    return Executor(catalog)


def oracle_groups(rows, keys):
    groups = {}
    for row in rows:
        groups.setdefault(tuple(row.get(k) for k in keys), []).append(row)
    return groups


class TestParsing:
    def test_group_by_parses(self):
        q = parse_sql("SELECT city, COUNT(*) FROM t GROUP BY city")
        assert q.group_by == ("city",)
        assert q.is_aggregate

    def test_multi_column_group_by(self):
        q = parse_sql(
            "SELECT city, tier, COUNT(*) FROM t GROUP BY city, tier"
        )
        assert q.group_by == ("city", "tier")

    def test_group_requires_by(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT city FROM t GROUP city")


class TestExecution:
    def test_count_per_group(self, executor, rows):
        result = executor.execute(
            "SELECT city, COUNT(*) FROM t GROUP BY city"
        )
        expected = oracle_groups(rows, ["city"])
        got = {r["city"]: r["count(*)"] for r in result.rows}
        assert got == {k[0]: len(v) for k, v in expected.items()}

    def test_multiple_aggregates_per_group(self, executor, rows):
        result = executor.execute(
            "SELECT tier, SUM(amount), MIN(amount), MAX(amount), "
            "AVG(amount) FROM t GROUP BY tier"
        )
        expected = oracle_groups(rows, ["tier"])
        for row in result.rows:
            amounts = [r["amount"] for r in expected[(row["tier"],)]]
            assert row["sum(amount)"] == sum(amounts)
            assert row["min(amount)"] == min(amounts)
            assert row["max(amount)"] == max(amounts)
            assert row["avg(amount)"] == pytest.approx(
                sum(amounts) / len(amounts)
            )

    def test_group_by_two_columns(self, executor, rows):
        result = executor.execute(
            "SELECT city, tier, COUNT(*) FROM t GROUP BY city, tier"
        )
        expected = oracle_groups(rows, ["city", "tier"])
        assert len(result.rows) == len(expected)
        for row in result.rows:
            assert row["count(*)"] == len(
                expected[(row["city"], row["tier"])]
            )

    def test_where_applies_before_grouping(self, executor, rows):
        result = executor.execute(
            "SELECT city, COUNT(*) FROM t WHERE tier = 'gold' "
            "GROUP BY city"
        )
        expected = oracle_groups(
            [r for r in rows if r["tier"] == "gold"], ["city"]
        )
        got = {r["city"]: r["count(*)"] for r in result.rows}
        assert got == {k[0]: len(v) for k, v in expected.items()}

    def test_null_group_keys(self, executor, rows):
        result = executor.execute(
            "SELECT note, COUNT(*) FROM t GROUP BY note"
        )
        keys = {r["note"] for r in result.rows}
        assert None in keys and "a" in keys

    def test_per_column_count_ignores_nulls(self, executor, rows):
        result = executor.execute(
            "SELECT city, COUNT(note) FROM t GROUP BY city"
        )
        expected = oracle_groups(rows, ["city"])
        for row in result.rows:
            non_null = sum(
                1 for r in expected[(row["city"],)]
                if r["note"] is not None
            )
            assert row["count(note)"] == non_null

    def test_limit_applies_to_groups(self, executor):
        result = executor.execute(
            "SELECT city, COUNT(*) FROM t GROUP BY city LIMIT 2"
        )
        assert len(result.rows) == 2

    def test_ungrouped_bare_column_rejected(self, executor):
        with pytest.raises(PlannerError):
            executor.execute(
                "SELECT city, tier, COUNT(*) FROM t GROUP BY city"
            )
