"""Baseline support: grandfather known findings, with justification.

A baseline file is a JSON document::

    {
      "version": 1,
      "entries": [
        {
          "rule": "PRO002",
          "path": "src/repro/storage/encodings.py",
          "message": "struct.unpack on the decode path: ...",
          "justification": "length prechecked two lines above"
        }
      ]
    }

Matching is on ``(rule, path, message)`` — line numbers are deliberately
excluded so edits above a baselined site do not resurrect it.  Every
entry MUST carry a non-empty ``justification``; an unjustified entry is
a configuration error (the whole point is that suppressions are argued,
not accumulated).  The committed baseline for this repo is empty: new
findings must be fixed or carry an inline ``allow`` marker, and the
baseline exists as the escape hatch for genuinely staged cleanups.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .findings import Finding

_KEY_FIELDS = ("rule", "path", "message")


class BaselineError(ValueError):
    """The baseline file is malformed or missing a justification."""


def _entry_key(entry: Dict[str, str]) -> Tuple[str, str, str]:
    return tuple(entry[field] for field in _KEY_FIELDS)  # type: ignore


def load_baseline(path: Path) -> List[Dict[str, str]]:
    """Parse and validate a baseline file.  Missing file -> empty."""
    if not path.exists():
        return []
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(
            doc.get("entries"), list):
        raise BaselineError(
            f"baseline {path} must be an object with an 'entries' list"
        )
    entries: List[Dict[str, str]] = []
    for i, entry in enumerate(doc["entries"]):
        if not isinstance(entry, dict):
            raise BaselineError(
                f"baseline {path} entry {i} is not an object"
            )
        for field in _KEY_FIELDS:
            if not isinstance(entry.get(field), str) or not entry[field]:
                raise BaselineError(
                    f"baseline {path} entry {i} missing {field!r}"
                )
        justification = entry.get("justification")
        if (not isinstance(justification, str)
                or not justification.strip()
                or justification.strip().upper().startswith("TODO")):
            raise BaselineError(
                f"baseline {path} entry {i} "
                f"({entry['rule']} {entry['path']}) has no "
                f"justification — every baselined finding must argue "
                f"why it is acceptable (TODO placeholders from "
                f"--write-baseline do not count)"
            )
        entries.append(entry)
    return entries


def partition(
    findings: Iterable[Finding], entries: List[Dict[str, str]],
) -> Tuple[List[Finding], List[Finding], List[Dict[str, str]]]:
    """Split findings into (new, baselined); also return stale entries."""
    keyed = {_entry_key(entry): entry for entry in entries}
    new: List[Finding] = []
    baselined: List[Finding] = []
    seen = set()
    for finding in findings:
        key = tuple(finding.baseline_key()[f] for f in _KEY_FIELDS)
        if key in keyed:
            baselined.append(finding)
            seen.add(key)
        else:
            new.append(finding)
    stale = [entry for key, entry in keyed.items() if key not in seen]
    return new, baselined, stale


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write a baseline grandfathering *findings*; returns entry count.

    Justifications are written as ``TODO`` placeholders — the file will
    not load until a human replaces each one with an actual argument.
    """
    entries = []
    for finding in sorted(set(findings)):
        entry = dict(finding.baseline_key())
        entry["justification"] = "TODO: justify or fix"
        entries.append(entry)
    doc = {"version": 1, "entries": entries}
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return len(entries)
