"""Declarative channel construction: specs, factories, fleet fan-out.

One :class:`ChannelSpec` describes a transport — base kind (memory,
file spool, or a live TCP endpoint) plus decorator layers — and
:func:`make_channel` builds it.  Fleet scenarios hand the same spec to
:func:`per_client_channels` and get one independently-seeded channel per
client: file spools fan out into per-client subdirectories, TCP specs
dial one connection per client, loss seeds are re-derived per client so
every drop sequence is independent but replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

from .base import Channel, MemoryChannel
from .decorators import LatencyChannel, LinkModel, LossyChannel
from .file import FileChannel
from .sockets import SocketChannel

#: Channel kinds a spec may name.
_KINDS = ("memory", "file", "tcp")


@dataclass(frozen=True)
class ChannelSpec:
    """Declarative description of one client→server transport.

    The composable form behind :func:`make_channel`: a base channel kind
    plus optional decorator layers.  Fleet scenarios hand a single spec to
    the coordinator and get one independently-seeded channel per client
    (:meth:`for_client`), instead of hand-writing a factory closure.

    Attributes:
        kind: Base transport — ``"memory"``, ``"file"``, or ``"tcp"``.
        directory: Spool directory for ``"file"`` channels (per-client
            subdirectories are derived by :meth:`for_client`).
        address: ``(host, port)`` for ``"tcp"`` channels; every
            :func:`make_channel` call dials a fresh connection, so a
            fleet spec gives each client its own socket.
        drop_rate: > 0 wraps the base in a :class:`LossyChannel`.
        seed: Drop-sequence seed; required when *drop_rate* > 0.
        link: A :class:`LinkModel` wraps the base in a
            :class:`LatencyChannel` (priced inside the lossy layer, so
            retransmissions are not double-charged).
    """

    kind: str = "memory"
    directory: Optional[Path] = None
    address: Optional[Tuple[str, int]] = None
    drop_rate: float = 0.0
    seed: Optional[int] = None
    link: Optional[LinkModel] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"channel kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.kind == "file" and self.directory is None:
            raise ValueError("file channels need a spool directory")
        if self.kind == "tcp" and self.address is None:
            raise ValueError(
                "tcp channels need an address: ChannelSpec(kind='tcp', "
                "address=(host, port))"
            )
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1), got {self.drop_rate!r}"
            )
        if self.drop_rate > 0 and self.seed is None:
            raise ValueError(
                "a lossy channel spec needs an explicit seed "
                "(drops must be replayable)"
            )

    def for_client(self, client_id: str) -> "ChannelSpec":
        """This spec specialized for one fleet client.

        File spools move to a per-client subdirectory and the lossy seed
        is re-derived per client (stable under the same root seed), so
        every client gets an independent but replayable drop sequence.
        TCP specs pass through unchanged apart from the seed — each
        :func:`make_channel` call already dials its own connection.
        """
        directory = self.directory
        if self.kind == "file" and directory is not None:
            directory = Path(directory) / client_id
        seed = self.seed
        if seed is not None:
            # Local import: randomness sits in the data layer, and the
            # transport module must stay importable without it except for
            # this derivation convenience.
            from ..data.randomness import derive_seed

            seed = derive_seed(seed, f"channel:{client_id}")
        return replace(self, directory=directory, seed=seed)


#: Anything :func:`make_channel` accepts.
ChannelLike = Union[Channel, ChannelSpec, str, Callable[[], Channel], None]


def _parse_tcp(spec: str) -> ChannelSpec:
    """``"tcp:host:port"`` → a tcp :class:`ChannelSpec`."""
    rest = spec[4:]
    host, sep, port_text = rest.rpartition(":")
    if not sep or not host or not port_text.isdigit():
        raise ValueError(
            f"malformed tcp channel spec {spec!r}; expected "
            f"'tcp:<host>:<port>'"
        )
    return ChannelSpec(kind="tcp", address=(host, int(port_text)))


def _parse_spec(spec: str, directory: Optional[Path]) -> ChannelSpec:
    """Normalize a spec string into a :class:`ChannelSpec`."""
    if spec == "memory":
        return ChannelSpec()
    if spec == "file":
        return ChannelSpec(kind="file", directory=directory)
    if spec.startswith("file:"):
        return ChannelSpec(kind="file", directory=Path(spec[5:]))
    if spec.startswith("tcp:"):
        return _parse_tcp(spec)
    raise ValueError(
        f"unknown channel spec {spec!r}; expected 'memory', 'file', "
        f"'file:<dir>', 'tcp:<host>:<port>', a ChannelSpec, a Channel, "
        f"or a factory"
    )


def make_channel(spec: ChannelLike = None, *,
                 directory: Optional[Path] = None) -> Channel:
    """Build a channel from a declarative *spec*.

    Accepted forms:

    * ``None`` or ``"memory"`` — a fresh :class:`MemoryChannel`;
    * ``"file"`` (with *directory*) or ``"file:/path/to/spool"`` — a
      :class:`FileChannel`;
    * ``"tcp:<host>:<port>"`` — a freshly dialed
      :class:`~repro.transport.sockets.SocketChannel`;
    * a :class:`ChannelSpec` — base kind plus decorator layers
      (latency inside, loss outside);
    * a :class:`Channel` instance — returned as-is;
    * a zero-argument callable — called.
    """
    if isinstance(spec, Channel):
        return spec
    if callable(spec):
        return spec()
    if spec is None:
        spec = ChannelSpec()
    elif isinstance(spec, str):
        spec = _parse_spec(spec, directory)
    if not isinstance(spec, ChannelSpec):
        raise TypeError(
            f"cannot build a channel from {type(spec).__name__}"
        )
    if spec.kind == "file":
        channel: Channel = FileChannel(spec.directory)
    elif spec.kind == "tcp":
        channel = SocketChannel.connect(spec.address)
    else:
        channel = MemoryChannel()
    if spec.link is not None:
        channel = LatencyChannel(channel, spec.link)
    if spec.drop_rate > 0:
        channel = LossyChannel(channel, spec.drop_rate, spec.seed)
    return channel


def per_client_channels(spec: ChannelLike = None, *,
                        directory: Optional[Path] = None
                        ) -> Callable[[str], Channel]:
    """Normalize *spec* into a ``client_id -> Channel`` fleet factory.

    The declarative counterpart of hand-writing a factory closure: a
    :class:`ChannelSpec` is specialized per client
    (:meth:`ChannelSpec.for_client` — per-client spool directories,
    independently derived loss seeds, one TCP connection per client),
    string forms get the same treatment, and an existing callable passes
    through unchanged.  A shared :class:`Channel` instance is rejected —
    fleet clients must not interleave on one FIFO.
    """
    if isinstance(spec, Channel):
        raise TypeError(
            "a single Channel instance cannot back a fleet; pass a "
            "ChannelSpec, a spec string, or a client_id -> Channel "
            "factory"
        )
    if spec is None:
        return lambda client_id: MemoryChannel()
    if callable(spec):
        return spec
    if isinstance(spec, str):
        if spec == "file" and directory is None:
            raise ValueError(
                "per-client file channels need a spool directory: "
                "use 'file:<dir>' or pass directory=..."
            )
        spec = _parse_spec(spec, directory)
    if not isinstance(spec, ChannelSpec):
        raise TypeError(
            f"cannot build fleet channels from {type(spec).__name__}"
        )
    resolved = spec
    return lambda client_id: make_channel(resolved.for_client(client_id))
