"""Deployment configuration: every knob of a CIAO deployment, one place.

A deployment is described by *how* data flows — ``serial`` (one client,
one loader), ``sharded`` (one client, fanned across shard workers), or
``fleet`` (many concurrent heterogeneous clients) — plus the transport and
the client/fleet tuning knobs.  :class:`DeploymentConfig` absorbs
:class:`~repro.server.ciao.ServerConfig` (it *produces* one via
:meth:`server_config`) and validates everything through a single path at
construction, reusing :func:`repro.server.ciao.validate_server_options`
for the knobs the server also checks — so a bad option raises the same
error no matter which layer it entered through.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Union

from ..client.device import DEFAULT_SHIP_BATCH
from ..core.budgets import Budget
from ..fleet.coordinator import DEFAULT_MAX_PENDING
from ..fleet.population import ClientPopulation
from ..rawjson.chunks import DEFAULT_CHUNK_SIZE
from ..server.ciao import ServerConfig, validate_server_options
from ..server.pipeline import DEFAULT_SEAL_INTERVAL
from ..transport import ChannelLike
from ..storage.schema import Schema

#: The deployment shapes a session can run.
DEPLOYMENT_MODES = ("serial", "sharded", "fleet")

#: Default shard count for sharded/fleet deployments.
DEFAULT_N_SHARDS = 2

#: Default fleet size when no population is given.
DEFAULT_N_CLIENTS = 8

#: Query-side per-client backpressure bound, mirroring the ingest-side
#: :data:`~repro.fleet.coordinator.DEFAULT_MAX_PENDING`: a remote client
#: may have at most this many queries queued before the service answers
#: BUSY instead of accepting more.
DEFAULT_QUERY_MAX_PENDING = 8


@dataclass(frozen=True)
class DeploymentConfig:
    """How one :class:`~repro.api.session.CiaoSession` deploys CIAO.

    Attributes:
        mode: ``"serial"`` | ``"sharded"`` | ``"fleet"``.
        table_name: Catalog name of the loaded table.
        partial_loading: ``'auto'`` | ``'on'`` | ``'off'`` (server policy).
        schema: Optional pre-agreed schema.
        n_shards: Shard workers (``None`` = mode default: 1 serial,
            :data:`DEFAULT_N_SHARDS` otherwise).
        shard_mode: ``'process'`` | ``'thread'`` shard workers.
        dispatch: ``'work-stealing'`` | ``'round-robin'`` chunk dispatch.
        seal_interval: Streaming-query seal cadence (``None`` disables
            mid-load snapshots).
        chunk_size: Records per client chunk.
        ship_batch: Chunk frames concatenated per channel message.
        channel: Transport spec (see
            :func:`repro.transport.make_channel`); ``None`` is an
            in-memory channel.  Fleets derive one independently-seeded
            channel per client from it.
        n_clients: Fleet size when generating a population.
        population: Explicit fleet population (overrides *n_clients*).
        population_seed: Seed for generated populations (``None``
            derives from the session seed).
        aggregate_budget: Fleet-wide mean per-record budget; ``None``
            gives every client the full plan.
        max_pending: Per-channel backpressure bound (fleet).
        max_active: Admission control (fleet; ``None`` = all at once).
        realloc_interval: Online budget re-allocation cadence in drained
            chunks (fleet; ``None`` disables).
        query_max_active: Query-side admission control when the session
            is served remotely (:class:`repro.service.CiaoService`):
            at most this many queries execute concurrently (``None`` =
            unbounded) — the read-path mirror of *max_active*.
        query_max_pending: Query-side per-client backpressure bound: a
            remote client with this many queries already queued gets
            BUSY instead of unbounded queueing — the read-path mirror
            of *max_pending*.
        durable: Keep a crash-atomic manifest
            (:class:`repro.recovery.Manifest`) under the server's data
            directory, checkpointable mid-load and recoverable after a
            crash via ``CiaoSession(recover_from=...)``.  Off by
            default — durability costs an fsync per checkpoint.
    """

    mode: str = "serial"
    table_name: str = "t"
    partial_loading: str = "auto"
    schema: Optional[Schema] = None
    n_shards: Optional[int] = None
    shard_mode: str = "process"
    dispatch: str = "work-stealing"
    seal_interval: Optional[int] = DEFAULT_SEAL_INTERVAL
    chunk_size: int = DEFAULT_CHUNK_SIZE
    ship_batch: int = DEFAULT_SHIP_BATCH
    channel: ChannelLike = None
    n_clients: int = DEFAULT_N_CLIENTS
    population: Optional[ClientPopulation] = None
    population_seed: Optional[int] = None
    aggregate_budget: Optional[Budget] = None
    max_pending: int = DEFAULT_MAX_PENDING
    max_active: Optional[int] = None
    realloc_interval: Optional[int] = None
    query_max_active: Optional[int] = None
    query_max_pending: int = DEFAULT_QUERY_MAX_PENDING
    durable: bool = False

    def __post_init__(self) -> None:
        if self.mode not in DEPLOYMENT_MODES:
            raise ValueError(
                f"mode must be one of {DEPLOYMENT_MODES}, "
                f"got {self.mode!r}"
            )
        validate_server_options(
            shard_mode=self.shard_mode,
            dispatch=self.dispatch,
            partial_loading=self.partial_loading,
            n_shards=self.resolved_n_shards,
        )
        if self.mode == "serial" and (self.n_shards or 1) != 1:
            raise ValueError(
                f"serial mode runs exactly one loader; got "
                f"n_shards={self.n_shards} (use mode='sharded')"
            )
        if self.mode == "sharded" and self.resolved_n_shards < 2:
            raise ValueError(
                f"sharded mode needs n_shards >= 2, got {self.n_shards}"
            )
        if self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.ship_batch < 1:
            raise ValueError(
                f"ship_batch must be >= 1, got {self.ship_batch}"
            )
        if self.mode != "fleet":
            for knob in ("population", "aggregate_budget",
                         "max_active", "realloc_interval"):
                if getattr(self, knob) is not None:
                    raise ValueError(
                        f"{knob} only applies to mode='fleet' "
                        f"(got mode={self.mode!r})"
                    )
        else:
            if self.population is None and self.n_clients < 1:
                raise ValueError(
                    f"a fleet needs at least one client, "
                    f"got n_clients={self.n_clients}"
                )
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.query_max_pending < 1:
            raise ValueError(
                f"query_max_pending must be >= 1, "
                f"got {self.query_max_pending}"
            )
        if self.query_max_active is not None and self.query_max_active < 1:
            raise ValueError(
                f"query_max_active must be >= 1 or None, "
                f"got {self.query_max_active}"
            )

    # ------------------------------------------------------------------
    @property
    def resolved_n_shards(self) -> int:
        """The effective shard count (mode default when unset)."""
        if self.n_shards is not None:
            return self.n_shards
        return 1 if self.mode == "serial" else DEFAULT_N_SHARDS

    def server_config(self, data_dir: Union[str, Path]) -> ServerConfig:
        """The inner-layer :class:`ServerConfig` this deployment implies."""
        return ServerConfig(
            data_dir=Path(data_dir),
            table_name=self.table_name,
            partial_loading=self.partial_loading,
            schema=self.schema,
            n_shards=self.resolved_n_shards,
            shard_mode=self.shard_mode,
            dispatch=self.dispatch,
            seal_interval=self.seal_interval,
            durable=self.durable,
        )

    def with_mode(self, mode: str, **changes) -> "DeploymentConfig":
        """This config re-targeted to another deployment mode."""
        return replace(self, mode=mode, **changes)

    @property
    def streaming_queries(self) -> bool:
        """Can this deployment answer queries mid-load?"""
        return self.resolved_n_shards > 1 and self.seal_interval is not None
