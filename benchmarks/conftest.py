"""Shared configuration for the reproduction benchmarks.

Scale: the paper ran 5–27 GB datasets; these benches default to
laptop-scale record counts so the whole suite finishes in minutes.  Set
``REPRO_SCALE`` (a float multiplier, e.g. ``REPRO_SCALE=10``) to run
larger.  Every bench prints the paper-style series and archives it under
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import ExperimentConfig

#: Global record-count multiplier.
SCALE = float(os.environ.get("REPRO_SCALE", "1"))

#: Where bench outputs are archived.
RESULTS = Path(__file__).parent / "results"


def config_for(dataset: str, n_records: int, n_queries: int,
               chunk_size: int = 500) -> dict:
    """Standard (config, n_queries) pair for an end-to-end bench."""
    return {
        "config": ExperimentConfig(
            dataset=dataset,
            n_records=n_records,
            chunk_size=chunk_size,
            sample_size=min(2000, n_records),
            scale=SCALE,
        ),
        "n_queries": max(5, int(n_queries * min(SCALE, 1.0) + 0.5))
        if SCALE < 1 else n_queries,
    }


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Archive directory for bench outputs."""
    RESULTS.mkdir(parents=True, exist_ok=True)
    return RESULTS


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing.

    The experiments are minutes-scale deterministic pipelines; multiple
    rounds would add nothing but wall time.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
