"""Wire format for client→server chunks.

Layout::

    [MAGIC "CIA1"]
    [u32 header length][header JSON (UTF-8)]
    [u32 records length][records: newline-joined raw JSON, UTF-8]
    per predicate, in header order:
        [u8 encoding tag: 0 packed / 1 RLE][u32 payload length][payload]

The header carries the chunk id, record count, and the predicate ids.  Each
bit-vector ships in whichever encoding is smaller (packed vs RLE) — for
selective predicates RLE routinely wins by 10×, keeping CIAO's network
overhead at a fraction of a percent of the record payload.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..bitvec.bitvector import BitVector
from ..bitvec.rle import RleBitVector
from ..rawjson.chunks import JsonChunk
from ..rawjson.parser import loads
from ..rawjson.writer import dumps

MAGIC = b"CIA1"

_PACKED_TAG = 0
_RLE_TAG = 1


class ProtocolError(ValueError):
    """Malformed chunk payload."""


def encode_chunk(chunk: JsonChunk) -> bytes:
    """Serialize a chunk with its bit-vectors."""
    pred_ids = chunk.predicate_ids
    header = dumps(
        {
            "chunk_id": chunk.chunk_id,
            "records": len(chunk.records),
            "predicates": pred_ids,
        }
    ).encode("utf-8")
    records_blob = "\n".join(chunk.records).encode("utf-8")
    out = bytearray()
    out += MAGIC
    out += len(header).to_bytes(4, "little")
    out += header
    out += len(records_blob).to_bytes(4, "little")
    out += records_blob
    for pid in pred_ids:
        bv = chunk.bitvectors[pid]
        rle = RleBitVector.from_bitvector(bv)
        if rle.serialized_size() < bv.serialized_size():
            payload = rle.to_bytes()
            out.append(_RLE_TAG)
        else:
            payload = bv.to_bytes()
            out.append(_PACKED_TAG)
        out += len(payload).to_bytes(4, "little")
        out += payload
    return bytes(out)


def decode_chunk(data: bytes) -> JsonChunk:
    """Inverse of :func:`encode_chunk`, with structural validation."""
    if data[: len(MAGIC)] != MAGIC:
        raise ProtocolError("bad chunk magic")
    pos = len(MAGIC)
    header_len, pos = _read_u32(data, pos)
    header = loads(data[pos:pos + header_len].decode("utf-8"))
    pos += header_len
    records_len, pos = _read_u32(data, pos)
    records_blob = data[pos:pos + records_len].decode("utf-8")
    pos += records_len
    records: List[str] = records_blob.split("\n") if records_blob else []
    if len(records) != header["records"]:
        raise ProtocolError(
            f"header declares {header['records']} records, payload has "
            f"{len(records)}"
        )
    chunk = JsonChunk(chunk_id=header["chunk_id"], records=records)
    for pid in header["predicates"]:
        if pos >= len(data):
            raise ProtocolError("truncated bit-vector section")
        tag = data[pos]
        pos += 1
        payload_len, pos = _read_u32(data, pos)
        payload = data[pos:pos + payload_len]
        pos += payload_len
        if tag == _PACKED_TAG:
            bv = BitVector.from_bytes(payload)
        elif tag == _RLE_TAG:
            bv = RleBitVector.from_bytes(payload).to_bitvector()
        else:
            raise ProtocolError(f"unknown bit-vector encoding tag {tag}")
        chunk.attach(pid, bv)
    if pos != len(data):
        raise ProtocolError(f"{len(data) - pos} trailing bytes after chunk")
    return chunk


def bitvector_overhead(chunk: JsonChunk) -> Tuple[int, int]:
    """(record payload bytes, bit-vector payload bytes) for one chunk."""
    encoded = encode_chunk(chunk)
    records_blob = "\n".join(chunk.records).encode("utf-8")
    # Everything past magic+headers+records is bit-vector payload.
    header = dumps(
        {
            "chunk_id": chunk.chunk_id,
            "records": len(chunk.records),
            "predicates": chunk.predicate_ids,
        }
    ).encode("utf-8")
    fixed = len(MAGIC) + 4 + len(header) + 4 + len(records_blob)
    return len(records_blob), len(encoded) - fixed


def _read_u32(data: bytes, pos: int) -> Tuple[int, int]:
    if pos + 4 > len(data):
        raise ProtocolError("truncated length field")
    return int.from_bytes(data[pos:pos + 4], "little"), pos + 4
