"""Fig. 6 — fraction of queries benefiting from data skipping.

Paper setup: YCSB dataset, the 'challenging' uniform workload C, budgets
25–125 µs.  Although workload C shows little aggregate improvement in
Fig. 5, 37–68% of its individual queries still run faster thanks to
bit-vector skipping — the point of this figure.
"""

from conftest import config_for, run_once

from repro.bench import FIG6_BUDGETS, emit_table, skipping_benefit_sweep

PARAMS = config_for("ycsb", n_records=2500, n_queries=40)


def test_fig6_skipping_benefit_fraction(benchmark, tmp_path, results_dir):
    def experiment():
        return skipping_benefit_sweep(
            tmp_path,
            config=PARAMS["config"],
            n_queries=PARAMS["n_queries"],
            budgets=FIG6_BUDGETS,
        )

    series = run_once(benchmark, experiment)
    emit_table(
        "fig6_skipping_fraction",
        ["budget (µs)", "benefiting fraction"],
        [(budget, fraction) for budget, fraction in series],
        results_dir, title="Fig 6",
    )

    fractions = [fraction for _, fraction in series]
    # The paper reports 37–68%; shape requirement: a substantial share of
    # queries benefits and coverage does not shrink with budget.
    assert max(fractions) > 0.3
    assert fractions[-1] >= fractions[0]
