"""No-parse predicate matching on CSV lines.

CSV lacks JSON's self-describing keys, so the Table I matchers adapt:

* **substring match** stays a plain search (field text appears verbatim in
  the line as long as the operand contains no quote character — quoting
  only doubles quotes, leaving other characters intact);
* **exact / key-value match** anchors the serialized field form against
  the delimiter or line boundary: the pattern matches as ``,form,``,
  ``form,`` at line start, ``,form`` at line end, or the whole line;
* **prefix / suffix match** anchor likewise, additionally allowing the
  quoted variant (a field is quoted when its *remainder* contains the
  delimiter, which the prefix cannot know);
* **key-presence match is not supported**: presence means "the Nth field
  is non-empty", which cannot be decided without counting delimiters —
  i.e. parsing.  :class:`CsvUnsupportedError` is raised, mirroring the
  paper's rule that unsupported clauses are simply not pushdown candidates.

Everything preserves the one-sided contract: false positives allowed
(a pattern may match inside an unrelated column), false negatives
impossible (hypothesis-verified in ``tests/properties``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..core.predicates import Clause, PredicateKind, SimplePredicate
from .codec import CsvCodec, CsvDialect, escape_field


class CsvUnsupportedError(ValueError):
    """Predicate family not client-evaluable on CSV."""


@dataclass(frozen=True)
class CompiledCsvPredicate:
    """One simple predicate compiled against a CSV dialect."""

    kind: PredicateKind
    matcher: Callable[[str], bool]
    patterns: Tuple[str, ...]

    def match(self, line: str) -> bool:
        """Evaluate against one serialized CSV line."""
        return self.matcher(line)


@dataclass(frozen=True)
class CompiledCsvClause:
    """A disjunctive clause compiled for CSV lines."""

    clause: Clause
    specs: Tuple[CompiledCsvPredicate, ...]

    def match(self, line: str) -> bool:
        """True if any disjunct may match."""
        return any(spec.match(line) for spec in self.specs)


def _field_anchored(form: str, delimiter: str) -> Callable[[str], bool]:
    """Match *form* as a complete field (delimiter/boundary anchored)."""
    mid = delimiter + form + delimiter
    head = form + delimiter
    tail = delimiter + form

    def match(line: str) -> bool:
        return (
            line == form
            or line.startswith(head)
            or line.endswith(tail)
            or mid in line
        )

    return match


def _prefix_anchored(operand: str, dialect: CsvDialect
                     ) -> Callable[[str], bool]:
    delimiter, quote = dialect.delimiter, dialect.quote
    bare_head = operand
    bare_mid = delimiter + operand
    quoted_head = quote + operand
    quoted_mid = delimiter + quote + operand

    def match(line: str) -> bool:
        return (
            line.startswith(bare_head)
            or line.startswith(quoted_head)
            or bare_mid in line
            or quoted_mid in line
        )

    return match


def _suffix_anchored(operand: str, dialect: CsvDialect
                     ) -> Callable[[str], bool]:
    delimiter, quote = dialect.delimiter, dialect.quote
    bare_tail = operand
    bare_mid = operand + delimiter
    quoted_tail = operand + quote
    quoted_mid = operand + quote + delimiter

    def match(line: str) -> bool:
        return (
            line.endswith(bare_tail)
            or line.endswith(quoted_tail)
            or bare_mid in line
            or quoted_mid in line
        )

    return match


def compile_csv_predicate(predicate: SimplePredicate,
                          codec: CsvCodec) -> CompiledCsvPredicate:
    """Compile one simple predicate for *codec*'s dialect.

    Raises :class:`CsvUnsupportedError` for key-presence predicates and
    for string operands containing the quote character (their serialized
    form inside a quoted field is position-dependent, which would risk
    false negatives).
    """
    kind = predicate.kind
    dialect = codec.dialect
    if kind is PredicateKind.KEY_PRESENCE:
        raise CsvUnsupportedError(
            "key-presence cannot be evaluated on raw CSV: field position "
            "requires parsing"
        )
    if predicate.column not in codec.columns:
        raise CsvUnsupportedError(
            f"column {predicate.column!r} is not in the CSV schema"
        )
    if kind is PredicateKind.KEY_VALUE:
        form = escape_field(
            codec.field_text(predicate.value), dialect
        )
        return CompiledCsvPredicate(
            kind, _field_anchored(form, dialect.delimiter), (form,)
        )
    operand = predicate.value
    if dialect.quote in operand:
        raise CsvUnsupportedError(
            "operands containing the quote character are not "
            "pushdown-safe on CSV"
        )
    if kind is PredicateKind.EXACT:
        form = escape_field(operand, dialect)
        return CompiledCsvPredicate(
            kind, _field_anchored(form, dialect.delimiter), (form,)
        )
    if kind is PredicateKind.SUBSTRING:
        return CompiledCsvPredicate(
            kind, lambda line: operand in line, (operand,)
        )
    if kind is PredicateKind.PREFIX:
        return CompiledCsvPredicate(
            kind, _prefix_anchored(operand, dialect), (operand,)
        )
    if kind is PredicateKind.SUFFIX:
        return CompiledCsvPredicate(
            kind, _suffix_anchored(operand, dialect), (operand,)
        )
    raise AssertionError(f"unhandled kind {kind}")


def compile_csv_clause(clause: Clause, codec: CsvCodec
                       ) -> CompiledCsvClause:
    """Compile a disjunctive clause; unsupported disjuncts poison it."""
    specs: List[CompiledCsvPredicate] = [
        compile_csv_predicate(p, codec) for p in clause.predicates
    ]
    return CompiledCsvClause(clause, tuple(specs))
