"""Unit tests for the SQL parser."""

import pytest

from repro.engine import (
    And,
    Comparison,
    IsNotNull,
    IsNull,
    LikeExpr,
    Not,
    Or,
    SqlError,
    parse_sql,
)


class TestSelectList:
    def test_count_star(self):
        q = parse_sql("SELECT COUNT(*) FROM t")
        assert q.select[0].aggregate == "COUNT"
        assert q.select[0].column == "*"
        assert q.is_aggregate

    def test_bare_columns(self):
        q = parse_sql("SELECT a, b FROM t")
        assert [item.column for item in q.select] == ["a", "b"]
        assert not q.is_aggregate

    def test_star(self):
        q = parse_sql("SELECT * FROM t")
        assert q.select[0].column == "*"

    def test_aggregates_over_columns(self):
        q = parse_sql("SELECT SUM(x), AVG(y), MIN(z), MAX(z) FROM t")
        assert [item.aggregate for item in q.select] == [
            "SUM", "AVG", "MIN", "MAX"
        ]

    def test_sum_star_rejected(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT SUM(*) FROM t")

    def test_labels(self):
        q = parse_sql("SELECT COUNT(*), a FROM t")
        assert q.select[0].label == "count(*)"
        assert q.select[1].label == "a"


class TestWhere:
    def test_no_where(self):
        assert parse_sql("SELECT * FROM t").where is None

    def test_equality_types(self):
        q = parse_sql(
            "SELECT * FROM t WHERE a = 'x' AND b = 10 AND c = true"
        )
        comparisons = q.where.children
        assert comparisons[0].right.value == "x"
        assert comparisons[1].right.value == 10
        assert comparisons[2].right.value is True

    def test_string_escape(self):
        q = parse_sql("SELECT * FROM t WHERE a = 'it''s'")
        assert q.where.right.value == "it's"

    def test_like(self):
        q = parse_sql("SELECT * FROM t WHERE a LIKE '%kw%'")
        assert isinstance(q.where, LikeExpr)
        assert q.where.pattern == "%kw%"

    def test_null_forms(self):
        q = parse_sql("SELECT * FROM t WHERE a != NULL AND b IS NOT NULL "
                      "AND c IS NULL AND d = NULL")
        kinds = [type(child) for child in q.where.children]
        assert kinds == [IsNotNull, IsNotNull, IsNull, IsNull]

    def test_in_desugars_to_disjunction(self):
        q = parse_sql("SELECT * FROM t WHERE name IN ('a', 'b')")
        assert isinstance(q.where, Or)
        assert [c.right.value for c in q.where.children] == ["a", "b"]

    def test_precedence_and_binds_tighter(self):
        q = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(q.where, Or)
        assert isinstance(q.where.children[1], And)

    def test_parentheses(self):
        q = parse_sql("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(q.where, And)
        assert isinstance(q.where.children[0], Or)

    def test_not(self):
        q = parse_sql("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(q.where, Not)

    def test_inequalities(self):
        q = parse_sql("SELECT * FROM t WHERE a > 1 AND b <= 2 AND c <> 'x'")
        ops = [child.op for child in q.where.children]
        assert ops == [">", "<=", "!="]

    def test_numeric_literals(self):
        q = parse_sql("SELECT * FROM t WHERE a = -1.5 AND b = 2e3")
        assert q.where.children[0].right.value == -1.5
        assert q.where.children[1].right.value == 2000.0

    def test_paper_query_template(self):
        sql = ("SELECT COUNT(*) FROM logs WHERE "
               "(name = 'Bob' OR name = 'John') AND age = 20")
        q = parse_sql(sql)
        assert q.table == "logs"
        assert isinstance(q.where, And)


class TestLimit:
    def test_limit(self):
        assert parse_sql("SELECT * FROM t LIMIT 5").limit == 5

    def test_limit_requires_integer(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT * FROM t LIMIT 1.5")


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "SELECT",
            "SELECT * FROM",
            "SELECT * WHERE a = 1",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE a",
            "SELECT * FROM t WHERE a = ",
            "SELECT * FROM t WHERE a LIKE 5",
            "SELECT * FROM t trailing",
            "INSERT INTO t VALUES (1)",
            "SELECT * FROM t WHERE a = 'unterminated",
        ],
    )
    def test_malformed_rejected(self, sql):
        with pytest.raises(SqlError):
            parse_sql(sql)

    def test_keywords_case_insensitive(self):
        q = parse_sql("select count(*) from t where a like '%x%' limit 2")
        assert q.limit == 2
        assert q.select[0].aggregate == "COUNT"
