"""Predicate evaluation on *raw* JSON text, without parsing.

This is CIAO's client-side primitive (paper §IV): every supported predicate
reduces to one or two substring searches over the serialized record.  Python's
``str.find`` is a C routine, so — exactly as with ``std::string::find`` in
the authors' C++ client — matching a record costs orders of magnitude less
than parsing it.

Contract (paper §IV-B): **false positives are allowed, false negatives are
not**.  A ``True`` here means "the record may satisfy the predicate; verify
after parsing"; a ``False`` means "the record definitely does not satisfy
it".  Queries re-evaluate their full predicate on surviving tuples, so
correctness never depends on the precision of these matchers.

The pattern strings handed to these functions are produced by
:mod:`repro.core.patterns`, which escapes operands with the same escaping the
:mod:`repro.rawjson.writer` applies — that shared escaping is what makes the
no-false-negative guarantee hold.
"""

from __future__ import annotations

from typing import Iterator


def contains(raw: str, pattern: str) -> bool:
    """Plain substring search: the primitive behind every matcher.

    Used directly for *exact string match* (quoted operand) and *substring
    match* (bare operand), per Table I of the paper.
    """
    return raw.find(pattern) != -1


def key_present(raw: str, key_pattern: str) -> bool:
    """Key-presence match (``email != NULL``): search the quoted key."""
    return raw.find(key_pattern) != -1


def key_value_match(raw: str, key_pattern: str, value_pattern: str) -> bool:
    """Key-value match (``age = 10``): two-phase search per paper §IV-B.

    Search for the key pattern; from just after it, scan to the next
    key-value delimiter (a comma, or the closing brace for the final pair)
    and report whether the value pattern occurs inside that window.  Every
    occurrence of the key pattern is tried so a look-alike byte sequence
    earlier in the record (e.g. inside a text field) can only *add* windows,
    never hide the real one — preserving the no-false-negative contract.
    """
    for window_start in _iter_occurrences(raw, key_pattern):
        window_end = _find_delimiter(raw, window_start)
        if raw.find(value_pattern, window_start, window_end) != -1:
            return True
    return False


def match_count_estimate(raw: str, pattern: str) -> int:
    """Number of (non-overlapping) occurrences of *pattern* in *raw*.

    Diagnostic helper used by the false-positive ablation bench to relate
    pattern specificity to spurious matches.
    """
    if not pattern:
        raise ValueError("empty patterns match everywhere; refusing to count")
    count = 0
    pos = raw.find(pattern)
    while pos != -1:
        count += 1
        pos = raw.find(pattern, pos + len(pattern))
    return count


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _iter_occurrences(raw: str, pattern: str) -> Iterator[int]:
    """Yield the end offset of each occurrence of *pattern* in *raw*."""
    pos = raw.find(pattern)
    while pos != -1:
        yield pos + len(pattern)
        pos = raw.find(pattern, pos + 1)


def _find_delimiter(raw: str, start: int) -> int:
    """Offset of the window-terminating delimiter at or after *start*.

    The paper scans to the next comma; the final key-value pair of an object
    has no trailing comma, so we also accept the closing brace, and fall back
    to end-of-record for truncated input.  Choosing the *nearest* of the two
    keeps windows tight, which only risks false positives being missed —
    i.e. fewer spurious loads — never false negatives for the scalar values
    (numbers, booleans) this matcher is specified for.
    """
    comma = raw.find(",", start)
    brace = raw.find("}", start)
    if comma == -1 and brace == -1:
        return len(raw)
    if comma == -1:
        return brace
    if brace == -1:
        return comma
    return min(comma, brace)
