"""Unit tests for the column encodings."""

import pytest

from repro.storage import ColumnType, Encoding, EncodingError, choose_encoding
from repro.storage.encodings import (
    decode,
    encode,
    read_varint,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)

CASES = [
    (ColumnType.STRING, ["a", "", "héllo", "x" * 300]),
    (ColumnType.INT64, [0, 1, -1, 2 ** 40, -(2 ** 40), 7, 7, 7]),
    (ColumnType.FLOAT64, [0.0, -2.5, 1e300, 3.14159]),
    (ColumnType.BOOL, [True, False, True, True, False, True, False, False,
                       True]),
    (ColumnType.JSON, ['{"a":1}', "[1,2]", "null"]),
]


@pytest.mark.parametrize("encoding", list(Encoding))
@pytest.mark.parametrize("column_type,values", CASES)
def test_roundtrip_every_encoding_and_type(encoding, column_type, values):
    payload = encode(values, column_type, encoding)
    assert decode(payload, len(values), column_type, encoding) == values


@pytest.mark.parametrize("encoding", list(Encoding))
def test_empty_values_roundtrip(encoding):
    payload = encode([], ColumnType.INT64, encoding)
    assert decode(payload, 0, ColumnType.INT64, encoding) == []


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2 ** 35])
    def test_roundtrip(self, value):
        out = bytearray()
        write_varint(out, value)
        got, pos = read_varint(bytes(out), 0)
        assert got == value and pos == len(out)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            write_varint(bytearray(), -1)

    def test_truncated_rejected(self):
        with pytest.raises(EncodingError):
            read_varint(b"\x80", 0)


class TestZigzag:
    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 10 ** 12, -(10 ** 12)])
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_small_magnitudes_encode_small(self):
        assert zigzag_encode(-1) == 1
        assert zigzag_encode(1) == 2


class TestDictionary:
    def test_compresses_low_cardinality(self):
        values = ["alpha", "beta"] * 500
        plain = encode(values, ColumnType.STRING, Encoding.PLAIN)
        dictionary = encode(values, ColumnType.STRING, Encoding.DICTIONARY)
        assert len(dictionary) < len(plain) / 2

    def test_corrupt_index_rejected(self):
        payload = bytearray(encode(["a"], ColumnType.STRING,
                                   Encoding.DICTIONARY))
        payload[-1] = 0x7F  # out-of-range dictionary slot
        with pytest.raises(EncodingError):
            decode(bytes(payload), 1, ColumnType.STRING,
                   Encoding.DICTIONARY)


class TestRle:
    def test_compresses_runs(self):
        values = [5] * 1000
        plain = encode(values, ColumnType.INT64, Encoding.PLAIN)
        rle = encode(values, ColumnType.INT64, Encoding.RLE)
        assert len(rle) < len(plain) / 10

    def test_count_mismatch_detected(self):
        payload = encode([1, 1], ColumnType.INT64, Encoding.RLE)
        with pytest.raises(EncodingError):
            decode(payload, 3, ColumnType.INT64, Encoding.RLE)


class TestChooseEncoding:
    def test_runs_pick_rle(self):
        assert choose_encoding([7] * 100, ColumnType.INT64) is Encoding.RLE

    def test_low_cardinality_picks_dictionary(self):
        values = [f"v{i % 5}" for i in range(100)]
        # Interleaved values: no long runs, few distinct.
        assert choose_encoding(values, ColumnType.STRING) is \
            Encoding.DICTIONARY

    def test_high_cardinality_stays_plain(self):
        values = [f"v{i}" for i in range(100)]
        assert choose_encoding(values, ColumnType.STRING) is Encoding.PLAIN

    def test_floats_never_dictionary(self):
        values = [float(i % 3) for i in range(100)]
        assert choose_encoding(values, ColumnType.FLOAT64) in (
            Encoding.PLAIN, Encoding.RLE
        )

    def test_empty_is_plain(self):
        assert choose_encoding([], ColumnType.STRING) is Encoding.PLAIN
