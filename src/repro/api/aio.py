"""AsyncSession: an asyncio face over the blocking session API.

The session layer stays thread-based (loads run on worker threads,
queries block in the engine); :class:`AsyncSession` adapts either a
:class:`~repro.api.session.CiaoSession` or a
:class:`~repro.service.remote.RemoteSession` to ``async``/``await`` by
pushing each blocking call onto the event loop's executor.  Concurrency
between a load and mid-load snapshot queries then reads naturally::

    async with AsyncSession(CiaoSession(workload, config=cfg)) as s:
        load = asyncio.ensure_future(s.load("yelp", n_records=100_000))
        while not load.done():
            count = (await s.snapshot_query(
                "SELECT COUNT(*) FROM t")).scalar()
            ...
        report = await load

No event loop, thread pool, or session state is created here beyond the
wrapper itself — the executor is the loop's default unless one is
injected — so the adapter composes with any asyncio application.
"""

from __future__ import annotations

import asyncio
import functools
from typing import Any, Optional


class AsyncSession:
    """``await``-able facade over a blocking (remote or local) session.

    Args:
        session: A :class:`~repro.api.session.CiaoSession`, a
            :class:`~repro.service.remote.RemoteSession`, or anything
            with the same ``load``/``query`` duck type.
        executor: Executor for the blocking calls (``None`` = the event
            loop's default thread pool).
    """

    def __init__(self, session: Any, executor: Any = None):
        self._session = session
        self._executor = executor

    @property
    def session(self) -> Any:
        """The wrapped blocking session."""
        return self._session

    # ------------------------------------------------------------------
    async def _run(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        call = functools.partial(fn, *args, **kwargs)
        return await loop.run_in_executor(self._executor, call)

    # ------------------------------------------------------------------
    async def plan(self, *args, **kwargs):
        """Await ``session.plan(...)`` (local sessions only)."""
        return await self._run(self._session.plan, *args, **kwargs)

    async def load(self, *args, **kwargs):
        """Run a load to completion off the event loop.

        For a local :class:`CiaoSession`, awaits the whole job — the
        returned value is the :class:`~repro.api.report.LoadReport` (the
        job's ``result()`` is collected on the executor thread, so the
        event loop never blocks on the join).  For a
        :class:`RemoteSession`, returns its accepted-frame count.

        Start it as a task (``asyncio.ensure_future``) to overlap with
        :meth:`snapshot_query` calls.
        """
        outcome = await self._run(self._session.load, *args, **kwargs)
        result = getattr(outcome, "result", None)
        if callable(result):
            return await self._run(result)
        return outcome

    async def query(self, sql: str):
        """Await ``session.query(sql)``."""
        return await self._run(self._session.query, sql)

    async def snapshot_query(self, sql: str):
        """Await ``session.snapshot_query(sql)`` (mid-load reads)."""
        return await self._run(self._session.snapshot_query, sql)

    async def commit(self):
        """Await ``session.commit()`` (remote sessions)."""
        return await self._run(self._session.commit)

    async def close(self) -> None:
        """Await ``session.close()``."""
        await self._run(self._session.close)

    # ------------------------------------------------------------------
    async def __aenter__(self) -> "AsyncSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
