"""Compaction policy: what to merge, and when re-clustering pays.

Two decisions, two mechanisms:

* **What to merge** is size-tiered: sealed parts below
  ``small_part_bytes`` (or within ``tier_ratio`` of the tier's smallest
  part) are merge candidates, and any ``min_inputs``-or-more of them
  merge unconditionally — fewer parts is a pure win, since every part is
  a scan unit and a snapshot-cache key.
* **Whether to re-cluster** (sort the merged rows by a hot predicate
  column so the rebuilt zone maps prune) is guarded by a ski-rental
  budget, following *Dynamic Data Layout Optimization with Worst-case
  Guarantees* (PAPERS.md): every query that filters on a column deposits
  *credit* equal to the row groups it actually had to decode — the work
  clustering could have avoided — and a re-cluster on that column is
  allowed only once its credit covers ``rewrite_cost_factor ×`` the row
  groups being rewritten.  Committing a plan spends the credit.  Total
  rewrite work is therefore bounded by total observed scan work, so a
  shifting workload can at most double the cost of never reorganizing —
  it cannot thrash.

The policy is pure bookkeeping plus footer reads; it never rewrites
anything itself (the :class:`~repro.compact.compactor.Compactor` does)
and holds its lock only around its own counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.sanitizer import make_lock
from ..obs.querylog import QueryLogRecord
from ..storage.columnar import ParquetLiteReader
from .rewrite import DEFAULT_ROW_GROUP_ROWS


@dataclass(frozen=True)
class CompactionConfig:
    """Knobs for the policy and the background worker.

    Defaults are deliberately conservative: merge eagerly (cheap, always
    a win), re-cluster only after ``min_observations`` logged queries
    have deposited enough credit to pay for the rewrite.
    """

    #: Fewest small parts worth one merge (below this, leave them be).
    min_inputs: int = 2
    #: Most parts folded into a single rewrite (bounds rewrite latency).
    max_inputs: int = 16
    #: Parts no larger than this many bytes are always merge candidates.
    small_part_bytes: int = 1 << 20
    #: A part within this factor of the tier's smallest part joins it.
    tier_ratio: float = 8.0
    #: Output row-group size for rewritten parts.
    row_group_rows: int = DEFAULT_ROW_GROUP_ROWS
    #: Re-cluster cost multiplier: credit (row groups decoded by queries
    #: on the column) must reach ``factor × input row groups`` first.
    rewrite_cost_factor: float = 1.0
    #: Queries observed before re-clustering is considered at all.
    min_observations: int = 4
    #: Background worker poll interval, seconds.
    poll_interval: float = 0.05
    #: Delete input part files after a committed swap.  Off by default:
    #: readers opened before the swap may still be scanning them.
    remove_inputs: bool = False

    def __post_init__(self) -> None:
        if self.min_inputs < 2:
            raise ValueError(
                f"min_inputs must be >= 2, got {self.min_inputs}"
            )
        if self.max_inputs < self.min_inputs:
            raise ValueError(
                f"max_inputs must be >= min_inputs, got {self.max_inputs}"
            )
        if self.small_part_bytes <= 0:
            raise ValueError(
                f"small_part_bytes must be positive, "
                f"got {self.small_part_bytes}"
            )
        if self.tier_ratio < 1.0:
            raise ValueError(
                f"tier_ratio must be >= 1.0, got {self.tier_ratio}"
            )
        if self.row_group_rows <= 0:
            raise ValueError(
                f"row_group_rows must be positive, "
                f"got {self.row_group_rows}"
            )
        if self.rewrite_cost_factor <= 0:
            raise ValueError(
                f"rewrite_cost_factor must be positive, "
                f"got {self.rewrite_cost_factor}"
            )
        if self.min_observations < 0:
            raise ValueError(
                f"min_observations must be >= 0, "
                f"got {self.min_observations}"
            )
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )


@dataclass(frozen=True)
class CompactionPlan:
    """One decided rewrite: which parts, and an optional sort column."""

    inputs: Tuple[Path, ...]
    cluster_by: Optional[str]
    #: Row groups across the inputs — the rewrite's cost unit.
    input_row_groups: int


class CompactionPolicy:
    """Size-tiered selection plus the credit-based re-cluster guard."""

    def __init__(self, config: Optional[CompactionConfig] = None):
        self.config = config or CompactionConfig()
        self._lock = make_lock("CompactionPolicy._lock")
        #: Column → accumulated row-group credit.  # guarded-by: _lock
        self._credit: Dict[str, float] = {}
        self._observed = 0  # guarded-by: _lock
        self._spent = 0.0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Workload observation
    # ------------------------------------------------------------------
    def observe(self, records: Iterable[QueryLogRecord]) -> None:
        """Fold query-log records into per-column credit.

        A query deposits, on each column it filters by, the number of
        row groups it actually decoded (scanned minus zone-pruned) —
        the upper bound on what clustering by that column could save.
        """
        deposits: List[Tuple[Tuple[str, ...], int]] = []
        for record in records:
            if not record.predicate_columns:
                continue
            decoded = max(
                0, record.row_groups_scanned - record.row_groups_pruned
            )
            deposits.append((record.predicate_columns, decoded))
        if not deposits:
            return
        with self._lock:
            for columns, decoded in deposits:
                self._observed += 1
                for column in columns:
                    try:
                        self._credit[column] += decoded
                    except KeyError:
                        self._credit[column] = float(decoded)

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def propose(self, parts: Sequence[Path | str],
                hot_columns: Sequence[Tuple[str, float]] = (),
                current_cluster: Optional[str] = None,
                ) -> Optional[CompactionPlan]:
        """Decide one rewrite over the current sealed *parts*, or None.

        *hot_columns* is the query log's ranked
        :meth:`~repro.obs.querylog.QueryLog.hot_columns` view; the
        policy re-clusters by the hottest column whose credit covers
        the rewrite budget.  Candidate parts are grouped by schema so a
        merge never widens column types (widening would coerce stored
        values and break byte-identity of answers).

        Two plan shapes come out.  A **merge** (several small parts into
        one) needs no guard — fewer scan units is a pure win — and
        picks up clustering opportunistically if the budget allows.  A
        **re-layout** (no merge win available, the workload shifted)
        rewrites the existing part set purely to re-sort it, so it is
        *only* proposed when the credit guard clears and the chosen
        column differs from *current_cluster* (what the parts are
        already sorted by — re-sorting by it again saves nothing).
        """
        inputs = self._select_inputs(parts)
        relayout = not inputs
        if relayout:
            inputs = self._relayout_inputs(parts)
        if not inputs:
            return None
        input_row_groups = sum(groups for _, _, groups in inputs)
        paths = tuple(path for path, _, _ in inputs)
        cluster_by = self._choose_cluster(
            hot_columns, input_row_groups,
            exclude=current_cluster if relayout else None,
        )
        if relayout and cluster_by is None:
            return None
        return CompactionPlan(
            inputs=paths,
            cluster_by=cluster_by,
            input_row_groups=input_row_groups,
        )

    def committed(self, plan: CompactionPlan) -> None:
        """Record that *plan* was applied; spends re-cluster credit."""
        if plan.cluster_by is None:
            return
        cost = self.config.rewrite_cost_factor * plan.input_row_groups
        with self._lock:
            self._spent += cost
            try:
                remaining = self._credit[plan.cluster_by] - cost
            except KeyError:
                remaining = 0.0
            self._credit[plan.cluster_by] = max(0.0, remaining)

    def stats(self) -> Dict[str, object]:
        """Credit ledger snapshot (for STATS and tests)."""
        with self._lock:
            credit = dict(self._credit)
            observed = self._observed
            spent = self._spent
        return {
            "observed_queries": observed,
            "credit": credit,
            "spent": spent,
        }

    # ------------------------------------------------------------------
    def _select_inputs(self, parts: Sequence[Path | str]
                       ) -> List[Tuple[Path, int, int]]:
        """The small-part tier to merge: [(path, bytes, row_groups)].

        Groups candidates by schema signature first — see
        :meth:`propose` — then picks the largest same-schema tier of
        small parts, smallest files first, capped at ``max_inputs``.
        """
        config = self.config
        by_schema: Dict[Tuple, List[Tuple[Path, int, int]]] = {}
        for signature, entry in self._part_stats(parts):
            by_schema.setdefault(signature, []).append(entry)
        best: List[Tuple[Path, int, int]] = []
        for candidates in by_schema.values():
            candidates.sort(key=lambda entry: (entry[1], str(entry[0])))
            smallest = candidates[0][1] if candidates else 0
            ceiling = max(
                config.small_part_bytes,
                int(smallest * config.tier_ratio),
            )
            tier = [
                entry for entry in candidates if entry[1] <= ceiling
            ][:config.max_inputs]
            if len(tier) >= config.min_inputs and len(tier) > len(best):
                best = tier
        return best

    def _relayout_inputs(self, parts: Sequence[Path | str]
                         ) -> List[Tuple[Path, int, int]]:
        """The largest same-schema part set, for a pure re-sort.

        Unlike the merge tier this accepts a single part and ignores
        size: the win comes from the new row order, not from fewer
        parts, and the credit guard (not size) decides whether that win
        is worth the rewrite.
        """
        stats = self._part_stats(parts)
        by_schema: Dict[Tuple, List[Tuple[Path, int, int]]] = {}
        for signature, entry in stats:
            by_schema.setdefault(signature, []).append(entry)
        best: List[Tuple[Path, int, int]] = []
        for candidates in by_schema.values():
            candidates.sort(key=lambda entry: (entry[1], str(entry[0])))
            tier = candidates[:self.config.max_inputs]
            if len(tier) > len(best):
                best = tier
        return best

    def _part_stats(self, parts: Sequence[Path | str]
                    ) -> List[Tuple[Tuple, Tuple[Path, int, int]]]:
        """(schema signature, (path, bytes, row groups)) per live part."""
        out: List[Tuple[Tuple, Tuple[Path, int, int]]] = []
        for part in parts:
            path = Path(part)
            if not path.exists():
                continue
            size = path.stat().st_size
            try:
                reader = ParquetLiteReader(path)
            except (OSError, ValueError):
                continue  # not sealed yet / mid-replace; skip this round
            try:
                signature = tuple(
                    (field.name, field.type.value)
                    for field in reader.schema
                )
                groups = len(reader.meta.row_groups)
            finally:
                reader.close()
            out.append((signature, (path, size, groups)))
        return out

    def _choose_cluster(self, hot_columns: Sequence[Tuple[str, float]],
                        input_row_groups: int,
                        exclude: Optional[str] = None) -> Optional[str]:
        cost = self.config.rewrite_cost_factor * input_row_groups
        with self._lock:
            if self._observed < self.config.min_observations:
                return None
            for column, _weight in hot_columns:
                if column == exclude:
                    continue
                try:
                    credit = self._credit[column]
                except KeyError:
                    continue
                if credit >= cost:
                    return column
        return None
