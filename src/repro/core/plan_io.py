"""Pushdown-plan serialization: shipping Fig. 2's hashmap to real clients.

The simulated devices in this repository share memory with the optimizer,
but a deployed CIAO pushes plans to remote sensors over the wire.  This
module gives :class:`~repro.core.optimizer.PushdownPlan` a stable JSON
form — predicate ids, structured clauses, pattern strings, selectivities
and costs — serialized with the repository's own JSON writer and parsed
back with its parser, so a plan round-trips through any transport.

Pattern strings are *re-derived* from the clauses at load time rather than
trusted from the payload: the compilation rules are part of the protocol
contract (a tampered or stale pattern could silently introduce false
negatives), so the clause structure is the single source of truth.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from ..rawjson.parser import loads
from ..rawjson.writer import dumps
from .budgets import Budget
from .optimizer import PushdownEntry, PushdownPlan
from .patterns import compile_clause
from .predicates import Clause, PredicateKind, SimplePredicate
from .selection import SelectionResult

#: Format identifier embedded in every serialized plan.
PLAN_FORMAT = "ciao-plan/1"


class PlanFormatError(ValueError):
    """Malformed or incompatible serialized plan."""


def predicate_to_dict(predicate: SimplePredicate) -> Dict[str, Any]:
    """JSON form of one simple predicate."""
    return {
        "kind": predicate.kind.value,
        "column": predicate.column,
        "value": predicate.value,
    }


def predicate_from_dict(data: Mapping[str, Any]) -> SimplePredicate:
    """Inverse of :func:`predicate_to_dict`."""
    try:
        kind = PredicateKind(data["kind"])
    except (KeyError, ValueError) as exc:
        raise PlanFormatError(f"bad predicate kind in {data!r}") from exc
    return SimplePredicate(kind, data["column"], data.get("value"))


def clause_to_dict(clause: Clause) -> List[Dict[str, Any]]:
    """JSON form of a disjunctive clause."""
    return [predicate_to_dict(p) for p in clause.predicates]


def clause_from_dict(data: List[Mapping[str, Any]]) -> Clause:
    """Inverse of :func:`clause_to_dict`."""
    if not isinstance(data, list) or not data:
        raise PlanFormatError("clauses must be non-empty arrays")
    return Clause(tuple(predicate_from_dict(p) for p in data))


def plan_to_dict(plan: PushdownPlan) -> Dict[str, Any]:
    """JSON-serializable form of a pushdown plan."""
    return {
        "format": PLAN_FORMAT,
        "budget_us": plan.budget.us,
        "algorithm": plan.selection.algorithm,
        "entries": [
            {
                "id": entry.predicate_id,
                "clause": clause_to_dict(entry.clause),
                "selectivity": entry.selectivity,
                "cost_us": entry.cost_us,
                # Informational only; re-derived at load time.
                "patterns": [
                    p for spec in entry.compiled.specs
                    for p in spec.patterns
                ],
            }
            for entry in plan.entries
        ],
    }


def plan_from_dict(data: Mapping[str, Any]) -> PushdownPlan:
    """Reconstruct a plan; validates format and id uniqueness."""
    if data.get("format") != PLAN_FORMAT:
        raise PlanFormatError(
            f"unsupported plan format {data.get('format')!r}; "
            f"expected {PLAN_FORMAT!r}"
        )
    entries: List[PushdownEntry] = []
    seen_ids = set()
    for raw in data.get("entries", []):
        pid = raw["id"]
        if pid in seen_ids:
            raise PlanFormatError(f"duplicate predicate id {pid}")
        seen_ids.add(pid)
        clause = clause_from_dict(raw["clause"])
        entries.append(
            PushdownEntry(
                predicate_id=pid,
                clause=clause,
                compiled=compile_clause(clause),
                selectivity=float(raw["selectivity"]),
                cost_us=float(raw["cost_us"]),
            )
        )
    entries.sort(key=lambda e: e.predicate_id)
    budget = Budget(float(data["budget_us"]))
    selection = SelectionResult(
        selected=tuple(e.clause for e in entries),
        objective_value=float("nan"),
        total_cost=sum(e.cost_us for e in entries),
        budget=budget.us,
        algorithm=str(data.get("algorithm", "deserialized")),
    )
    return PushdownPlan(entries, budget, selection)


def dumps_plan(plan: PushdownPlan) -> str:
    """Serialize a plan to JSON text."""
    return dumps(plan_to_dict(plan))


def loads_plan(text: str) -> PushdownPlan:
    """Parse a plan from JSON text."""
    try:
        data = loads(text)
    except ValueError as exc:
        raise PlanFormatError(f"plan payload is not JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise PlanFormatError("plan payload must be a JSON object")
    return plan_from_dict(data)
