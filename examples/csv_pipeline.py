"""CIAO over CSV: no-parse filtering on a second text format.

The paper notes the approach "can also be applied to other text-based data
formats, like CSV" (§IV-A).  Part 1 runs the client side of CIAO on raw
CSV lines: the pushed-down predicates compile to CSV-aware anchored
patterns (``repro.rawcsv``) and produce the same per-predicate bit-vectors
as the JSON pipeline — without parsing a single line.  Part 2 feeds the
same CSV file through the deployment API's ``CsvFileSource``: the codec
re-frames rows as JSON records, and a full ``CiaoSession`` plans, loads
partially, and answers the workload.

Run:  python examples/csv_pipeline.py
"""

import tempfile
import time
from pathlib import Path

from repro.api import (
    Budget,
    CiaoSession,
    CsvFileSource,
    Query,
    Workload,
    clause,
    exact,
    substring,
)
from repro.bitvec import BitVector
from repro.data import make_generator
from repro.rawcsv import CsvCodec, compile_csv_clause

N_RECORDS = 20_000

#: The winlog dataset re-framed as a CSV feed.
CODEC = CsvCodec(
    ["event_id", "time", "level", "component", "info"],
    types={"event_id": int},
)

PUSHED = [
    clause(exact("component", "WuaEng")),
    clause(substring("info", "evt012")),
    clause(exact("level", "Critical")),
]


def client_side_demo(lines, records) -> None:
    """Part 1: bit-vectors straight off raw CSV, no parsing."""
    compiled = [compile_csv_clause(c, CODEC) for c in PUSHED]
    start = time.perf_counter()
    vectors = []
    for cc in compiled:
        bv = BitVector(len(lines))
        for i, line in enumerate(lines):
            if cc.match(line):
                bv.set(i)
        vectors.append(bv)
    elapsed = time.perf_counter() - start
    print(
        f"\nClient matching: {elapsed * 1e6 / N_RECORDS:.2f} µs/record "
        f"({N_RECORDS / elapsed / 1e6:.1f} M records/s) — no parsing"
    )

    mask = vectors[0].copy()
    for bv in vectors[1:]:
        mask.union_update(bv)
    print(
        f"Load mask selects {mask.count()} of {N_RECORDS} records "
        f"(ratio {mask.count() / N_RECORDS:.3f})"
    )

    # One-sided error check against ground truth, for the skeptical.
    for c, bv in zip(PUSHED, vectors):
        semantic = sum(1 for r in records if c.evaluate(r))
        raw = bv.count()
        assert raw >= semantic, "false negative!"
        print(
            f"  {c.sql():<35} semantic={semantic:<6} raw={raw:<6} "
            f"(false positives: {raw - semantic})"
        )


def session_demo(csv_path: Path) -> None:
    """Part 2: the same CSV file through the deployment front door."""
    workload = Workload(
        tuple(Query((c,), name=c.sql()) for c in PUSHED),
        dataset="winlog-csv",
    )
    source = CsvFileSource(csv_path, CODEC)
    with CiaoSession(workload, source=source, seed=77) as session:
        session.plan(Budget(2.0))
        report = session.load().result()
        print(
            f"\nSession over {csv_path.name}: loaded {report.loaded}/"
            f"{report.received} rows (ratio {report.loading_ratio:.2f})"
        )
        for query in workload.queries:
            result = session.query(query.sql("t"))
            print(f"  {query.name:<35} count={result.scalar()}")


def main() -> None:
    generator = make_generator("winlog", seed=77)
    records = list(generator.generate(N_RECORDS))
    lines = [CODEC.encode_record(r) for r in records]
    payload_mb = sum(len(l) for l in lines) / 1e6
    print(
        f"{N_RECORDS} log events as CSV ({payload_mb:.1f} MB); pushing "
        f"{len(PUSHED)} predicates:"
    )
    for c in PUSHED:
        print(f"  {c.sql()}")

    client_side_demo(lines, records)

    with tempfile.TemporaryDirectory() as workdir:
        csv_path = Path(workdir) / "winlog.csv"
        csv_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        session_demo(csv_path)


if __name__ == "__main__":
    main()
