"""Data sources: one ingest/calibration interface over every input kind.

The optimizer and the loader want the same two views of the input — a
parsed *sample* for selectivity estimation and cost-model calibration, and
the *raw record stream* for ingest — but the repository grew three ways to
provide them (``repro.data`` generators, materialized line lists, files on
disk), each wired slightly differently in every example.  A
:class:`DataSource` provides both views uniformly:

* :meth:`DataSource.sample` — parsed records, drawn *independently* of the
  ingest stream (sampling never consumes records the load would ship);
* :meth:`DataSource.records` — serialized single-line JSON records in
  arrival order, the exact stream a CIAO client processes.

:func:`as_source` coerces whatever a caller has — a dataset name, a
:class:`~repro.data.base.DatasetGenerator`, an iterable of raw lines, a
JSONL or CSV path — so :class:`~repro.api.session.CiaoSession` has one
front door for input.
"""

from __future__ import annotations

from itertools import islice
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from ..data import DEFAULT_SEED, make_generator
from ..data.base import DatasetGenerator
from ..rawcsv.codec import CsvCodec
from ..rawjson.parser import loads
from ..rawjson.writer import dump_record


class DataSource:
    """One input stream: a parsed sample plus raw records for ingest."""

    #: Identifier used in reports and table names.
    name: str = "source"

    def records(self) -> Iterator[str]:
        """The raw record stream (single-line JSON, arrival order)."""
        raise NotImplementedError

    def sample(self, n: int) -> List[Dict[str, Any]]:
        """*n* parsed records for estimation, independent of the stream."""
        raise NotImplementedError

    def average_record_length(self, sample_size: int = 200) -> float:
        """Mean serialized record length ``len(t)`` for the cost model."""
        sample = self.sample(sample_size)
        if not sample:
            raise ValueError(
                f"source {self.name!r} yielded an empty sample"
            )
        lengths = [len(dump_record(record)) for record in sample]
        return sum(lengths) / len(lengths)

    def count(self) -> Optional[int]:
        """Number of records, if knowable without consuming the stream."""
        return None


class GeneratorSource(DataSource):
    """A :mod:`repro.data` generator bounded to *n_records*."""

    def __init__(self, generator: DatasetGenerator, n_records: int):
        if n_records < 1:
            raise ValueError(
                f"n_records must be >= 1, got {n_records}"
            )
        self.generator = generator
        self.n_records = n_records
        self.name = generator.name

    def records(self) -> Iterator[str]:
        return self.generator.raw_lines(self.n_records)

    def sample(self, n: int) -> List[Dict[str, Any]]:
        # DatasetGenerator.sample already draws from an independent
        # child stream, so estimation never consumes ingest records.
        return self.generator.sample(n)

    def average_record_length(self, sample_size: int = 200) -> float:
        return self.generator.average_record_length(sample_size)

    def count(self) -> int:
        return self.n_records

    def with_count(self, n_records: int) -> "GeneratorSource":
        """The same generator re-bounded to *n_records*."""
        return GeneratorSource(self.generator, n_records)


class LineSource(DataSource):
    """Materialized raw JSON lines (the common benchmark shape)."""

    def __init__(self, lines: Iterable[str], name: str = "lines"):
        self.lines: List[str] = list(lines)
        if not self.lines:
            raise ValueError("a line source needs at least one record")
        self.name = name

    def records(self) -> Iterator[str]:
        return iter(self.lines)

    def sample(self, n: int) -> List[Dict[str, Any]]:
        return [loads(line) for line in self.lines[:n]]

    def count(self) -> int:
        return len(self.lines)


class JsonFileSource(DataSource):
    """A newline-delimited JSON file, streamed without materializing."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        if not self.path.exists():
            raise FileNotFoundError(str(self.path))
        self.name = self.path.stem

    def records(self) -> Iterator[str]:
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.rstrip("\n")
                if line:
                    yield line

    def sample(self, n: int) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for line in self.records():
            out.append(loads(line))
            if len(out) >= n:
                break
        return out


class CsvFileSource(DataSource):
    """A CSV file re-framed as JSON records through a :class:`CsvCodec`.

    CIAO's pushdown machinery speaks newline-delimited JSON; CSV feeds
    enter through the codec (§IV-A's "other text-based formats" note):
    each line is decoded to a record and re-serialized as JSON for the
    ingest stream, while samples are the decoded records directly.
    """

    def __init__(self, path: Union[str, Path], codec: CsvCodec,
                 skip_header: bool = False):
        self.path = Path(path)
        if not self.path.exists():
            raise FileNotFoundError(str(self.path))
        self.codec = codec
        self.skip_header = skip_header
        self.name = self.path.stem

    def _lines(self) -> Iterator[str]:
        with self.path.open("r", encoding="utf-8") as handle:
            for i, line in enumerate(handle):
                if i == 0 and self.skip_header:
                    continue
                line = line.rstrip("\n")
                if line:
                    yield line

    def records(self) -> Iterator[str]:
        for line in self._lines():
            yield dump_record(self.codec.decode_line(line))

    def sample(self, n: int) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for line in self._lines():
            out.append(self.codec.decode_line(line))
            if len(out) >= n:
                break
        return out


class LimitedSource(DataSource):
    """A view of another source truncated to its first *n_records*.

    How ``n_records`` applies to line/file sources: the record stream is
    cut (lazily — nothing past the cap is read), while sampling still
    sees only the covered prefix.
    """

    def __init__(self, inner: DataSource, n_records: int):
        if n_records < 1:
            raise ValueError(
                f"n_records must be >= 1, got {n_records}"
            )
        self.inner = inner
        self.n_records = n_records
        self.name = inner.name

    def records(self) -> Iterator[str]:
        return islice(self.inner.records(), self.n_records)

    def sample(self, n: int) -> List[Dict[str, Any]]:
        return self.inner.sample(min(n, self.n_records))

    def count(self) -> Optional[int]:
        # An unknown-length stream may hold fewer than the cap, so the
        # cap alone is not a record count.
        inner = self.inner.count()
        return None if inner is None else min(inner, self.n_records)


#: Anything :func:`as_source` accepts.
SourceLike = Union[DataSource, DatasetGenerator, str, Path, Iterable[str]]

#: Default record count when a dataset name/generator is given bare.
DEFAULT_N_RECORDS = 10_000


def as_source(obj: SourceLike, *,
              seed: int = DEFAULT_SEED,
              n_records: Optional[int] = None,
              codec: Optional[CsvCodec] = None) -> DataSource:
    """Coerce *obj* into a :class:`DataSource`.

    * a :class:`DataSource` passes through (``n_records`` re-bounds a
      generator source and truncates any other kind via
      :class:`LimitedSource`);
    * a :class:`~repro.data.base.DatasetGenerator` or dataset name
      (``"yelp"``/``"winlog"``/``"ycsb"``) wraps in a
      :class:`GeneratorSource` of *n_records* (default
      :data:`DEFAULT_N_RECORDS`);
    * a path to an existing ``.csv`` file (with *codec*) or any other
      text file (treated as JSONL) wraps the file;
    * any other iterable of strings wraps in a :class:`LineSource`.
    """
    if isinstance(obj, DataSource):
        if n_records is None:
            return obj
        if isinstance(obj, GeneratorSource):
            return obj.with_count(n_records)
        return LimitedSource(obj, n_records)
    if isinstance(obj, DatasetGenerator):
        return GeneratorSource(obj, n_records or DEFAULT_N_RECORDS)
    if isinstance(obj, (str, Path)):
        path = Path(obj)
        if isinstance(obj, str) and not path.exists():
            # Dataset names resolve through the generator registry;
            # make_generator raises a helpful KeyError for unknown ones.
            generator = make_generator(obj, seed=seed)
            return GeneratorSource(generator, n_records or DEFAULT_N_RECORDS)
        if path.suffix.lower() == ".csv":
            if codec is None:
                raise ValueError(
                    f"CSV source {path} needs a CsvCodec (column order "
                    f"and types); pass codec=..."
                )
            source: DataSource = CsvFileSource(path, codec)
        else:
            source = JsonFileSource(path)
    elif isinstance(obj, Iterable):
        source = LineSource(obj)
    else:
        raise TypeError(
            f"cannot build a DataSource from {type(obj).__name__}"
        )
    if n_records is not None:
        return LimitedSource(source, n_records)
    return source
