"""Simulated client→server transport.

The paper's prototype "simulates all communication through file I/O" on a
single machine; :class:`FileChannel` reproduces that literally (one spool
file per chunk), while :class:`MemoryChannel` offers the same interface
without touching disk for tests and fast benchmarks.  Both account bytes
and messages so experiments can report transfer overhead — bit-vectors add
~1 bit per record per pushed predicate, one of CIAO's selling points.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Iterable, Iterator, List, Optional, Sequence


@dataclass
class ChannelStats:
    """Transfer accounting for one channel."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0

    def record_send(self, size: int) -> None:
        """Account one outgoing message of *size* bytes."""
        self.messages_sent += 1
        self.bytes_sent += size

    def record_receive(self) -> None:
        """Account one delivered message."""
        self.messages_received += 1


class Channel(ABC):
    """One-directional ordered message transport."""

    def __init__(self) -> None:
        self.stats = ChannelStats()

    @abstractmethod
    def send(self, payload: bytes) -> None:
        """Enqueue one message."""

    def send_batch(self, payloads: Iterable[bytes]) -> None:
        """Frame several encoded chunks into one message.

        Chunk frames are self-delimiting, so the batch is their plain
        concatenation; one queue put / spool file then carries many
        chunks, amortizing per-message transport overhead.  Receivers
        that care about chunk boundaries use :meth:`drain_chunks`, which
        splits batches back apart; an empty batch sends nothing.
        """
        batch = bytearray()
        for payload in payloads:
            if not isinstance(payload, (bytes, bytearray, memoryview)):
                raise TypeError("channels carry bytes")
            batch += payload
        if batch:
            self.send(bytes(batch))

    def send_frames(self, payloads: Sequence[bytes]) -> None:
        """Send buffered chunk frames as one message.

        The canonical flush for senders that accumulate frames: a single
        frame goes out directly (no copy), several are concatenated via
        :meth:`send_batch`, and an empty buffer sends nothing.
        """
        if len(payloads) == 1:
            self.send(payloads[0])
        elif payloads:
            self.send_batch(payloads)

    @abstractmethod
    def receive(self) -> Optional[bytes]:
        """Dequeue the oldest message, or None if the channel is empty."""

    def drain(self) -> Iterator[bytes]:
        """Receive until empty."""
        while True:
            payload = self.receive()
            if payload is None:
                return
            yield payload

    def drain_chunks(self) -> Iterator[bytes]:
        """Receive until empty, yielding individual chunk frames.

        The inverse of :meth:`send_batch`: each received message is split
        into its chunk frames (a single-chunk message yields itself), so
        consumers see one chunk per iteration regardless of how the
        sender framed them.  Only valid for channels carrying encoded
        chunks.
        """
        # Imported lazily: the protocol module sits above the transport
        # layer in the package graph, and channels stay payload-agnostic
        # except for this one chunk-aware convenience.
        from ..client.protocol import split_frames

        for payload in self.drain():
            for frame in split_frames(payload):
                yield bytes(frame)

    def __len__(self) -> int:
        return self.pending()

    @abstractmethod
    def pending(self) -> int:
        """Number of undelivered messages."""


class MemoryChannel(Channel):
    """In-process FIFO — the fast default for tests and benches."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque[bytes] = deque()

    def send(self, payload: bytes) -> None:
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("channels carry bytes")
        self._queue.append(bytes(payload))
        self.stats.record_send(len(payload))

    def receive(self) -> Optional[bytes]:
        if not self._queue:
            return None
        self.stats.record_receive()
        return self._queue.popleft()

    def pending(self) -> int:
        return len(self._queue)


class FileChannel(Channel):
    """File-spool FIFO, mirroring the paper's file-I/O deployment.

    Messages are numbered spool files under *directory*; receive order is
    send order.  The channel owns the directory's ``.msg`` files; anything
    else in there is left alone.
    """

    def __init__(self, directory: str | Path):
        super().__init__()
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._next_send = 0
        self._next_receive = 0
        # Resume counters from any existing spool (restart tolerance).
        numbers = self._spool_numbers()
        if numbers:
            self._next_receive = min(numbers)
            self._next_send = max(numbers) + 1

    def _path(self, index: int) -> Path:
        return self._dir / f"{index:09d}.msg"

    def send(self, payload: bytes) -> None:
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("channels carry bytes")
        path = self._path(self._next_send)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)  # atomic publish: no torn reads
        self._next_send += 1
        self.stats.record_send(len(payload))

    def receive(self) -> Optional[bytes]:
        path = self._path(self._next_receive)
        if not path.exists():
            # A gap in the spool (e.g. a crashed consumer deleted one
            # file out of order) must not stall the channel forever:
            # skip forward to the oldest spool file that actually
            # exists, if any.
            numbers = self._spool_numbers()
            later = [n for n in numbers if n > self._next_receive]
            if not later:
                return None
            self._next_receive = min(later)
            path = self._path(self._next_receive)
        payload = path.read_bytes()
        path.unlink()
        self._next_receive += 1
        self.stats.record_receive()
        return payload

    def pending(self) -> int:
        # Counted from files actually on disk, not send/receive counters:
        # a resumed spool with gaps would otherwise overcount messages
        # that no longer exist.
        return len(self._spool_numbers())

    def _spool_numbers(self) -> List[int]:
        """Message numbers of the spool files currently on disk."""
        return [
            int(p.stem) for p in self._dir.glob("*.msg")
            if p.stem.isdigit()
        ]


@dataclass
class LinkModel:
    """Optional virtual-time pricing of a link (extension over the paper).

    Attributes:
        bandwidth_mbps: Payload throughput in megabits per second.
        latency_us: Fixed per-message latency.
    """

    bandwidth_mbps: float = 1000.0
    latency_us: float = 50.0

    def transfer_time_us(self, payload_bytes: int) -> float:
        """Virtual µs to move one message across the link."""
        if payload_bytes < 0:
            raise ValueError("payload sizes are non-negative")
        bits = payload_bytes * 8
        return self.latency_us + bits / self.bandwidth_mbps
