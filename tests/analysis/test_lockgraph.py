"""The static lock graph over the real repo and the cycle fixtures."""

from pathlib import Path

import repro
from repro.analysis import build_lock_graph_from_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"
SRC_PKG = Path(repro.__file__).parent


def test_repo_graph_has_the_production_locks():
    graph = build_lock_graph_from_paths([SRC_PKG])
    assert {
        "CiaoServer._lifecycle_lock",
        "ShardedIngestPipeline._lock",
        "FleetCoordinator._cond",
    } <= set(graph.locks)


def test_repo_graph_lifecycle_before_pipeline():
    """query()/finalize_loading() take the pipeline lock under the
    lifecycle lock — the one cross-class ordering in the stack."""
    graph = build_lock_graph_from_paths([SRC_PKG])
    assert (
        "CiaoServer._lifecycle_lock", "ShardedIngestPipeline._lock"
    ) in graph.edge_set()


def test_repo_graph_is_acyclic():
    graph = build_lock_graph_from_paths([SRC_PKG])
    assert graph.cycles() == []


def test_cycle_fixture_detected():
    graph = build_lock_graph_from_paths(
        [FIXTURES / "cycle_bad.py"], root=FIXTURES
    )
    (cycle,) = graph.cycles()
    assert set(cycle) == {"Pair._a", "Pair._b"}


def test_ordered_fixture_clean():
    graph = build_lock_graph_from_paths(
        [FIXTURES / "cycle_good.py"], root=FIXTURES
    )
    assert graph.cycles() == []
    assert ("Pair._a", "Pair._b") in graph.edge_set()


def test_call_effects_propagate_to_callers(tmp_path):
    """A caller holding one lock that calls into code taking another
    produces the cross-function edge (the fixpoint half of the graph)."""
    (tmp_path / "mod.py").write_text(
        "import threading\n\n\n"
        "class Inner:\n"
        "    def __init__(self):\n"
        "        self._inner_lock = threading.Lock()\n\n"
        "    def poke(self):\n"
        "        with self._inner_lock:\n"
        "            pass\n\n\n"
        "class Outer:\n"
        "    def __init__(self):\n"
        "        self._outer_lock = threading.Lock()\n"
        "        self.child = Inner()\n\n"
        "    def run(self):\n"
        "        with self._outer_lock:\n"
        "            self.child.poke()\n"
    )
    graph = build_lock_graph_from_paths(
        [tmp_path / "mod.py"], root=tmp_path
    )
    assert (
        "Outer._outer_lock", "Inner._inner_lock"
    ) in graph.edge_set()
