"""Chaos property: any seeded fault schedule loses and duplicates nothing.

For arbitrary seeds, a multi-client remote load driven through
fault-injecting channels (disconnects, stalls, drops, truncations,
corruption) must commit a table with exactly the rows of a fault-free
serial ingest of the same records, and the server-side ingest ledger
must sit exactly at each client's final sequence number — retries
replayed batches, the ledger absorbed them, nothing landed twice.
"""

import json
import shutil
import tempfile
import threading
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CiaoSession, DeploymentConfig
from repro.api.source import as_source
from repro.recovery import RetryPolicy
from repro.service import CiaoService, RemoteSession
from repro.transport import FaultPlan, SocketChannel, faulty_dialer

N_RECORDS = 60
SPLIT = 35  # client A ships the head, client B the tail
SQL_GROUP = "SELECT stars, COUNT(*) FROM t GROUP BY stars"

_cache = {}


def durable_config():
    return DeploymentConfig(mode="sharded", n_shards=2,
                            shard_mode="thread", seal_interval=2,
                            durable=True)


def canonical(result):
    return json.dumps(
        sorted(result.rows, key=lambda row: json.dumps(row, sort_keys=True)),
        sort_keys=True, separators=(",", ":"),
    )


def record_lines():
    if "lines" not in _cache:
        _cache["lines"] = list(
            as_source("yelp", n_records=N_RECORDS).records()
        )
    return _cache["lines"]


def baseline():
    """Fault-free serial ingest of the same records, computed once."""
    if "baseline" not in _cache:
        root = Path(tempfile.mkdtemp(prefix="chaos-baseline-"))
        try:
            session = CiaoSession(config=durable_config(), data_dir=root)
            with CiaoService(session) as service:
                remote = RemoteSession(address=service.address,
                                       client_id="serial", chunk_size=5)
                remote.load(record_lines(), source_id="serial")
                remote.commit()
                _cache["baseline"] = (
                    canonical(remote.query(SQL_GROUP)),
                    remote.query("SELECT COUNT(*) FROM t")
                    .rows[0]["count(*)"],
                )
                remote.close()
            session.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return _cache["baseline"]


def chaotic_client(address, name, lines, seed, fault_rate, outcome):
    plan = FaultPlan.generate(seed=seed, n_ops=200, fault_rate=fault_rate)
    dial, _ = faulty_dialer(
        lambda: SocketChannel.connect(address), plan,
    )
    remote = RemoteSession(
        channel_factory=dial, client_id=name, chunk_size=5,
        retry=RetryPolicy(max_attempts=10, base_delay=0.01,
                          max_delay=0.05, seed=seed),
        timeout=1.0,
    )
    remote.load(lines, source_id=name, batch_size=1)
    outcome[name] = (remote, remote._seqs[name])


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    fault_rate=st.sampled_from([0.1, 0.2, 0.3]),
)
@settings(max_examples=6, deadline=None)
def test_fault_schedules_never_lose_or_duplicate(seed, fault_rate):
    expected_rows, expected_count = baseline()
    lines = record_lines()
    root = Path(tempfile.mkdtemp(prefix="chaos-run-"))
    try:
        session = CiaoSession(config=durable_config(), data_dir=root)
        with CiaoService(session, checkpoint_every=5,
                         idle_timeout=60.0) as service:
            outcome = {}
            clients = [
                threading.Thread(target=chaotic_client, args=(
                    service.address, "A", lines[:SPLIT], seed,
                    fault_rate, outcome,
                )),
                threading.Thread(target=chaotic_client, args=(
                    service.address, "B", lines[SPLIT:], seed + 1,
                    fault_rate, outcome,
                )),
            ]
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join(timeout=120.0)
            assert set(outcome) == {"A", "B"}, "a client never finished"

            # No double-ingest: the server's ledger sits exactly at
            # each client's final sequence number, replays and all.
            server = session.last_job.server
            for name, (_, last_seq) in outcome.items():
                assert server.ledger_last(name, name) == last_seq

            remote_a = outcome["A"][0]
            remote_a.commit()
            count = remote_a.query(
                "SELECT COUNT(*) FROM t").rows[0]["count(*)"]
            rows = canonical(remote_a.query(SQL_GROUP))
            for name in outcome:
                outcome[name][0].close()
        session.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    assert count == expected_count == N_RECORDS
    assert rows == expected_rows
