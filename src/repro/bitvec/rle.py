"""Run-length encoded bit-vectors.

Predicate bit-vectors are typically highly skewed: a selective predicate
yields long runs of zeros, and a predicate matching a hot key yields long
runs of ones.  :class:`RleBitVector` stores alternating run lengths starting
with a zero-run, which compresses both cases, and is the wire encoding the
client protocol chooses when it beats the packed representation.

This module is an *extension* over the paper (which ships packed vectors);
the ablation bench ``bench_ablation_chunk_size`` quantifies the saving.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from .bitvector import BitVector


class RleBitVector:
    """Immutable run-length encoded view of a bit sequence.

    Runs alternate ``0``-run, ``1``-run, ``0``-run, ... with the first run
    allowed to be empty so every sequence has a canonical encoding:

    >>> rle = RleBitVector.from_bitvector(BitVector.from_bits([1, 1, 0, 1]))
    >>> rle.runs
    (0, 2, 1, 1)
    >>> rle.count()
    3
    """

    __slots__ = ("_length", "_runs")

    def __init__(self, length: int, runs: Sequence[int]):
        if sum(runs) != length:
            raise ValueError(
                f"runs sum to {sum(runs)} but declared length is {length}"
            )
        if any(r < 0 for r in runs):
            raise ValueError("run lengths must be non-negative")
        self._length = length
        self._runs = tuple(self._canonicalize(runs))

    @staticmethod
    def _canonicalize(runs: Sequence[int]) -> List[int]:
        """Merge empty interior runs so equal sequences encode equally."""
        out: List[int] = []
        for i, run in enumerate(runs):
            if i == 0:
                out.append(run)
                continue
            if run == 0:
                continue
            # Parity of position in `out` decides the bit value of the run.
            same_bit_as_last = (len(out) - 1) % 2 == i % 2
            if same_bit_as_last and out:
                out[-1] += run
            else:
                out.append(run)
        while len(out) > 1 and out[-1] == 0:
            out.pop()
        return out

    # ------------------------------------------------------------------
    @classmethod
    def from_bitvector(cls, bv: BitVector) -> "RleBitVector":
        """Encode a packed vector.

        Driven by the set bits only (via the word-level ``iter_set``), so
        cost scales with runs, not with vector length — the common selective
        predicate encodes in microseconds regardless of chunk size.
        """
        runs: List[int] = []
        cursor = 0  # first position not yet encoded
        ones = 0  # length of the currently open 1-run
        for index in bv.iter_set():
            if ones and index == cursor:
                ones += 1
                cursor += 1
                continue
            if ones:
                runs.append(ones)
            # Zero-gap up to this set bit (the leading zero-run may be 0).
            runs.append(index - cursor if runs else index)
            ones = 1
            cursor = index + 1
        if ones:
            runs.append(ones)
        if not runs:
            runs.append(len(bv))  # all-zero vector: one zero-run
        elif cursor < len(bv):
            runs.append(len(bv) - cursor)  # trailing zero-run
        return cls(len(bv), runs)

    def to_bitvector(self) -> BitVector:
        """Decode back to a packed vector (word-level run masks)."""
        bv = BitVector(self._length)
        value = 0
        pos = 0
        for i, run in enumerate(self._runs):
            if i % 2 == 1 and run:
                value |= ((1 << run) - 1) << pos
            pos += run
        if value:
            bv._data[:] = value.to_bytes(len(bv._data), "little")
        return bv

    # ------------------------------------------------------------------
    @property
    def runs(self) -> tuple:
        """The canonical alternating run lengths (zero-run first)."""
        return self._runs

    def count(self) -> int:
        """Number of set bits."""
        return sum(run for i, run in enumerate(self._runs) if i % 2 == 1)

    def iter_set(self) -> Iterator[int]:
        """Yield set-bit indices in order without materializing."""
        pos = 0
        for i, run in enumerate(self._runs):
            if i % 2 == 1:
                yield from range(pos, pos + run)
            pos += run

    def __len__(self) -> int:
        return self._length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RleBitVector):
            return NotImplemented
        return self._length == other._length and self._runs == other._runs

    def __hash__(self) -> int:
        return hash((self._length, self._runs))

    def __repr__(self) -> str:
        return f"RleBitVector(length={self._length}, runs={self._runs})"

    # ------------------------------------------------------------------
    # Serialization: varint-packed run lengths.
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize as ``<u32 length><u32 #runs><varint runs...>``."""
        body = bytearray()
        body += self._length.to_bytes(4, "little")
        body += len(self._runs).to_bytes(4, "little")
        for run in self._runs:
            body += _encode_varint(run)
        return bytes(body)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "RleBitVector":
        """Inverse of :meth:`to_bytes`."""
        if len(raw) < 8:
            raise ValueError("RLE payload shorter than its header")
        length = int.from_bytes(raw[:4], "little")
        nruns = int.from_bytes(raw[4:8], "little")
        runs: List[int] = []
        pos = 8
        for _ in range(nruns):
            run, pos = _decode_varint(raw, pos)
            runs.append(run)
        if pos != len(raw):
            raise ValueError(
                f"{len(raw) - pos} trailing bytes after RLE runs"
            )
        return cls(length, runs)

    def serialized_size(self) -> int:
        """Byte size of :meth:`to_bytes` output."""
        return len(self.to_bytes())


def best_encoding(bv: BitVector) -> "BitVector | RleBitVector":
    """Pick the smaller wire encoding for *bv* (packed vs RLE)."""
    rle = RleBitVector.from_bitvector(bv)
    if rle.serialized_size() < bv.serialized_size():
        return rle
    return bv


def _encode_varint(value: int) -> bytes:
    """LEB128-style unsigned varint."""
    if value < 0:
        raise ValueError("varints are unsigned")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(raw: bytes, pos: int) -> tuple:
    """Decode one varint starting at *pos*; returns (value, next_pos)."""
    value = 0
    shift = 0
    while True:
        if pos >= len(raw):
            raise ValueError("truncated varint")
        byte = raw[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
