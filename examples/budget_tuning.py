"""Budget tuning: calibrate the cost model, then walk the benefit frontier.

An administrator deciding the client budget B needs two things the paper
provides: a *calibrated* cost model (§V-D / Table IV) so B is in real
µs/record for the actual client hardware, and the f(S)-vs-cost frontier so
they can see where the diminishing returns of §V set in.

This example calibrates against real ``str.find`` timings on the current
machine, injects the calibrated model into ``CiaoSession.plan`` (every
stage of the session's planning pipeline accepts an override), then
sweeps budgets and prints, for each: predicates pushed, expected filtering
benefit f(S), and the cost-model estimate of client spend.

Run:  python examples/budget_tuning.py
"""

from repro.api import Budget, CiaoSession, CostModel, as_source
from repro.core import fit, measure_search_costs
from repro.core.patterns import compile_clause
from repro.workload import table3_workload


def calibrate(source, clauses, n_records=400):
    """Fit the §V-D model to real substring-search timings."""
    records = list(source.records())[:n_records]
    compiled = [compile_clause(c) for c in clauses]
    observations = measure_search_costs(compiled, records, repeats=3)
    report = fit(observations)
    print(
        f"Calibrated on {len(observations)} predicates: "
        f"R² = {report.r_squared:.3f}"
    )
    print(f"  coefficients: {report.coefficients}")
    return report.coefficients


def main() -> None:
    source = as_source("winlog", seed=5, n_records=400)
    workload = table3_workload("winlog", "A", seed=5, n_queries=40)
    pool = workload.candidate_pool

    coefficients = calibrate(source, list(pool)[:80])
    cost_model = CostModel(coefficients, source.average_record_length())

    print(
        f"\nWorkload: {len(workload)} queries over {len(pool)} candidate "
        f"predicates\n"
    )
    header = (
        f"{'budget (µs/rec)':>16} {'#pushed':>8} {'f(S)':>7} "
        f"{'spend (µs/rec)':>15} {'marginal f per µs':>18}"
    )
    print(header)
    print("-" * len(header))
    with CiaoSession(workload, source=source, seed=5) as session:
        previous = (0.0, 0.0)
        for budget_us in (0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2):
            plan = session.plan(Budget(budget_us), cost_model=cost_model)
            benefit = plan.expected_benefit()
            spend = plan.total_cost_us()
            marginal = (
                (benefit - previous[0]) / (spend - previous[1])
                if spend > previous[1] else float("nan")
            )
            print(
                f"{budget_us:>16.2f} {len(plan):>8} {benefit:>7.3f} "
                f"{spend:>15.3f} {marginal:>18.2f}"
            )
            previous = (benefit, spend)
    print(
        "\nDiminishing marginal returns (submodularity, §V-B): each extra "
        "µs of budget buys less filtering than the one before."
    )


if __name__ == "__main__":
    main()
