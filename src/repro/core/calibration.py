"""Cost-model calibration by multivariate linear regression (paper §VII-F).

The paper randomly picks 100 predicates per dataset, times them on a 5 GB
sample, regresses the mean per-record cost on the model's features, and
reports R² per hardware platform (Table IV).  This module implements that
pipeline:

* :func:`measure_search_costs` times real ``str.find`` calls on this
  machine (the "Local" platform of our Table IV reproduction);
* :func:`fit` solves the least-squares problem for the five coefficients;
* :func:`r_squared` is the goodness-of-fit statistic.

Synthetic "other hardware" observations (cloud VM with hypervisor noise,
bare-metal cluster) come from :mod:`repro.simulate.hardware` and run through
the same :func:`fit`.

Note on the paper's R² formula: the text writes the denominator as
``Σ(ŷ_i − ȳ)²`` — that is the *explained* sum of squares, which would make
the statistic "1 − SSres/SSexp".  We implement the standard definition
``R² = 1 − SSres/SStot`` (total sum of squares), which is what every linear
regression package reports and evidently what the authors computed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from .cost_model import CostCoefficients
from .patterns import CompiledClause


@dataclass(frozen=True)
class Observation:
    """One calibration data point: a predicate timed against a sample.

    Attributes:
        pattern_length: ``len(p)``, total pattern characters searched.
        record_length: ``len(t)``, mean record length of the sample.
        hit_rate: Fraction of records on which the pattern was found —
            the selectivity proxy the model's two branches split on.
        mean_cost_us: Mean measured (or simulated) evaluation cost, µs.
    """

    pattern_length: float
    record_length: float
    hit_rate: float
    mean_cost_us: float

    def features(self) -> Tuple[float, float, float, float, float]:
        """The regression features matching :class:`CostCoefficients`."""
        sel, lp, lt = self.hit_rate, self.pattern_length, self.record_length
        return (sel * lp, sel * lt, (1 - sel) * lp, (1 - sel) * lt, 1.0)


@dataclass(frozen=True)
class CalibrationReport:
    """Result of fitting the cost model to observations."""

    coefficients: CostCoefficients
    raw_solution: Tuple[float, ...]
    r_squared: float
    n_observations: int

    def summary(self) -> str:
        """One-line summary as printed by the Table IV bench."""
        k = self.coefficients
        return (
            f"n={self.n_observations} R²={self.r_squared:.3f} "
            f"k1={k.k1:.3e} k2={k.k2:.3e} k3={k.k3:.3e} "
            f"k4={k.k4:.3e} c={k.c:.3e}"
        )


def r_squared(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Standard coefficient of determination, 1 − SSres/SStot.

    Degenerate case: if every observation has the same true value, SStot is
    zero; we report 1.0 for a perfect fit and 0.0 otherwise.
    """
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    if yt.shape != yp.shape:
        raise ValueError("y_true and y_pred must have equal length")
    ss_res = float(np.sum((yt - yp) ** 2))
    ss_tot = float(np.sum((yt - yt.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit(observations: Sequence[Observation]) -> CalibrationReport:
    """Least-squares fit of the five-coefficient model.

    Coefficients are clamped at zero for use in :class:`CostCoefficients`
    (a negative per-byte cost is physically meaningless and only arises from
    noise); R² is reported for the *unclamped* solution, faithful to what a
    plain multivariate regression would measure.
    """
    if len(observations) < 5:
        raise ValueError(
            f"need at least 5 observations to fit 5 coefficients, "
            f"got {len(observations)}"
        )
    design = np.array([obs.features() for obs in observations], dtype=float)
    target = np.array([obs.mean_cost_us for obs in observations], dtype=float)
    solution, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
    predictions = design @ solution
    score = r_squared(target, predictions)
    clamped = CostCoefficients(*(max(0.0, float(v)) for v in solution))
    return CalibrationReport(
        coefficients=clamped,
        raw_solution=tuple(float(v) for v in solution),
        r_squared=score,
        n_observations=len(observations),
    )


def measure_search_costs(
    compiled_clauses: Sequence[CompiledClause],
    records: Sequence[str],
    repeats: int = 3,
    timer: Callable[[], float] = time.perf_counter,
) -> List[Observation]:
    """Time real raw-pattern evaluation of each clause over *records*.

    This is the paper's calibration experiment run on the current machine:
    for each clause we measure mean per-record evaluation cost (µs) and the
    observed hit rate.  ``repeats`` takes the minimum over runs to shed
    scheduler noise, standard micro-benchmark practice.
    """
    if not records:
        raise ValueError("need a non-empty record sample")
    observations: List[Observation] = []
    mean_len = sum(len(r) for r in records) / len(records)
    for compiled in compiled_clauses:
        matcher = compiled.matcher()
        hits = sum(1 for raw in records if matcher(raw))
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = timer()
            for raw in records:
                matcher(raw)
            elapsed = timer() - start
            best = min(best, elapsed)
        mean_us = best / len(records) * 1e6
        observations.append(
            Observation(
                pattern_length=compiled.total_pattern_length(),
                record_length=mean_len,
                hit_rate=hits / len(records),
                mean_cost_us=mean_us,
            )
        )
    return observations


def predict(coefficients: CostCoefficients,
            observations: Sequence[Observation]) -> List[float]:
    """Model predictions for *observations* under *coefficients*."""
    vec = np.asarray(coefficients.as_vector(), dtype=float)
    design = np.array([obs.features() for obs in observations], dtype=float)
    return [float(v) for v in design @ vec]
