"""Parallel sharded ingest vs serial ingest, plus bit-vector kernel bench.

Two claims are measured:

1. **Kernel speedup** — the word-level big-int kernels behind
   ``BitVector.intersect_update``/``union_update`` must beat the seed's
   per-byte Python loop by ≥10× at 1M bits.  This is machine-independent
   (both sides run on the same interpreter) and asserted unconditionally.
2. **Ingest throughput** — a 4-shard :class:`ShardedIngestPipeline`
   (process mode: fork workers, true parallelism under the GIL) vs serial
   ``CiaoServer`` ingest of the identical encoded Yelp-style stream,
   in chunks/sec.  The ≥2× assertion is *core-gated*: parallel speedup is
   physics, not software — on a container restricted to fewer than 4 CPUs
   (``len(os.sched_getaffinity(0))``) a 4-shard pipeline cannot double
   throughput, so there the bench asserts a no-pathological-overhead floor
   instead and reports the measured ratio.  Override the threshold with
   ``REPRO_BENCH_MIN_SPEEDUP`` (a float) to pin it in CI.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_parallel_ingest.py``
(set ``REPRO_BENCH_SMOKE=1`` for a <60 s smoke configuration).
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.bench import emit
from repro.bitvec import BitVector
from repro.client import SimulatedClient, encode_chunk
from repro.core import (
    Budget,
    CiaoOptimizer,
    CostModel,
    DEFAULT_COEFFICIENTS,
)
from repro.data import make_generator
from repro.server import CiaoServer
from repro.workload import estimate_selectivities, table3_workload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_RECORDS = 1500 if SMOKE else 6000
CHUNK_SIZE = 250
N_SHARDS = 4
KERNEL_BITS = 1_000_000
SEED = 20260727


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _min_speedup() -> float:
    override = os.environ.get("REPRO_BENCH_MIN_SPEEDUP")
    if override:
        return float(override)
    cores = _effective_cores()
    if cores >= N_SHARDS:
        return 2.0
    if cores >= 2:
        return 1.2
    # Single-core container: parallel ≥ serial is impossible; only guard
    # against pathological pipeline overhead.
    return 0.5


# ----------------------------------------------------------------------
# 1. Bit-vector kernel microbench
# ----------------------------------------------------------------------
def _seed_intersect_update(dst: bytearray, src: bytearray) -> None:
    """The seed's per-byte loop, kept as the baseline under test."""
    for i, byte in enumerate(src):
        dst[i] &= byte


def _seed_union_update(dst: bytearray, src: bytearray) -> None:
    for i, byte in enumerate(src):
        dst[i] |= byte


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bitvector_kernel_speedup(benchmark, results_dir):
    import random

    rng = random.Random(SEED)
    a = BitVector.from_bits(
        rng.getrandbits(1) for _ in range(KERNEL_BITS)
    )
    b = BitVector.from_bits(
        rng.getrandbits(1) for _ in range(KERNEL_BITS)
    )
    a_bytes = bytearray(a.to_bytes()[4:])
    b_bytes = bytearray(b.to_bytes()[4:])

    def kernels():
        work = a.copy()
        work.intersect_update(b)
        work.union_update(b)
        return work

    kernel_seconds = _time(kernels, repeats=5)
    seed_seconds = _time(
        lambda: (
            _seed_intersect_update(bytearray(a_bytes), b_bytes),
            _seed_union_update(bytearray(a_bytes), b_bytes),
        ),
        repeats=3,
    )
    ratio = seed_seconds / kernel_seconds
    lines = [
        f"bit-vector kernels at {KERNEL_BITS} bits "
        f"(intersect_update + union_update):",
        f"  seed per-byte loop : {seed_seconds * 1e3:8.2f} ms",
        f"  word-level kernels : {kernel_seconds * 1e3:8.2f} ms",
        f"  speedup            : {ratio:8.1f}x (floor 10x)",
    ]
    emit("parallel_ingest_kernels", "\n".join(lines), results_dir)
    run_once(benchmark, kernels)
    assert ratio >= 10.0, (
        f"word-level kernels only {ratio:.1f}x over the per-byte loop"
    )


# ----------------------------------------------------------------------
# 2. Sharded ingest throughput
# ----------------------------------------------------------------------
def _prepare_payloads():
    generator = make_generator("yelp", SEED)
    lines = list(generator.raw_lines(N_RECORDS))
    workload = table3_workload("yelp", "A", seed=SEED, n_queries=20)
    sels = estimate_selectivities(
        workload.candidate_pool, generator.sample(min(1000, N_RECORDS))
    )
    model = CostModel(DEFAULT_COEFFICIENTS, 160)
    plan = CiaoOptimizer(workload, sels, model).plan(Budget(20.0))
    client = SimulatedClient("bench", plan=plan, chunk_size=CHUNK_SIZE)
    payloads = [encode_chunk(c) for c in client.process(lines)]
    return plan, workload, payloads


def _ingest(tmp_path, tag, plan, workload, payloads, n_shards):
    server = CiaoServer(
        tmp_path / tag, plan=plan, workload=workload,
        n_shards=n_shards, shard_mode="process",
    )
    start = time.perf_counter()
    for payload in payloads:
        server.ingest(payload)
    summary = server.finalize_loading()
    elapsed = time.perf_counter() - start
    return summary, elapsed


def test_parallel_ingest_speedup(benchmark, tmp_path, results_dir):
    plan, workload, payloads = _prepare_payloads()

    def experiment():
        serial_summary, serial_seconds = _ingest(
            tmp_path, "serial", plan, workload, payloads, n_shards=1
        )
        parallel_summary, parallel_seconds = _ingest(
            tmp_path, "parallel", plan, workload, payloads,
            n_shards=N_SHARDS,
        )
        return (serial_summary, serial_seconds,
                parallel_summary, parallel_seconds)

    (serial_summary, serial_seconds,
     parallel_summary, parallel_seconds) = run_once(benchmark, experiment)

    n_chunks = len(payloads)
    serial_rate = n_chunks / serial_seconds
    parallel_rate = n_chunks / parallel_seconds
    speedup = parallel_rate / serial_rate
    floor = _min_speedup()
    cores = _effective_cores()
    lines = [
        f"parallel sharded ingest, yelp-style stream "
        f"({N_RECORDS} records, {n_chunks} chunks of {CHUNK_SIZE}):",
        f"  effective cores      : {cores}",
        f"  serial ingest        : {serial_rate:8.1f} chunks/s "
        f"({serial_seconds:.2f} s)",
        f"  {N_SHARDS}-shard pipeline     : {parallel_rate:8.1f} chunks/s "
        f"({parallel_seconds:.2f} s)",
        f"  speedup              : {speedup:8.2f}x (floor {floor:.1f}x)",
        f"  accounting           : loaded={parallel_summary.loaded} "
        f"sidelined={parallel_summary.sidelined} "
        f"malformed={parallel_summary.malformed} (quarantined raw)",
    ]
    emit("parallel_ingest_throughput", "\n".join(lines), results_dir)

    # Identical accounting regardless of shard count.
    assert parallel_summary.received == serial_summary.received
    assert parallel_summary.loaded == serial_summary.loaded
    assert parallel_summary.sidelined == serial_summary.sidelined
    assert parallel_summary.malformed == serial_summary.malformed
    assert speedup >= floor, (
        f"{N_SHARDS}-shard pipeline only {speedup:.2f}x over serial "
        f"(floor {floor:.1f}x on {cores} cores)"
    )
