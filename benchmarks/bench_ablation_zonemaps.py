"""Ablation — zone-map pruning on range queries (extension).

CIAO cannot push range predicates to clients (false negatives, §IV-B), but
the server can still skip whole row groups for them using the min/max
statistics Parquet-lite records — provided the column is clustered, as log
sequence numbers are.  This bench loads a winlog stream and compares range
queries over the clustered ``event_id`` against an equality predicate on
an unclustered column.
"""

import time

from conftest import config_for, run_once

from repro.bench import EndToEndRunner, emit_table

PARAMS = config_for("winlog", n_records=6000, n_queries=5)

QUERIES = [
    ("narrow recent range",
     "SELECT COUNT(*) FROM t WHERE event_id >= 5700"),
    ("half range",
     "SELECT COUNT(*) FROM t WHERE event_id >= 3000"),
    ("range + keyword",
     "SELECT COUNT(*) FROM t WHERE event_id < 600 "
     "AND info LIKE '%evt000%'"),
    ("unclustered equality",
     "SELECT COUNT(*) FROM t WHERE component = 'WuaEng'"),
]


def test_ablation_zonemaps(benchmark, tmp_path, results_dir):
    from repro.server import CiaoServer
    from repro.client import SimulatedClient

    runner = EndToEndRunner(PARAMS["config"], tmp_path)

    def experiment():
        server = CiaoServer(tmp_path / "zm")
        client = SimulatedClient("c", plan=None,
                                 chunk_size=PARAMS["config"].chunk_size)
        for chunk in client.process(iter(runner.raw_lines)):
            server.ingest(chunk)
        server.finalize_loading()
        rows = []
        for name, sql in QUERIES:
            result = server.query(sql)
            rows.append(
                (
                    name,
                    result.scalar(),
                    result.stats.row_groups_total,
                    result.stats.row_groups_pruned_by_zonemap,
                    result.stats.rows_examined,
                    result.wall_seconds,
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    emit_table(
        "ablation_zonemaps",
        ["query", "count", "row groups", "pruned", "rows examined",
         "time (s)"],
        rows, results_dir, title="Zone-map ablation",
    )

    by_name = {row[0]: row for row in rows}
    total_rows = PARAMS["config"].records
    narrow = by_name["narrow recent range"]
    # The clustered narrow range prunes almost every group...
    assert narrow[3] >= narrow[2] - 2
    assert narrow[4] < total_rows * 0.2
    # ...while the unclustered equality cannot prune at all.
    assert by_name["unclustered equality"][3] == 0
