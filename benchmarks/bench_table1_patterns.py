"""Table I — supported predicates, their pattern strings, and match cost.

Not an evaluation figure in the paper, but the contract everything rests
on: this bench prints the compiled pattern string for each supported
predicate family and measures raw-match throughput per family on real
generated records.
"""

import time

from conftest import run_once

from repro.bench import emit_table
from repro.core import (
    compile_predicate,
    exact,
    key_present,
    key_value,
    prefix,
    substring,
    suffix,
)
from repro.data import make_generator
from repro.rawjson import dump_record

PREDICATES = [
    ("exact string match", exact("user_id", "user_00000")),
    ("substring match", substring("text", "tasty000")),
    ("prefix match", prefix("date", "2016-")),
    ("suffix match", suffix("date", "-28")),
    ("key-presence match", key_present("useful")),
    ("key-value match", key_value("stars", 5)),
]


def test_table1_patterns_and_throughput(benchmark, results_dir):
    gen = make_generator("yelp", 20210223)
    records = [dump_record(r) for r in gen.generate(3000)]

    def experiment():
        rows = []
        for family, predicate in PREDICATES:
            spec = compile_predicate(predicate)
            start = time.perf_counter()
            hits = sum(1 for raw in records if spec.match(raw))
            elapsed = time.perf_counter() - start
            rows.append(
                (
                    family,
                    predicate.sql(),
                    " + ".join(repr(p) for p in spec.patterns),
                    hits / len(records),
                    len(records) / elapsed / 1e6,
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    emit_table(
        "table1_patterns",
        ["family", "SQL predicate", "pattern string(s)", "hit rate",
         "M records/s"],
        rows, results_dir, title="Table I",
    )

    throughputs = [r[4] for r in rows]
    # Raw matching must be fast — this is what makes client-side
    # evaluation viable on weak devices (≥ 0.2M records/s even here).
    assert min(throughputs) > 0.2
