# ciaolint: module-role=protocol
"""Fixture: the pro_bad decode with a checked cursor."""


class DecodeError(ValueError):
    pass


def decode(buf, pos, n):
    end = pos + n
    if end > len(buf):
        raise DecodeError("truncated payload")
    return buf[pos:end]
