"""Property-based roundtrip tests for storage encodings and pages."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import ColumnType, Encoding, read_page, write_page
from repro.storage.encodings import decode, encode

TYPED_VALUES = {
    ColumnType.STRING: st.text(max_size=30),
    ColumnType.INT64: st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    ColumnType.FLOAT64: st.floats(allow_nan=False, width=64),
    ColumnType.BOOL: st.booleans(),
    ColumnType.JSON: st.text(max_size=30),
}


@st.composite
def typed_value_lists(draw):
    column_type = draw(st.sampled_from(sorted(TYPED_VALUES, key=str)))
    values = draw(st.lists(TYPED_VALUES[column_type], max_size=60))
    return column_type, values


@given(typed_value_lists(), st.sampled_from(sorted(Encoding, key=str)))
@settings(max_examples=300)
def test_encoding_roundtrip(typed, encoding):
    column_type, values = typed
    payload = encode(values, column_type, encoding)
    assert decode(payload, len(values), column_type, encoding) == values


@st.composite
def nullable_typed_lists(draw):
    column_type = draw(st.sampled_from(sorted(TYPED_VALUES, key=str)))
    values = draw(
        st.lists(
            st.one_of(st.none(), TYPED_VALUES[column_type]), max_size=60
        )
    )
    return column_type, values


@given(nullable_typed_lists())
@settings(max_examples=300)
def test_page_roundtrip_with_nulls(typed):
    column_type, values = typed
    page, stats = write_page(values, column_type)
    assert read_page(page, column_type) == values
    assert stats.row_count == len(values)
    assert stats.null_count == sum(1 for v in values if v is None)


@given(nullable_typed_lists(),
       st.sampled_from(sorted(Encoding, key=str)))
@settings(max_examples=200)
def test_page_roundtrip_forced_encodings(typed, encoding):
    column_type, values = typed
    page, _ = write_page(values, column_type, encoding=encoding)
    assert read_page(page, column_type) == values


@given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1,
                max_size=60))
@settings(max_examples=200)
def test_page_stats_min_max(values):
    _, stats = write_page(values, ColumnType.INT64)
    assert stats.min_value == min(values)
    assert stats.max_value == max(values)
