"""Unit tests for zone-map pruning."""

import pytest

from repro.engine import Executor, Catalog, TableEntry, parse_sql
from repro.engine.zonemaps import _prefix_upper_bound, expr_prunes_group
from repro.storage import ParquetLiteWriter, infer_schema
from repro.storage.metadata import ColumnChunkMeta, RowGroupMeta
from repro.storage.pages import PageStats


def group_with(column: str, minimum, maximum, nulls=0, rows=10):
    meta = RowGroupMeta(row_count=rows)
    meta.columns[column] = ColumnChunkMeta(
        offset=0, length=0,
        stats=PageStats(rows, nulls, minimum, maximum),
    )
    return meta


def where(sql_fragment: str):
    return parse_sql(f"SELECT * FROM t WHERE {sql_fragment}").where


class TestComparisons:
    @pytest.mark.parametrize(
        "fragment,minimum,maximum,prunes",
        [
            ("x = 5", 10, 20, True),
            ("x = 25", 10, 20, True),
            ("x = 15", 10, 20, False),
            ("x = 10", 10, 20, False),
            ("x < 10", 10, 20, True),
            ("x < 11", 10, 20, False),
            ("x <= 9", 10, 20, True),
            ("x <= 10", 10, 20, False),
            ("x > 20", 10, 20, True),
            ("x > 19", 10, 20, False),
            ("x >= 21", 10, 20, True),
            ("x >= 20", 10, 20, False),
            ("x != 15", 10, 20, False),
        ],
    )
    def test_numeric_bounds(self, fragment, minimum, maximum, prunes):
        meta = group_with("x", minimum, maximum)
        assert expr_prunes_group(where(fragment), meta) is prunes

    def test_string_equality(self):
        meta = group_with("s", "apple", "melon")
        assert expr_prunes_group(where("s = 'zebra'"), meta)
        assert not expr_prunes_group(where("s = 'grape'"), meta)

    def test_type_mismatch_never_prunes(self):
        meta = group_with("x", 10, 20)
        assert not expr_prunes_group(where("x = 'ten'"), meta)

    def test_bool_never_prunes(self):
        meta = group_with("b", False, True)
        assert not expr_prunes_group(where("b = true"), meta)

    def test_missing_column_never_prunes(self):
        meta = group_with("x", 10, 20)
        assert not expr_prunes_group(where("y = 5"), meta)

    def test_all_null_group_prunes_comparisons(self):
        meta = group_with("x", None, None, nulls=10)
        assert expr_prunes_group(where("x = 5"), meta)

    def test_some_null_without_stats_does_not_prune(self):
        meta = group_with("x", None, None, nulls=4)
        assert not expr_prunes_group(where("x = 5"), meta)


class TestNullChecks:
    def test_is_null_prunes_when_no_nulls(self):
        meta = group_with("x", 1, 2, nulls=0)
        assert expr_prunes_group(where("x IS NULL"), meta)
        meta2 = group_with("x", 1, 2, nulls=1)
        assert not expr_prunes_group(where("x IS NULL"), meta2)

    def test_is_not_null_prunes_all_null_groups(self):
        meta = group_with("x", None, None, nulls=10)
        assert expr_prunes_group(where("x IS NOT NULL"), meta)


class TestLikePrefix:
    def test_prefix_below_range(self):
        meta = group_with("s", "m-100", "m-200")
        assert expr_prunes_group(where("s LIKE 'z%'"), meta)

    def test_prefix_above_range(self):
        meta = group_with("s", "m-100", "m-200")
        assert expr_prunes_group(where("s LIKE 'a%'"), meta)

    def test_prefix_inside_range(self):
        meta = group_with("s", "m-100", "m-200")
        assert not expr_prunes_group(where("s LIKE 'm-1%'"), meta)

    def test_substring_patterns_never_prune(self):
        meta = group_with("s", "aaa", "bbb")
        assert not expr_prunes_group(where("s LIKE '%zzz%'"), meta)

    def test_prefix_upper_bound(self):
        assert _prefix_upper_bound("abc") == "abd"
        assert _prefix_upper_bound("a" + chr(0x10FFFF)) == "b"
        assert _prefix_upper_bound(chr(0x10FFFF)) is None


class TestBooleanStructure:
    def test_conjunction_prunes_if_any_factor_does(self):
        meta = group_with("x", 10, 20)
        assert expr_prunes_group(where("x = 99 AND x > 0"), meta)

    def test_disjunction_needs_every_arm(self):
        meta = group_with("x", 10, 20)
        assert expr_prunes_group(where("x = 99 OR x = 88"), meta)
        assert not expr_prunes_group(where("x = 99 OR x = 15"), meta)

    def test_not_never_prunes(self):
        meta = group_with("x", 10, 20)
        assert not expr_prunes_group(where("NOT x = 99"), meta)


class TestEndToEnd:
    def test_range_query_prunes_clustered_groups(self, tmp_path):
        rows = [{"seq": i, "v": f"x{i}"} for i in range(100)]
        path = tmp_path / "t.pql"
        with ParquetLiteWriter(path, infer_schema(rows)) as writer:
            for start in range(0, 100, 20):
                writer.write_row_group(rows[start:start + 20])
        catalog = Catalog()
        catalog.register(TableEntry(name="t", parquet_paths=[path]))
        executor = Executor(catalog)

        result = executor.execute("SELECT COUNT(*) FROM t WHERE seq >= 80")
        assert result.scalar() == 20
        assert result.stats.row_groups_pruned_by_zonemap == 4
        assert result.stats.tuples_pruned_by_zonemap == 80
        assert result.stats.rows_examined == 20
        assert result.plan_info.uses_zonemaps

    def test_unclustered_column_prunes_nothing_but_stays_exact(
            self, tmp_path):
        rows = [{"seq": (i * 37) % 100} for i in range(100)]
        path = tmp_path / "t.pql"
        with ParquetLiteWriter(path, infer_schema(rows)) as writer:
            for start in range(0, 100, 20):
                writer.write_row_group(rows[start:start + 20])
        catalog = Catalog()
        catalog.register(TableEntry(name="t", parquet_paths=[path]))
        executor = Executor(catalog)
        result = executor.execute("SELECT COUNT(*) FROM t WHERE seq >= 80")
        assert result.scalar() == 20
        assert result.stats.row_groups_pruned_by_zonemap == 0
