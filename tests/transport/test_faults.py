"""Chaos harness: seeded fault plans, FaultyChannel, recv deadlines."""

import socket as socketlib

import pytest

from repro.transport import (
    ChannelTimeout,
    FaultEvent,
    FaultPlan,
    FaultyChannel,
    OpCounter,
    SocketChannel,
    TransportError,
    faulty_dialer,
    socket_pair,
)
from repro.transport.faults import FAULT_KINDS, MAX_STALL_SECONDS


class TestFaultEvent:
    def test_valid_event(self):
        event = FaultEvent(op=3, kind="stall", magnitude=0.5)
        assert event.op == 3

    @pytest.mark.parametrize("kwargs", [
        {"op": -1, "kind": "drop"},
        {"op": 0, "kind": "gremlin"},
        {"op": 0, "kind": "drop", "magnitude": 1.0},
        {"op": 0, "kind": "drop", "magnitude": -0.1},
    ])
    def test_bad_event_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultEvent(**kwargs)


class TestFaultPlan:
    def test_events_sorted_and_indexed(self):
        plan = FaultPlan([
            FaultEvent(op=5, kind="drop"),
            FaultEvent(op=1, kind="stall"),
        ], seed=0)
        assert [e.op for e in plan.events] == [1, 5]
        assert plan.for_op(5).kind == "drop"
        assert plan.for_op(2) is None
        assert len(plan) == 2

    def test_duplicate_op_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault"):
            FaultPlan([
                FaultEvent(op=1, kind="drop"),
                FaultEvent(op=1, kind="stall"),
            ], seed=0)

    def test_seed_is_mandatory(self):
        with pytest.raises(ValueError, match="replayable"):
            FaultPlan([], seed=None)

    def test_generate_is_a_pure_function_of_args(self):
        a = FaultPlan.generate(seed=7, n_ops=200, fault_rate=0.3)
        b = FaultPlan.generate(seed=7, n_ops=200, fault_rate=0.3)
        assert a.events == b.events
        assert len(a) > 0

    def test_generate_different_seeds_differ(self):
        a = FaultPlan.generate(seed=1, n_ops=200, fault_rate=0.3)
        b = FaultPlan.generate(seed=2, n_ops=200, fault_rate=0.3)
        assert a.events != b.events

    def test_generate_zero_rate_is_empty(self):
        assert len(FaultPlan.generate(seed=0, fault_rate=0.0)) == 0

    def test_generate_validates_rate_and_kinds(self):
        with pytest.raises(ValueError, match="fault_rate"):
            FaultPlan.generate(seed=0, fault_rate=1.5)
        with pytest.raises(ValueError, match="gremlin"):
            FaultPlan.generate(seed=0, kinds=("gremlin",))


def plan_for(op, kind, magnitude=0.0):
    return FaultPlan([FaultEvent(op=op, kind=kind, magnitude=magnitude)],
                     seed=0)


class TestFaultyChannel:
    def test_unfaulted_ops_pass_through(self):
        a, b = socket_pair()
        faulty = FaultyChannel(a, FaultPlan([], seed=0))
        faulty.send(b"hello")
        assert b.receive_wait(5.0) == b"hello"
        assert faulty.injected == {kind: 0 for kind in FAULT_KINDS}
        a.close()
        b.close()

    def test_disconnect_kills_the_transport(self):
        a, b = socket_pair()
        faulty = FaultyChannel(a, plan_for(0, "disconnect"))
        with pytest.raises(TransportError, match="injected disconnect"):
            faulty.send(b"doomed")
        assert faulty.injected["disconnect"] == 1
        with pytest.raises(TransportError):
            a.send(b"after")  # the inner channel really died
        b.close()

    def test_stall_delays_then_delivers(self):
        slept = []
        a, b = socket_pair()
        faulty = FaultyChannel(a, plan_for(0, "stall", magnitude=0.5),
                               sleep=slept.append)
        faulty.send(b"late")
        assert slept == [pytest.approx(0.5 * MAX_STALL_SECONDS)]
        assert b.receive_wait(5.0) == b"late"
        a.close()
        b.close()

    def test_drop_never_reaches_the_peer(self):
        a, b = socket_pair()
        faulty = FaultyChannel(a, plan_for(0, "drop"))
        faulty.send(b"lost")
        faulty.send(b"kept")
        assert b.receive_wait(5.0) == b"kept"
        assert b.receive() is None
        assert faulty.stats.messages_dropped == 1
        a.close()
        b.close()

    def test_truncate_delivers_a_prefix(self):
        a, b = socket_pair()
        faulty = FaultyChannel(a, plan_for(0, "truncate", magnitude=0.5))
        faulty.send(b"0123456789")
        assert b.receive_wait(5.0) == b"01234"
        a.close()
        b.close()

    def test_corrupt_flips_exactly_one_byte(self):
        a, b = socket_pair()
        faulty = FaultyChannel(a, plan_for(0, "corrupt", magnitude=0.5))
        payload = b"0123456789"
        faulty.send(payload)
        got = b.receive_wait(5.0)
        assert len(got) == len(payload)
        diffs = [i for i, (x, y) in enumerate(zip(payload, got)) if x != y]
        assert len(diffs) == 1
        a.close()
        b.close()


class TestFaultyDialer:
    def test_counter_spans_reconnects(self):
        # Fault scheduled at op 1: the first dial's send is clean, the
        # second dial's first send -- op 1 on the shared counter --
        # hits it.  A per-channel counter would restart at 0 and miss.
        plan = plan_for(1, "disconnect")
        pairs = []

        def dial():
            a, b = socket_pair()
            pairs.append((a, b))
            return a

        factory, counter = faulty_dialer(dial, plan)
        first = factory()
        first.send(b"ok")
        second = factory()
        with pytest.raises(TransportError):
            second.send(b"doomed")
        assert counter.value == 2
        for a, b in pairs:
            a.close()
            b.close()

    def test_explicit_counter_is_shared(self):
        counter = OpCounter(start=5)
        factory, shared = faulty_dialer(
            lambda: socket_pair()[0], FaultPlan([], seed=0),
            counter=counter,
        )
        assert shared is counter


class TestRecvDeadline:
    def _pair(self, **kwargs):
        raw_a, raw_b = socketlib.socketpair()
        return SocketChannel(raw_a, **kwargs), SocketChannel(raw_b)

    def test_silent_peer_trips_the_deadline(self):
        a, b = self._pair(recv_deadline=0.05)
        with pytest.raises(ChannelTimeout, match="recv_deadline"):
            a.receive_wait(5.0)
        a.close()
        b.close()

    def test_short_poll_returns_none_below_deadline(self):
        a, b = self._pair(recv_deadline=5.0)
        assert a.receive_wait(0.01) is None
        a.close()
        b.close()

    def test_traffic_satisfies_the_deadline(self):
        a, b = self._pair(recv_deadline=5.0)
        b.send(b"alive")
        assert a.receive_wait(1.0) == b"alive"
        a.close()
        b.close()

    def test_nonpositive_deadline_rejected(self):
        raw_a, raw_b = socketlib.socketpair()
        try:
            with pytest.raises(ValueError, match="recv_deadline"):
                SocketChannel(raw_a, recv_deadline=0.0)
        finally:
            raw_a.close()
            raw_b.close()
