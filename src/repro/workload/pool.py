"""Predicate pools: the candidate clauses a workload draws from.

Paper §VII-C: "we build a predicate pool and randomly draw the predicates
from the pool to build each query's conjunctive predicates".  A pool is an
ordered list of distinct clauses; order matters because skewed selection
assigns rank-based probabilities.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..core.predicates import Clause
from .templates import PredicateTemplate, templates_for


class PredicatePool:
    """An ordered pool of candidate clauses for one dataset.

    The pool's iteration order defines predicate *rank* for Zipfian query
    generation: rank 0 is the most likely to be drawn into a query.  The
    order is shuffled once at construction (deterministically from the
    seed), so rank is independent of which template a clause came from.
    """

    def __init__(self, dataset: str, clauses: Sequence[Clause]):
        if not clauses:
            raise ValueError("a predicate pool cannot be empty")
        if len(set(clauses)) != len(clauses):
            raise ValueError("pool clauses must be distinct")
        self.dataset = dataset
        self._clauses = list(clauses)

    @classmethod
    def from_templates(cls, dataset: str,
                       rng: Optional[random.Random] = None,
                       max_per_template: Optional[int] = None,
                       ) -> "PredicatePool":
        """Expand the dataset's Table II templates into a pool.

        ``max_per_template`` truncates large templates (the 100-candidate
        integer templates) to keep micro-benchmark pools small; the
        end-to-end experiments use the full expansion.
        """
        clauses: List[Clause] = []
        for template in templates_for(dataset):
            candidates = template.candidates()
            if max_per_template is not None:
                candidates = candidates[:max_per_template]
            clauses.extend(candidates)
        if rng is not None:
            rng.shuffle(clauses)
        return cls(dataset, clauses)

    # ------------------------------------------------------------------
    @property
    def clauses(self) -> List[Clause]:
        """The pool contents in rank order (copy-safe view)."""
        return list(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __getitem__(self, rank: int) -> Clause:
        return self._clauses[rank]

    def __iter__(self):
        return iter(self._clauses)

    def __contains__(self, clause: Clause) -> bool:
        return clause in set(self._clauses)

    def rank_of(self, clause: Clause) -> int:
        """Rank (draw-probability order) of *clause*."""
        return self._clauses.index(clause)

    def subset(self, ranks: Sequence[int]) -> List[Clause]:
        """Clauses at the given ranks."""
        return [self._clauses[r] for r in ranks]
