"""The ingest ledger: exactly-once dedupe for replayed CHUNKS batches.

Retrying clients replay whole batches — a lost ``INGEST_ACK`` is
indistinguishable from a lost ``CHUNKS``, so after a reconnect the
client re-sends everything the server has not provably applied.  The
ledger makes that replay safe: each batch carries a client-supplied
monotonic sequence number per ``(client_id, source_id)`` stream, and
the server admits a batch exactly when it is the next contiguous
number.  Anything at or below the watermark is a duplicate (already
applied — acknowledge, do not re-ingest); anything above ``last + 1``
is a protocol violation (the client skipped a batch) and fails loudly.

The ledger itself is in-memory state; durability comes from the
manifest (:mod:`repro.recovery.manifest`), which snapshots the ledger
at each checkpoint so a recovered server resumes dedupe from the last
*durable* watermark — matching exactly the data that survived.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

_Key = Tuple[str, str]


class LedgerError(RuntimeError):
    """A sequencing violation: a gap in a client's batch stream."""


class IngestLedger:
    """Last contiguous applied sequence per ``(client_id, source_id)``.

    Not self-locking: the server mutates it under its ingest lock, in
    the same critical section as the ingest it accounts, so "admitted"
    and "applied" can never disagree.
    """

    def __init__(self) -> None:
        self._last: Dict[_Key, int] = {}

    def last(self, client_id: str, source_id: str) -> int:
        """The stream's watermark; ``0`` before any batch applied."""
        return self._last.get((client_id, source_id), 0)

    def admit(self, client_id: str, source_id: str, seq: int) -> bool:
        """Whether batch *seq* should be applied.

        ``True`` — it is the next contiguous batch; the caller must
        ingest it and then :meth:`advance`.  ``False`` — a duplicate of
        an already-applied batch; acknowledge without re-ingesting.
        Raises :class:`LedgerError` on a gap.
        """
        if seq < 1:
            raise LedgerError(
                f"sequence numbers start at 1, got {seq}"
            )
        last = self.last(client_id, source_id)
        if seq <= last:
            return False
        if seq != last + 1:
            raise LedgerError(
                f"stream ({client_id!r}, {source_id!r}) jumped from "
                f"seq {last} to {seq}; batches must be contiguous"
            )
        return True

    def advance(self, client_id: str, source_id: str, seq: int) -> None:
        """Record batch *seq* as applied (must follow an admit)."""
        last = self.last(client_id, source_id)
        if seq != last + 1:
            raise LedgerError(
                f"cannot advance ({client_id!r}, {source_id!r}) to "
                f"{seq}: watermark is {last}"
            )
        self._last[(client_id, source_id)] = seq

    def to_records(self) -> List[List[object]]:
        """JSON-safe snapshot: sorted ``[client_id, source_id, seq]``."""
        return [
            [client, source, seq]
            for (client, source), seq in sorted(self._last.items())
        ]

    @classmethod
    def from_records(cls, records: Sequence[Sequence[object]]
                     ) -> "IngestLedger":
        """Rebuild a ledger from :meth:`to_records` output."""
        ledger = cls()
        for record in records:
            if len(record) != 3:
                raise LedgerError(
                    f"ledger records are [client, source, seq] triples, "
                    f"got {record!r}"
                )
            client, source, seq = record
            ledger._last[(str(client), str(source))] = int(seq)
        return ledger

    def snapshot(self) -> Dict[_Key, int]:
        """A plain-dict copy of the watermarks."""
        return dict(self._last)

    def __len__(self) -> int:
        return len(self._last)
