"""Review analytics: richer SQL over a partially loaded store.

Beyond the paper's COUNT(*) template, the bundled engine runs projections,
aggregates, IN-lists, LIKE anchors, and NULL checks — including queries
that were *not* anticipated by the pushdown plan and therefore fall back
to scanning the raw JSON sideline just in time.  This example loads a
synthetic Yelp stream through a `CiaoSession` under a plan tuned for
star/keyword dashboards, then runs a mix of covered and uncovered
analytics.

Run:  python examples/review_analytics.py
"""

from repro.api import (
    Budget,
    CiaoSession,
    DeploymentConfig,
    Query,
    Workload,
    clause,
    key_value,
    prefix,
    substring,
)

QUERIES = [
    # Covered by the pushdown plan (skipping engages):
    ("5-star volume",
     "SELECT COUNT(*) FROM reviews WHERE stars = 5"),
    ("5-star tasty volume",
     "SELECT COUNT(*) FROM reviews "
     "WHERE stars = 5 AND text LIKE '%tasty000%'"),
    ("2019 5-star feedback",
     "SELECT AVG(useful), MAX(funny) FROM reviews "
     "WHERE stars = 5 AND date LIKE '2019-%'"),
    # Not anticipated by the plan (sideline scanned, still exact):
    ("1-star volume",
     "SELECT COUNT(*) FROM reviews WHERE stars = 1"),
    ("low-feedback reviews",
     "SELECT COUNT(*) FROM reviews WHERE useful < 1 AND funny < 1"),
    ("sample rows",
     "SELECT user_id, stars FROM reviews "
     "WHERE stars = 5 AND text LIKE '%tasty000%' LIMIT 3"),
]


def main() -> None:
    five_stars = clause(key_value("stars", 5))
    tasty = clause(substring("text", "tasty000"))
    recent = clause(prefix("date", "2019-"))
    workload = Workload(
        (
            Query((five_stars,), name="stars"),
            Query((five_stars, tasty), name="stars+kw"),
            Query((five_stars, recent), name="stars+recent"),
        ),
        dataset="yelp",
    )

    config = DeploymentConfig(table_name="reviews")
    with CiaoSession(workload, source="yelp", seed=31,
                     config=config) as session:
        session.plan(Budget(2.0))
        report = session.load(n_records=12_000).result()
        print(
            f"Loaded {report.loaded}/{report.received} reviews "
            f"(ratio {report.loading_ratio:.2f}), "
            f"{report.sidelined} sidelined as raw JSON\n"
        )

        for name, sql in QUERIES:
            result = session.query(sql)
            path = (
                "skipping" if result.plan_info.used_skipping
                else "full scan + sideline"
                if result.plan_info.scans_sideline else "full scan"
            )
            if len(result.rows) == 1 and len(result.rows[0]) >= 1:
                payload = ", ".join(
                    f"{k}={v if not isinstance(v, float) else round(v, 2)}"
                    for k, v in result.rows[0].items()
                )
            else:
                payload = f"{len(result.rows)} rows"
            print(f"  {name:<22} [{path:<22}] {payload}")


if __name__ == "__main__":
    main()
