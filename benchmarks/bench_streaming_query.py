"""Query-during-load latency and work-stealing vs round-robin dispatch.

Two claims are measured:

1. **Streaming exactness + latency** — a sharded server answers
   ``COUNT(*)``-style queries *mid-load* from its loaded-so-far snapshot.
   At several ingest-progress points the bench quiesces, queries, and
   asserts the answers equal serial ingest of exactly the chunks loaded so
   far (and, after finalize, of the whole stream).  Reported: query
   latency at each progress point, plus the load accounting including the
   ``malformed`` counter (quarantined-raw records).
2. **Work-stealing speedup** — the same skewed chunk stream (every
   ``N_SHARDS``-th chunk is ~15× bigger, so round-robin pins all the big
   chunks to shard 0 and serializes on it) ingested under
   ``dispatch="round-robin"`` vs ``dispatch="work-stealing"``.  The ≥1.3×
   assertion is *core-gated* like ``bench_parallel_ingest.py``: on fewer
   than 2 usable cores both dispatchers serialize and the bench only
   guards a no-pathological-overhead floor.  Override with
   ``REPRO_BENCH_MIN_STEAL_SPEEDUP`` (a float) to pin it in CI.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_streaming_query.py``
(set ``REPRO_BENCH_SMOKE=1`` for a <60 s smoke configuration).
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.bench import emit, emit_json

#: Shared machine-readable payload; both tests write into it so the JSON
#: document accretes whichever halves of the bench actually ran.
_PAYLOAD = {}
from repro.rawjson import JsonChunk, dump_record
from repro.server import CiaoServer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_SHARDS = 4
SEED = 20260727

# Streaming-query stream: uniform chunks, queried at progress points.
STREAM_CHUNKS = 8 if SMOKE else 20
STREAM_CHUNK_RECORDS = 120 if SMOKE else 250
#: One malformed record is planted per chunk to exercise (and surface)
#: the quarantine counter end to end.
MALFORMED_PER_CHUNK = 1

# Skewed stream: every N_SHARDS-th chunk is big.
SKEW_ROUNDS = 4 if SMOKE else 8
SKEW_BIG = 450 if SMOKE else 1200
SKEW_SMALL = 30 if SMOKE else 80

QUERIES = [
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(*) FROM t WHERE i = 2",
    "SELECT SUM(v) FROM t WHERE i = 0",
]


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _min_steal_speedup() -> float:
    override = os.environ.get("REPRO_BENCH_MIN_STEAL_SPEEDUP")
    if override:
        return float(override)
    if _effective_cores() >= 2:
        return 1.3
    # Single core: both dispatchers serialize the same total work; only
    # guard against pathological dispatch overhead.
    return 0.5


def _record(cid: int, k: int) -> str:
    return dump_record({"i": (cid * 7 + k) % 5, "v": cid * 10000 + k,
                        "tag": f"t{k % 3}"})


def _stream_chunks():
    chunks = []
    for cid in range(STREAM_CHUNKS):
        records = [_record(cid, k) for k in range(STREAM_CHUNK_RECORDS)]
        for m in range(MALFORMED_PER_CHUNK):
            records[7 + m] = '{"i": 2, "v": broken'
        chunks.append(JsonChunk(cid, records))
    return chunks


def _skewed_chunks():
    chunks = []
    cid = 0
    for _ in range(SKEW_ROUNDS):
        for pos in range(N_SHARDS):
            size = SKEW_BIG if pos == 0 else SKEW_SMALL
            chunks.append(
                JsonChunk(cid, [_record(cid, k) for k in range(size)])
            )
            cid += 1
    return chunks


def _answers(server):
    return [server.query(sql).scalar() for sql in QUERIES]


def _serial_reference(tmp_path, chunks, tag):
    server = CiaoServer(tmp_path / tag)
    for chunk in chunks:
        server.ingest(chunk)
    server.finalize_loading()
    return server


# ----------------------------------------------------------------------
# 1. Streaming queries: exactness + latency vs ingest progress
# ----------------------------------------------------------------------
def test_streaming_query_latency_and_exactness(benchmark, tmp_path,
                                               results_dir):
    chunks = _stream_chunks()
    checkpoints = [len(chunks) // 4, len(chunks) // 2,
                   3 * len(chunks) // 4, len(chunks)]

    def experiment():
        server = CiaoServer(tmp_path / "stream", n_shards=N_SHARDS,
                            shard_mode="process")
        rows = []
        done = 0
        for point in checkpoints:
            for chunk in chunks[done:point]:
                server.ingest(chunk)
            done = point
            server.quiesce()
            start = time.perf_counter()
            got = _answers(server)
            latency = time.perf_counter() - start
            reference = _serial_reference(
                tmp_path, chunks[:point], f"ref{point}"
            )
            assert got == _answers(reference), (
                f"mid-load answers diverged at {point} chunks"
            )
            rows.append((point, server.load_summary.chunks, latency))
        summary = server.finalize_loading()
        final = _answers(server)
        assert final == _answers(
            _serial_reference(tmp_path, chunks, "ref-final")
        )
        return rows, summary

    rows, summary = run_once(benchmark, experiment)
    lines = [
        f"streaming queries during a {len(chunks)}-chunk sharded load "
        f"({N_SHARDS} shards, {STREAM_CHUNK_RECORDS} records/chunk):",
        "  progress   covered   query latency",
    ]
    for point, covered, latency in rows:
        lines.append(
            f"  {point:4d} sent  {covered:4d} chk   {latency * 1e3:8.2f} ms"
            f"   (answers == serial ingest of prefix)"
        )
    lines += [
        f"  load accounting: received={summary.received} "
        f"loaded={summary.loaded} sidelined={summary.sidelined} "
        f"malformed={summary.malformed} (quarantined raw)",
    ]
    emit("streaming_query_progress", "\n".join(lines), results_dir)
    _PAYLOAD["streaming_progress"] = {
        "config": {
            "n_shards": N_SHARDS,
            "stream_chunks": STREAM_CHUNKS,
            "records_per_chunk": STREAM_CHUNK_RECORDS,
            "smoke": SMOKE,
        },
        "checkpoints": [
            {"chunks_sent": point, "chunks_covered": covered,
             "query_latency_ms": latency * 1e3}
            for point, covered, latency in rows
        ],
        "accounting": {
            "received": summary.received,
            "loaded": summary.loaded,
            "sidelined": summary.sidelined,
            "malformed": summary.malformed,
        },
        "answers_match_serial_prefix": True,
    }
    emit_json("BENCH_streaming_query", _PAYLOAD, results_dir)
    assert summary.malformed == STREAM_CHUNKS * MALFORMED_PER_CHUNK
    assert summary.received == STREAM_CHUNKS * STREAM_CHUNK_RECORDS


# ----------------------------------------------------------------------
# 2. Work-stealing vs round-robin on a skewed stream
# ----------------------------------------------------------------------
def _ingest(tmp_path, tag, chunks, dispatch):
    server = CiaoServer(tmp_path / tag, n_shards=N_SHARDS,
                        shard_mode="process", dispatch=dispatch)
    start = time.perf_counter()
    for chunk in chunks:
        server.ingest(chunk)
    summary = server.finalize_loading()
    elapsed = time.perf_counter() - start
    return summary, elapsed


def test_work_stealing_speedup_on_skewed_chunks(benchmark, tmp_path,
                                                results_dir):
    chunks = _skewed_chunks()

    def experiment():
        rr_summary, rr_seconds = _ingest(
            tmp_path, "round-robin", chunks, "round-robin"
        )
        ws_summary, ws_seconds = _ingest(
            tmp_path, "work-stealing", chunks, "work-stealing"
        )
        return rr_summary, rr_seconds, ws_summary, ws_seconds

    rr_summary, rr_seconds, ws_summary, ws_seconds = run_once(
        benchmark, experiment
    )
    speedup = rr_seconds / ws_seconds
    floor = _min_steal_speedup()
    cores = _effective_cores()
    n_big = SKEW_ROUNDS
    lines = [
        f"work-stealing vs round-robin, skewed stream "
        f"({len(chunks)} chunks; every {N_SHARDS}th is {SKEW_BIG} records "
        f"vs {SKEW_SMALL} — round-robin pins all {n_big} big chunks to "
        f"shard 0):",
        f"  effective cores : {cores}",
        f"  round-robin     : {rr_seconds:8.2f} s",
        f"  work-stealing   : {ws_seconds:8.2f} s",
        f"  speedup         : {speedup:8.2f}x (floor {floor:.1f}x)",
        f"  malformed       : {ws_summary.malformed} "
        f"(== {rr_summary.malformed} round-robin)",
    ]
    emit("streaming_query_work_stealing", "\n".join(lines), results_dir)
    _PAYLOAD["work_stealing"] = {
        "config": {
            "n_shards": N_SHARDS,
            "skew_rounds": SKEW_ROUNDS,
            "big_chunk_records": SKEW_BIG,
            "small_chunk_records": SKEW_SMALL,
            "effective_cores": cores,
            "smoke": SMOKE,
        },
        "round_robin_seconds": rr_seconds,
        "work_stealing_seconds": ws_seconds,
        "speedup": speedup,
        "speedup_floor": floor,
    }
    emit_json("BENCH_streaming_query", _PAYLOAD, results_dir)

    # Identical accounting regardless of dispatch policy.
    assert ws_summary.received == rr_summary.received
    assert ws_summary.loaded == rr_summary.loaded
    assert ws_summary.sidelined == rr_summary.sidelined
    assert ws_summary.malformed == rr_summary.malformed
    assert speedup >= floor, (
        f"work-stealing only {speedup:.2f}x over round-robin "
        f"(floor {floor:.1f}x on {cores} cores)"
    )
