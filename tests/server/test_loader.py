"""Unit tests for the client-assisted partial loader."""

import pytest

from repro.bitvec import BitVector
from repro.rawjson import JsonChunk, dump_record
from repro.server import ClientAssistedLoader
from repro.storage import JsonSideStore, ParquetLiteReader

RECORDS = [{"i": i, "name": f"u{i}"} for i in range(10)]


def chunk_with_mask(bits, chunk_id=0):
    chunk = JsonChunk(chunk_id, [dump_record(r) for r in RECORDS])
    chunk.attach(0, BitVector.from_bits(bits))
    return chunk


@pytest.fixture()
def paths(tmp_path):
    return tmp_path / "t.pql", JsonSideStore(tmp_path / "side.jsonl")


class TestPartialLoading:
    def test_mask_splits_records(self, paths):
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=True)
        bits = [1, 0, 1, 0, 0, 0, 0, 0, 0, 1]
        report = loader.ingest(chunk_with_mask(bits))
        loader.finalize()
        assert report.loaded == 3
        assert report.sidelined == 7
        with ParquetLiteReader(loader.parquet_paths[0]) as reader:
            rows = reader.read_all()
        assert [r["i"] for r in rows] == [0, 2, 9]
        assert side.record_count == 7

    def test_derived_bitvectors_restricted_to_loaded_rows(self, paths):
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=True)
        bits = [1, 0, 1, 0, 0, 0, 0, 0, 0, 1]
        loader.ingest(chunk_with_mask(bits))
        loader.finalize()
        with ParquetLiteReader(loader.parquet_paths[0]) as reader:
            derived = reader.bitvector(0, 0)
        # All three loaded rows satisfied predicate 0.
        assert derived.to_bits() == [1, 1, 1]

    def test_two_predicate_union(self, paths):
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=True)
        chunk = JsonChunk(0, [dump_record(r) for r in RECORDS])
        chunk.attach(0, BitVector.from_indices(10, [1]))
        chunk.attach(1, BitVector.from_indices(10, [8]))
        report = loader.ingest(chunk)
        loader.finalize()
        assert report.loaded == 2
        with ParquetLiteReader(loader.parquet_paths[0]) as reader:
            assert reader.bitvector(0, 0).to_bits() == [1, 0]
            assert reader.bitvector(0, 1).to_bits() == [0, 1]

    def test_partial_loading_off_loads_everything(self, paths):
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=False)
        bits = [0] * 10
        report = loader.ingest(chunk_with_mask(bits))
        loader.finalize()
        assert report.loaded == 10
        assert side.record_count == 0
        # Bit-vectors are still retained for skipping.
        with ParquetLiteReader(loader.parquet_paths[0]) as reader:
            assert reader.bitvector(0, 0).count() == 0

    def test_all_zero_mask_sidelines_whole_chunk(self, paths):
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=True)
        report = loader.ingest(chunk_with_mask([0] * 10))
        summary = loader.finalize()
        assert report.loaded == 0
        assert side.record_count == 10
        assert summary.loading_ratio == 0.0
        # No parquet file is written when nothing was loaded.
        assert loader.parquet_paths == []


class TestMalformedRecords:
    def test_malformed_selected_records_counted(self, paths):
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=True)
        chunk = JsonChunk(0, [dump_record(RECORDS[0]), "{broken"])
        chunk.attach(0, BitVector.from_bits([1, 1]))
        report = loader.ingest(chunk)
        loader.finalize()
        assert report.loaded == 1
        assert report.malformed == 1

    def test_malformed_records_quarantined_in_side_store(self, paths):
        # A selected record that fails to parse must not be dropped: its
        # raw text lands in the sideline alongside mask-rejected records.
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=True)
        chunk = JsonChunk(
            7, [dump_record(RECORDS[0]), "{broken", dump_record(RECORDS[1])]
        )
        chunk.attach(0, BitVector.from_bits([1, 1, 0]))
        report = loader.ingest(chunk)
        loader.finalize()
        assert report.received == 3
        assert report.loaded == 1
        assert report.sidelined == 1  # the mask-rejected record
        assert report.malformed == 1  # the unparseable record
        # Side store holds sidelined + malformed, in arrival order.
        assert list(side.iter_raw()) == [
            (7, "{broken"), (7, dump_record(RECORDS[1]))
        ]

    def test_counters_partition_received(self, paths):
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=True)
        records = [dump_record(RECORDS[0]), "not json", "[1, 2]",
                   dump_record(RECORDS[1]), dump_record(RECORDS[2])]
        chunk = JsonChunk(0, records)
        chunk.attach(0, BitVector.from_bits([1, 1, 1, 0, 1]))
        report = loader.ingest(chunk)
        loader.finalize()
        # "[1, 2]" parses but is not an object — also malformed.
        assert report.malformed == 2
        assert report.received == (
            report.loaded + report.sidelined + report.malformed
        )
        assert side.record_count == report.sidelined + report.malformed

    def test_derived_vectors_skip_malformed_positions(self, paths):
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=True)
        chunk = JsonChunk(
            0, [dump_record(RECORDS[0]), "{broken", dump_record(RECORDS[1])]
        )
        chunk.attach(0, BitVector.from_bits([1, 1, 1]))
        loader.ingest(chunk)
        loader.finalize()
        with ParquetLiteReader(loader.parquet_paths[0]) as reader:
            # Two loaded rows (positions 0 and 2), both valid for pred 0.
            assert reader.bitvector(0, 0).to_bits() == [1, 1]


class TestSummary:
    def test_accumulates_across_chunks(self, paths):
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=True)
        loader.ingest(chunk_with_mask([1] * 10, chunk_id=0))
        loader.ingest(chunk_with_mask([1, 0] * 5, chunk_id=1))
        summary = loader.finalize()
        assert summary.chunks == 2
        assert summary.received == 20
        assert summary.loaded == 15
        assert summary.loading_ratio == pytest.approx(0.75)
        assert len(summary.reports) == 2

    def test_source_chunk_ids_preserved(self, paths):
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=True)
        loader.ingest(chunk_with_mask([1] * 10, chunk_id=7))
        loader.finalize()
        with ParquetLiteReader(loader.parquet_paths[0]) as reader:
            assert reader.meta.row_groups[0].source_chunk_id == 7

    def test_ingest_after_finalize_rejected(self, paths):
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=True)
        loader.ingest(chunk_with_mask([1] * 10))
        loader.finalize()
        with pytest.raises(RuntimeError):
            loader.ingest(chunk_with_mask([1] * 10, chunk_id=1))

    def test_finalize_idempotent(self, paths):
        parquet, side = paths
        loader = ClientAssistedLoader(parquet, side, partial_loading=True)
        loader.ingest(chunk_with_mask([1] * 10))
        first = loader.finalize()
        second = loader.finalize()
        assert first is second
