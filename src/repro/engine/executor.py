"""Query execution entry point.

``run_plan`` drives the batch engine: the operator tree exchanges
columnar batches and rows are only materialized once, at the result
boundary.  Mid-load aggregate queries against a snapshot-mode table are
routed through the incremental snapshot cache
(:mod:`repro.engine.snapcache`), which reuses per-part partial aggregates
across successive snapshots instead of rescanning sealed parts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List

from .catalog import Catalog
from .operators import ExecutionStats, Operator
from .planner import PlanInfo, plan_query
from .sql import ParsedQuery, parse_sql


@dataclass
class QueryResult:
    """Rows plus everything the experiments measure about the run."""

    rows: List[Dict[str, Any]]
    stats: ExecutionStats
    plan_info: PlanInfo
    wall_seconds: float

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result (COUNT(*))."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(
                f"result is not scalar: {len(self.rows)} rows"
            )
        return next(iter(self.rows[0].values()))


class Executor:
    """Parse → plan → run against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def execute(self, sql: str) -> QueryResult:
        """Run one SQL statement."""
        parsed = parse_sql(sql)
        return self.execute_parsed(parsed)

    def execute_parsed(self, parsed: ParsedQuery) -> QueryResult:
        """Run an already-parsed statement.

        Aggregate queries over a table in snapshot-scan mode go through
        the incremental snapshot cache: sealed parts are immutable, so
        repeated mid-load aggregates only scan newly sealed parts plus
        the sideline delta.  Everything else plans and runs cold.
        """
        table = self.catalog.lookup(parsed.table)
        if table.in_snapshot_mode and parsed.is_aggregate:
            from .snapcache import execute_snapshot_aggregate
            return execute_snapshot_aggregate(parsed, table,
                                              table.snapshot_cache)
        return run_plan(*plan_query(parsed, table))


def run_plan(plan: Operator, info: PlanInfo) -> QueryResult:
    """Drive an operator tree to completion (batch execution)."""
    stats = ExecutionStats()
    start = time.perf_counter()
    rows: List[Dict[str, Any]] = []
    for batch in plan.batches(stats):
        rows.extend(batch.iter_rows())
    elapsed = time.perf_counter() - start
    stats.rows_emitted = len(rows)
    return QueryResult(
        rows=rows, stats=stats, plan_info=info, wall_seconds=elapsed
    )
