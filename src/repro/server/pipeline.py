"""Sharded, pipelined ingest: N loaders fed round-robin, merged at finalize.

One :class:`~repro.server.loader.ClientAssistedLoader` is strictly serial —
decode, parse, and write happen on the caller's thread, so a server draining
many client channels leaves every other core idle and the expensive JSON
parse on the critical path.  This module fans that work out (Fig. 1's server
box, scaled horizontally):

Architecture::

    submit(payload) ──round-robin──▶ shard 0 queue ─▶ worker 0 ┐
                                     shard 1 queue ─▶ worker 1 ├─ finalize()
                                     ...                       │  merges into
                                     shard N queue ─▶ worker N ┘  the catalog

* **Shard workers.**  Each worker owns a private
  :class:`ClientAssistedLoader` writing shard-local Parquet-lite parts
  (``table.shardK[.partM].pql``) and a shard-local sideline file.  Encoded
  payloads are shipped raw to the worker, which decodes them there
  (:func:`repro.client.protocol.decode_chunk` walks a zero-copy
  ``memoryview`` cursor), so the submitting thread does no per-chunk work
  beyond a queue put.
* **Round-robin assignment.**  Chunk *k* (by submission order) goes to shard
  ``k % n_shards``.  The mapping is deterministic, so a given input stream
  always produces the same shard files — the shard-equivalence tests rely
  on this.
* **Merge at finalize.**  :meth:`finalize` seals every shard loader, then
  merges the shard outputs: Parquet parts are concatenated in shard order
  into one path list for the catalog, shard sidelines are folded into the
  table's side store (and removed), and per-chunk
  :class:`~repro.server.loader.LoadReport`\\ s are re-ordered by submission
  sequence so the merged :class:`~repro.server.loader.LoadSummary` is
  identical to what serial ingest of the same stream would report.

Correctness: every record lands in exactly one shard, each shard preserves
its loader's invariants (``received == loaded + sidelined + malformed``
per chunk, malformed records quarantined raw in the sideline), and the
engine already scans a table as the union of its Parquet parts plus the
side store — so query results match serial ingest exactly; only row-group
*order* across files differs (grouped by shard instead of interleaved),
which no aggregate observes.

Execution modes: ``mode="process"`` (default) forks one worker process per
shard — under CPython's GIL this is the only way decode+parse actually runs
in parallel; ``mode="thread"`` runs workers as daemon threads in-process,
which keeps tests fast and deterministic and would parallelize on
free-threaded builds.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import traceback
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..client.protocol import decode_chunk
from ..rawjson.chunks import JsonChunk
from ..storage.jsonstore import JsonSideStore
from ..storage.schema import Schema
from .loader import ClientAssistedLoader, LoadReport, LoadSummary

#: Bounded per-shard queue depth: backpressure instead of unbounded RAM.
DEFAULT_QUEUE_DEPTH = 64


class IngestPipelineError(RuntimeError):
    """One or more shard workers failed during a parallel load."""


def _run_shard(shard_id: int,
               in_queue,
               out_queue,
               parquet_path: str,
               sideline_path: str,
               partial_loading: bool,
               schema: Optional[Schema],
               required_ids: Optional[frozenset]) -> None:
    """Shard worker loop: decode + parse + write until the sentinel.

    Module-level so process mode can spawn it.  On failure the worker keeps
    draining its queue (a bounded queue with a dead consumer would deadlock
    the submitter) and reports the error at shutdown.
    """
    error: Optional[str] = None
    reports: List[Tuple[int, LoadReport]] = []
    paths: List[str] = []
    loader: Optional[ClientAssistedLoader] = None
    try:
        side = JsonSideStore(sideline_path)
        loader = ClientAssistedLoader(
            parquet_path,
            side,
            partial_loading=partial_loading,
            schema=schema,
            required_predicate_ids=required_ids,
        )
    except Exception:
        error = (
            f"shard {shard_id} failed to initialize:\n"
            f"{traceback.format_exc()}"
        )
    # The drain loop must run no matter what happened above: a bounded
    # queue with a dead consumer would block submit() forever.
    while True:
        item = in_queue.get()
        if item is None:
            break
        if error is not None:
            continue
        seq, payload = item
        try:
            if isinstance(payload, (bytes, bytearray)):
                chunk = decode_chunk(payload)
            else:
                chunk = payload
            reports.append((seq, loader.ingest(chunk)))
        except Exception:
            error = (
                f"shard {shard_id} failed on chunk #{seq}:\n"
                f"{traceback.format_exc()}"
            )
    try:
        if loader is not None:
            loader.finalize()
            paths = [str(p) for p in loader.parquet_paths]
    except Exception:
        if error is None:
            error = (
                f"shard {shard_id} failed to finalize:\n"
                f"{traceback.format_exc()}"
            )
    if error is not None:
        out_queue.put(("error", shard_id, error))
    else:
        out_queue.put(("done", shard_id, paths, reports))


class ShardedIngestPipeline:
    """Fan encoded chunks across shard loaders; merge outputs at finalize.

    Args:
        parquet_path: Base table path; shard *K* writes
            ``<stem>.shardK<suffix>`` parts next to it.
        side_store: The table's sideline store.  Shards write shard-local
            sidelines during the load; :meth:`finalize` folds them in here.
        n_shards: Worker count (1 is legal and equivalent to one loader
            behind a queue).
        partial_loading / schema / required_predicate_ids: Forwarded to
            every shard's :class:`ClientAssistedLoader`.
        mode: ``"process"`` (parallel under the GIL) or ``"thread"``.
        queue_depth: Bound of each shard's input queue (backpressure).
    """

    def __init__(self, parquet_path: str | Path,
                 side_store: JsonSideStore,
                 n_shards: int,
                 partial_loading: bool,
                 schema: Optional[Schema] = None,
                 required_predicate_ids: Optional[Sequence[int]] = None,
                 mode: str = "process",
                 queue_depth: int = DEFAULT_QUEUE_DEPTH):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if mode not in ("process", "thread"):
            raise ValueError(
                f"mode must be 'process' or 'thread', got {mode!r}"
            )
        self.parquet_path = Path(parquet_path)
        self.side_store = side_store
        self.n_shards = n_shards
        self.mode = mode
        self.summary = LoadSummary()
        self._seq = 0
        self._finalized = False
        self._shard_parquet_paths: List[List[Path]] = [[] for _ in
                                                       range(n_shards)]
        self._parquet_paths: List[Path] = []
        self._errors: List[str] = []

        required = (
            frozenset(required_predicate_ids)
            if required_predicate_ids is not None else None
        )
        side_path = side_store.path
        self._sideline_paths = [
            side_path.parent / f"{side_path.stem}.shard{i}{side_path.suffix}"
            for i in range(n_shards)
        ]
        shard_parquet = [
            self.parquet_path.parent
            / f"{self.parquet_path.stem}.shard{i}{self.parquet_path.suffix}"
            for i in range(n_shards)
        ]
        if mode == "process":
            ctx = multiprocessing.get_context("fork")
            self._out_queue = ctx.Queue()
            self._in_queues = [ctx.Queue(maxsize=queue_depth)
                               for _ in range(n_shards)]
            self._workers = [
                ctx.Process(
                    target=_run_shard,
                    args=(i, self._in_queues[i], self._out_queue,
                          str(shard_parquet[i]), str(self._sideline_paths[i]),
                          partial_loading, schema, required),
                    daemon=True,
                )
                for i in range(n_shards)
            ]
        else:
            self._out_queue = queue.Queue()
            self._in_queues = [queue.Queue(maxsize=queue_depth)
                               for _ in range(n_shards)]
            self._workers = [
                threading.Thread(
                    target=_run_shard,
                    args=(i, self._in_queues[i], self._out_queue,
                          str(shard_parquet[i]), str(self._sideline_paths[i]),
                          partial_loading, schema, required),
                    daemon=True,
                )
                for i in range(n_shards)
            ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    def submit(self, payload: Union[JsonChunk, bytes, bytearray, memoryview]
               ) -> int:
        """Enqueue one chunk (encoded or decoded); returns its sequence no.

        Encoded payloads are decoded *inside* the worker, keeping the
        submitting thread off the critical path.  Blocks when the target
        shard's queue is full (backpressure).
        """
        if self._finalized:
            raise RuntimeError("pipeline already finalized")
        if isinstance(payload, memoryview):
            payload = bytes(payload)  # queues need an owned buffer
        seq = self._seq
        self._seq += 1
        self._in_queues[seq % self.n_shards].put((seq, payload))
        return seq

    def drain_channel(self, channel) -> int:
        """Submit every payload of a channel; returns the number submitted."""
        count = 0
        for payload in channel.drain():
            self.submit(payload)
            count += 1
        return count

    # ------------------------------------------------------------------
    def finalize(self) -> LoadSummary:
        """Stop workers, merge shard outputs, and return the summary.

        Idempotent.  Raises :class:`IngestPipelineError` if any shard
        failed; shards that succeeded are still merged first so partial
        output remains inspectable.
        """
        if self._finalized:
            if self._errors:
                raise IngestPipelineError("\n".join(self._errors))
            return self.summary
        self._finalized = True
        for in_queue in self._in_queues:
            in_queue.put(None)
        ordered_reports: List[Tuple[int, LoadReport]] = []

        def handle(message) -> int:
            if message[0] == "error":
                self._errors.append(message[2])
                return message[1]
            _, shard_id, paths, reports = message
            self._shard_parquet_paths[shard_id] = [Path(p) for p in paths]
            ordered_reports.extend(reports)
            return shard_id

        # Collect one result per shard, but never hang on a worker that
        # died without posting (e.g. an OOM-killed process): poll with a
        # timeout, and when a pending worker is no longer alive give its
        # in-flight message one grace period before declaring it lost.
        pending = set(range(self.n_shards))
        while pending:
            try:
                pending.discard(handle(self._out_queue.get(timeout=0.5)))
                continue
            except queue.Empty:
                pass
            dead = [i for i in sorted(pending)
                    if not self._workers[i].is_alive()]
            if not dead:
                continue
            try:
                pending.discard(handle(self._out_queue.get(timeout=0.5)))
                continue  # a straggler message made it; keep collecting
            except queue.Empty:
                for shard_id in dead:
                    self._errors.append(
                        f"shard {shard_id} terminated without reporting "
                        f"a result"
                    )
                    pending.discard(shard_id)
        for worker in self._workers:
            worker.join()
        # Merge: parquet parts in shard order, reports in submission order,
        # shard sidelines folded into the table's store (then removed).
        self._parquet_paths = [
            path for paths in self._shard_parquet_paths for path in paths
        ]
        ordered_reports.sort(key=lambda pair: pair[0])
        for _, report in ordered_reports:
            self.summary.add(report)
        for sideline_path in self._sideline_paths:
            if sideline_path.exists():
                shard_side = JsonSideStore(sideline_path)
                self.side_store.append_pairs(shard_side.iter_raw())
                sideline_path.unlink()
        if self._errors:
            raise IngestPipelineError("\n".join(self._errors))
        return self.summary

    @property
    def parquet_paths(self) -> List[Path]:
        """All shard Parquet-lite parts, shard-major order (post-finalize)."""
        return list(self._parquet_paths)
