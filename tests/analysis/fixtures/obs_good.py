# ciaolint: module-role=server
"""Fixture: hot-path reporting via injected obs instruments."""


def ingest(chunks, metrics):
    counter = metrics.counter("loader.chunks")
    for _ in chunks:
        counter.inc()
    return counter.value
