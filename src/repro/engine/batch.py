"""Columnar batches: the unit of exchange between batch operators.

A :class:`ColumnBatch` is a set of equal-length column value lists plus a
word-level :class:`~repro.bitvec.bitvector.BitVector` **selection vector**
(``sel``): bit ``i`` set means row ``i`` is live.  Operators narrow the
selection with ``intersect_update`` instead of materializing row dicts, so
a filter over a 100k-row batch is one list comprehension and one big-int
AND rather than 100k dict constructions.

Two backings exist:

* **column-backed** (:meth:`ColumnBatch.from_columns`): decoded Parquet
  pages, shared by reference from the row-group reader's cache.
* **row-backed** (:meth:`ColumnBatch.from_rows`): parsed sideline records
  or legacy row-only operators.  Columns are gathered lazily on first
  access; with no projection applied, :meth:`iter_rows` yields the
  *original* dicts, preserving the ragged-key fidelity of raw JSON
  records (a sideline row only carries the keys it actually had).

:meth:`iter_rows` is the compatibility adapter: every batch can always be
spilled back into the historical dict-per-row stream, which is what keeps
``Operator.execute()`` working unchanged on top of the batch engine.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from ..bitvec.bitvector import BitVector

__all__ = ["BatchRowView", "ColumnBatch"]


class BatchRowView:
    """Zero-copy row cursor into a batch.

    Duck-types the one Mapping method expressions use (``get``) without
    materializing a dict per row; reposition by assigning ``index``.
    Shared by the generic ``Expr.evaluate_batch`` fallback and the
    sparse-selection residual filter.
    """

    __slots__ = ("_batch", "index")

    def __init__(self, batch: "ColumnBatch") -> None:
        self._batch = batch
        self.index = 0

    def get(self, key: str, default: Any = None) -> Any:
        value = self._batch.column(key)[self.index]
        return default if value is None else value


class ColumnBatch:
    """Equal-length column lists + a selection vector over their rows."""

    __slots__ = ("_columns", "_rows", "num_rows", "sel", "names")

    def __init__(self, columns: Dict[str, List[Any]], num_rows: int,
                 sel: Optional[BitVector] = None,
                 names: Optional[Sequence[str]] = None,
                 rows: Optional[List[Mapping[str, Any]]] = None):
        self._columns = columns
        self._rows = rows
        self.num_rows = num_rows
        self.sel = sel if sel is not None else BitVector.ones(num_rows)
        if len(self.sel) != num_rows:
            raise ValueError(
                f"selection vector covers {len(self.sel)} bits for "
                f"{num_rows} rows"
            )
        #: Materialization column order; ``None`` on row-backed batches
        #: with no projection (original dicts pass through untouched).
        self.names = list(names) if names is not None else None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, columns: Dict[str, List[Any]], num_rows: int,
                     names: Optional[Sequence[str]] = None,
                     sel: Optional[BitVector] = None) -> "ColumnBatch":
        """Batch over already-decoded column lists (the scan fast path)."""
        if names is None:
            names = list(columns)
        return cls(columns, num_rows, sel=sel, names=names)

    @classmethod
    def from_rows(cls, rows: List[Mapping[str, Any]],
                  names: Optional[Sequence[str]] = None) -> "ColumnBatch":
        """Batch over row dicts; columns are gathered lazily on demand."""
        return cls({}, len(rows), names=names, rows=list(rows))

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def column(self, name: str) -> List[Any]:
        """The full value list for *name* (all rows, selected or not).

        Missing columns read as all nulls, mirroring
        :meth:`repro.storage.rowgroup.RowGroupReader.column`; the list is
        cached so repeated expression references decode/gather once.
        """
        values = self._columns.get(name)
        if values is None:
            if self._rows is not None:
                values = [row.get(name) for row in self._rows]
            else:
                values = [None] * self.num_rows
            self._columns[name] = values
        return values

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def selected_count(self) -> int:
        """Live rows (selection-vector popcount; never a Python loop)."""
        return self.sel.count()

    def apply_mask(self, mask: BitVector) -> None:
        """Narrow the selection in place (word-level AND)."""
        self.sel.intersect_update(mask)

    def truncate_selected(self, n: int) -> "ColumnBatch":
        """Copy of this batch keeping only the first *n* selected rows."""
        indices = []
        for index in self.sel.iter_set():
            if len(indices) >= n:
                break
            indices.append(index)
        out = ColumnBatch(
            self._columns, self.num_rows,
            sel=BitVector.from_indices(self.num_rows, indices),
            names=self.names, rows=self._rows,
        )
        return out

    def project(self, names: Sequence[str]) -> "ColumnBatch":
        """Restrict materialization to *names* (shares column storage)."""
        return ColumnBatch(self._columns, self.num_rows, sel=self.sel,
                           names=names, rows=self._rows)

    def row_view(self) -> BatchRowView:
        """A repositionable Mapping-like cursor over this batch's rows."""
        return BatchRowView(self)

    # ------------------------------------------------------------------
    # Row materialization (the rows() compatibility adapter)
    # ------------------------------------------------------------------
    def iter_rows(self) -> Iterator[Dict[str, Any]]:
        """Yield the selected rows as dicts, in row order.

        Column-backed (or projected) batches build ``{name: value}``
        dicts in ``names`` order; an unprojected row-backed batch yields
        its original dicts so raw-record key sets survive untouched.
        """
        sel = self.sel
        if self.names is None:
            rows = self._rows if self._rows is not None else []
            if sel.all():
                yield from rows
            else:
                for index in sel.iter_set():
                    yield rows[index]
            return
        names = self.names
        columns = [self.column(name) for name in names]
        pairs = list(zip(names, columns))
        if sel.all():
            for index in range(self.num_rows):
                yield {name: values[index] for name, values in pairs}
        else:
            for index in sel.iter_set():
                yield {name: values[index] for name, values in pairs}

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        backing = "rows" if self._rows is not None else "columns"
        return (
            f"ColumnBatch({backing}, rows={self.num_rows}, "
            f"selected={self.selected_count()})"
        )
