"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so PEP 517
editable installs (which need ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` take the legacy
``setup.py develop`` path; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
