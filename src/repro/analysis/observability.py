"""Observability discipline for hot-path modules.

The server/engine/storage/service layers sit on ingest and query hot
paths; ad-hoc ``print()`` calls and ``logging`` there are both a
performance hazard (formatting and I/O inside scan/ingest loops) and an
observability dead end — output that bypasses the :mod:`repro.obs`
registry can't be snapshotted, exported, or asserted on.  Those layers
report through injected :class:`~repro.obs.Metrics` /
:class:`~repro.obs.Tracer` / :class:`~repro.obs.QueryLog` instances
instead.

``OBS001``
    A direct ``print(...)`` call, a ``logging`` import, or a
    ``logging.*`` call in a hot-path module.  Route the signal through
    the obs registry (or, for genuinely human-facing output such as a
    CLI entry point, move it out of the hot-path layer).

Scope: modules whose role is ``server``, ``engine``, ``storage``,
``service``, or ``compact`` (path-inferred, or declared with
``# ciaolint: module-role=...``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .findings import Finding
from .model import Project, SourceModule
from .registry import Checker, register

_OBS_ROLES = ("server", "engine", "storage", "service", "compact")


@register
class ObservabilityChecker(Checker):
    name = "observability"
    description = (
        "hot-path layers report via repro.obs, not print()/logging"
    )
    rules = {
        "OBS001": "print()/logging on a hot path — use the obs registry",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in project.by_role(*_OBS_ROLES):
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "logging":
                        findings.append(self._finding(
                            module, node,
                            "imports logging: hot-path modules report "
                            "through injected repro.obs instruments, "
                            "not a process-global logger",
                        ))
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and \
                        node.module.split(".")[0] == "logging":
                    findings.append(self._finding(
                        module, node,
                        "imports from logging: hot-path modules report "
                        "through injected repro.obs instruments, "
                        "not a process-global logger",
                    ))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "print":
                    findings.append(self._finding(
                        module, node,
                        "print() on a hot path: formatting + stdout I/O "
                        "inside ingest/query code — record a metric or "
                        "span via repro.obs instead",
                    ))
                elif isinstance(func, ast.Attribute):
                    root = func.value
                    while isinstance(root, ast.Attribute):
                        root = root.value
                    if isinstance(root, ast.Name) and root.id == "logging":
                        findings.append(self._finding(
                            module, node,
                            f"logging.{func.attr}() on a hot path: "
                            f"route the signal through the obs registry",
                        ))
        return findings

    def _finding(self, module: SourceModule, node: ast.AST,
                 message: str) -> Finding:
        return Finding(
            path=module.rel_path, line=node.lineno,
            col=node.col_offset, rule="OBS001", checker=self.name,
            message=message,
        )
