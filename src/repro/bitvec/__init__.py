"""Bit-vector substrate: packed and run-length encoded validity vectors."""

from .bitvector import BitVector, intersect_all, union_all
from .rle import RleBitVector, best_encoding

__all__ = [
    "BitVector",
    "RleBitVector",
    "best_encoding",
    "intersect_all",
    "union_all",
]
