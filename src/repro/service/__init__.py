"""Remote serving: a CiaoSession behind a socket, many clients at once.

The service layer is the paper's deployment story made literal: the
client-assisted loading pipeline (client-side predicate evaluation,
chunk shipping, server-side partial loading) running across a real wire.
:class:`CiaoService` serves one :class:`~repro.api.session.CiaoSession`
to N concurrent connections — remote ingest streams, plan shipping, and
admission-controlled query serving — and :class:`RemoteSession` is the
matching client.  Query admission mirrors the ingest side's
``max_active``/``max_pending`` discipline with round-robin fairness.
"""

from .admission import (
    AdmissionSaturated,
    AdmissionStats,
    QueryAdmission,
)
from ..recovery.retry import RetryPolicy
from .remote import (
    RemoteBusyError,
    RemoteError,
    RemoteRetryableError,
    RemoteSession,
    RemoteTimeoutError,
)
from .results import (
    RESULT_FORMAT,
    ResultFormatError,
    canonical_result_bytes,
    result_from_payload,
    result_to_payload,
)
from .service import (
    DEFAULT_IDLE_TIMEOUT,
    DEFAULT_MAX_CONNECTIONS,
    STATS_FORMAT,
    CiaoService,
)

__all__ = [
    "AdmissionSaturated",
    "AdmissionStats",
    "CiaoService",
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_MAX_CONNECTIONS",
    "QueryAdmission",
    "RESULT_FORMAT",
    "RemoteBusyError",
    "RemoteError",
    "RemoteRetryableError",
    "RemoteSession",
    "RemoteTimeoutError",
    "ResultFormatError",
    "RetryPolicy",
    "STATS_FORMAT",
    "canonical_result_bytes",
    "result_from_payload",
    "result_to_payload",
]
