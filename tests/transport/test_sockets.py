"""Socket transport: framing, EOF semantics, decorators over real wires."""

import socket as socketlib
import threading

import pytest

from repro.client import SimulatedClient, encode_chunk
from repro.client.protocol import decode_chunk, split_frames
from repro.rawjson import JsonChunk, dump_record
from repro.transport import (
    ChannelSpec,
    LatencyChannel,
    LinkModel,
    LossyChannel,
    SocketChannel,
    SocketListener,
    TransportError,
    make_channel,
    socket_pair,
)


class TestSocketChannelContract:
    def test_fifo_round_trip(self):
        a, b = socket_pair()
        a.send(b"one")
        a.send(b"two")
        assert b.receive_wait(5.0) == b"one"
        assert b.receive_wait(5.0) == b"two"
        assert b.receive() is None
        a.close()
        b.close()

    def test_both_directions(self):
        a, b = socket_pair()
        a.send(b"ping")
        assert b.receive_wait(5.0) == b"ping"
        b.send(b"pong")
        assert a.receive_wait(5.0) == b"pong"
        a.close()
        b.close()

    def test_large_frame_reassembled(self):
        # Bigger than one recv() chunk, so reassembly genuinely runs;
        # sent from a thread because a megabyte overflows the kernel's
        # socketpair buffer and sendall must interleave with the reads.
        payload = bytes(range(256)) * 4096  # 1 MiB
        a, b = socket_pair()
        sender = threading.Thread(target=a.send, args=(payload,))
        sender.start()
        got = b.receive_wait(10.0)
        sender.join()
        assert got == payload
        a.close()
        b.close()

    def test_empty_frame(self):
        a, b = socket_pair()
        a.send(b"")
        assert b.receive_wait(5.0) == b""
        a.close()
        b.close()

    def test_type_checked(self):
        a, b = socket_pair()
        with pytest.raises(TypeError):
            a.send("not bytes")
        a.close()
        b.close()

    def test_oversized_send_rejected(self):
        a, b = socket_pair(max_frame_bytes=16)
        with pytest.raises(TransportError):
            a.send(b"x" * 17)
        a.close()
        b.close()

    def test_hostile_length_prefix_rejected(self):
        # A peer declaring a frame over the ceiling must fail loudly
        # before any allocation, not buffer gigabytes.
        raw_a, raw_b = socketlib.socketpair()
        channel = SocketChannel(raw_b, max_frame_bytes=1024)
        raw_a.sendall((1 << 30).to_bytes(4, "little"))
        with pytest.raises(TransportError, match="ceiling"):
            channel.receive_wait(5.0)
        channel.close()
        raw_a.close()

    def test_stats(self):
        a, b = socket_pair()
        a.send(b"abcd")
        a.send(b"ef")
        assert b.receive_wait(5.0) is not None
        assert a.stats.messages_sent == 2
        assert a.stats.bytes_sent == 6
        assert b.stats.messages_received == 1
        a.close()
        b.close()

    def test_receive_wait_timeout(self):
        a, b = socket_pair()
        assert b.receive_wait(0.05) is None
        a.close()
        b.close()


class TestEofSemantics:
    def test_peer_close_drains_buffered_frames(self):
        a, b = socket_pair()
        a.send(b"first")
        a.send(b"second")
        a.close()
        # Buffered frames still deliver; closed only after the drain.
        assert b.receive_wait(5.0) == b"first"
        assert b.receive_wait(5.0) == b"second"
        assert b.receive_wait(1.0) is None
        assert b.closed
        b.close()

    def test_send_after_close_raises(self):
        a, b = socket_pair()
        a.close()
        with pytest.raises(TransportError):
            a.send(b"late")
        b.close()

    def test_receive_wait_returns_on_peer_close(self):
        a, b = socket_pair()
        threading.Thread(target=a.close).start()
        assert b.receive_wait(10.0) is None
        assert b.closed
        b.close()


class TestListenerAndFactory:
    def test_listener_accept_and_dial(self):
        with SocketListener() as listener:
            client = SocketChannel.connect(listener.address)
            served = listener.accept(timeout=5.0)
            assert served is not None
            client.send(b"hello")
            assert served.receive_wait(5.0) == b"hello"
            client.close()
            served.close()

    def test_accept_timeout_returns_none(self):
        with SocketListener() as listener:
            assert listener.accept(timeout=0.05) is None

    def test_make_channel_tcp_spec(self):
        with SocketListener() as listener:
            host, port = listener.address
            channel = make_channel(f"tcp:{host}:{port}")
            served = listener.accept(timeout=5.0)
            assert isinstance(channel, SocketChannel)
            channel.send(b"via-spec")
            assert served.receive_wait(5.0) == b"via-spec"
            channel.close()
            served.close()

    def test_tcp_spec_with_decorators(self):
        with SocketListener() as listener:
            host, port = listener.address
            spec = ChannelSpec(kind="tcp", address=(host, port),
                               drop_rate=0.3, seed=11,
                               link=LinkModel(bandwidth_mbps=100.0))
            channel = make_channel(spec)
            served = listener.accept(timeout=5.0)
            assert isinstance(channel, LossyChannel)
            assert isinstance(channel.inner, LatencyChannel)
            assert isinstance(channel.inner.inner, SocketChannel)
            for i in range(10):
                channel.send(b"m%d" % i)
            got = [served.receive_wait(5.0) for _ in range(10)]
            assert got == [b"m%d" % i for i in range(10)]
            channel.close()
            served.close()

    def test_tcp_spec_requires_address(self):
        with pytest.raises(ValueError, match="address"):
            ChannelSpec(kind="tcp")


class TestDecoratorsOverSockets:
    """Satellite: Lossy/Latency compose over a real wire unchanged."""

    def test_lossy_over_socket_zero_record_loss(self):
        n_records = 200
        records = [dump_record({"v": i, "tag": f"t{i % 3}"})
                   for i in range(n_records)]
        raw_a, raw_b = socket_pair()
        lossy = LossyChannel(raw_a, drop_rate=0.4, seed=99)
        client = SimulatedClient("dev-0", plan=None, chunk_size=25)
        sent = client.ship(records, lossy, batch_size=2)
        lossy.close()

        payloads = []
        while True:
            frame = raw_b.receive_wait(5.0)
            if frame is None:
                break
            payloads.append(frame)
        decoded = [
            decode_chunk(f) for payload in payloads
            for f in split_frames(payload)
        ]
        arrived = [r for chunk in decoded for r in chunk.records]
        assert len(decoded) == sent
        assert arrived == records, "record loss across a lossy socket"
        assert lossy.stats.messages_dropped > 0, (
            "drop_rate=0.4 never dropped — the lossy decorator is not "
            "exercising the socket path"
        )
        raw_b.close()

    def test_latency_over_socket_accounts_modeled_time(self):
        a, b = socket_pair()
        latent = LatencyChannel(a, LinkModel(bandwidth_mbps=8.0,
                                             latency_us=100.0))
        latent.send(b"x" * 1000)
        assert b.receive_wait(5.0) == b"x" * 1000
        # 1000 bytes at 8 Mbps = 1000 us + 100 us propagation.
        assert latent.modeled_us == pytest.approx(1100.0)
        latent.close()
        b.close()

    def test_lossy_and_latency_stack_over_socket(self):
        a, b = socket_pair()
        stacked = LossyChannel(
            LatencyChannel(a, LinkModel(latency_us=10.0)),
            drop_rate=0.5, seed=5,
        )
        frames = [
            encode_chunk(JsonChunk(i, [dump_record({"v": i})]))
            for i in range(20)
        ]
        for frame in frames:
            stacked.send(frame)
        got = [b.receive_wait(5.0) for _ in range(20)]
        assert got == frames
        assert stacked.stats.messages_dropped > 0
        assert stacked.inner.modeled_us > 0
        stacked.close()
        b.close()
