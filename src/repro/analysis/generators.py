"""Yield-under-lock checker.

A generator that yields while holding a lock suspends with the lock
held: the consumer decides when (or whether) the frame resumes, so the
lock's critical section silently extends across arbitrary foreign code
— the signature hazard of lazy generator chains (PR 5's ``batches()``
pipelines) meeting lock-protected snapshot merges (PR 2).  The fix is
to copy what the lock protects and yield outside, or return a list.

Rule ``GEN001`` flags ``yield``/``yield from`` lexically inside a
``with`` block whose context manager looks like a lock: a known lock
attribute of the class (see :mod:`repro.analysis.lockgraph`), a known
module-level lock, or any name matching ``lock``/``cond``/``mutex``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Set

from .findings import Finding
from .lockgraph import collect_classes, module_level_locks
from .model import Project, SourceModule
from .registry import Checker, register

_LOCKISH_NAME = re.compile(r"lock|cond|mutex|semaphore", re.IGNORECASE)


def _lockish_label(expr: ast.AST, class_locks: Set[str],
                   module_locks: Set[str]) -> Optional[str]:
    """A display label if *expr* looks like a lock, else None."""
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"):
        if expr.attr in class_locks or _LOCKISH_NAME.search(expr.attr):
            return f"self.{expr.attr}"
        return None
    if isinstance(expr, ast.Name):
        if expr.id in module_locks or _LOCKISH_NAME.search(expr.id):
            return expr.id
        return None
    return None


class _YieldVisitor(ast.NodeVisitor):
    """Find yields inside lock-holding with-blocks of one function."""

    def __init__(self, class_locks: Set[str], module_locks: Set[str]):
        self.class_locks = class_locks
        self.module_locks = module_locks
        self.held: List[str] = []
        self.hits: List[tuple] = []  # (line, col, lock label)

    def _visit_with(self, node) -> None:
        pushed = 0
        for item in node.items:
            label = _lockish_label(
                item.context_expr, self.class_locks, self.module_locks
            )
            if label is not None:
                self.held.append(label)
                pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        if self.held:
            self.hits.append((node.lineno, node.col_offset,
                              self.held[-1]))
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        if self.held:
            self.hits.append((node.lineno, node.col_offset,
                              self.held[-1]))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # a nested def is its own frame; its yields aren't ours

    def visit_AsyncFunctionDef(self, node) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


@register
class YieldUnderLockChecker(Checker):
    name = "yield-under-lock"
    description = (
        "generators must not suspend while holding a lock"
    )
    rules = {
        "GEN001": "yield inside a with-lock block",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        module_locks = set(module_level_locks(module))
        class_locks_by_node = {}
        for info in collect_classes(module):
            for method in info.methods.values():
                class_locks_by_node[method] = set(info.lock_attrs)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            visitor = _YieldVisitor(
                class_locks_by_node.get(node, set()), module_locks
            )
            for stmt in node.body:
                visitor.visit(stmt)
            for line, col, label in visitor.hits:
                findings.append(Finding(
                    path=module.rel_path, line=line, col=col,
                    rule="GEN001", checker=self.name,
                    message=(
                        f"yield while holding {label}: the generator "
                        f"suspends with the lock held and the consumer "
                        f"controls when it resumes — copy the guarded "
                        f"state and yield outside the lock"
                    ),
                ))
        return findings
