"""Observability: metrics, span tracing, and the query log.

The standing instrumentation layer (ISSUE 8): injectable, thread-safe,
and near-zero-overhead when disabled — every component defaults to the
``null()`` singletons, so observability costs nothing unless a
deployment opts in by constructing real instances and passing them
down (``CiaoSession(metrics=Metrics(), ...)``).

* :mod:`repro.obs.metrics` — counters/gauges/histograms with exact
  totals under concurrency, snapshot as plain JSON.
* :mod:`repro.obs.tracing` — nested spans with deterministic ids that
  propagate over the wire and export as Chrome ``about:tracing`` JSON.
* :mod:`repro.obs.querylog` — one structured record per query, the
  input for workload-adaptive layout optimization.
* :mod:`repro.obs.export` — Prometheus-text and JSON renderers.
"""

from .export import metrics_json, prometheus_text
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    NullMetrics,
    resolve_metrics,
)
from .querylog import (
    NullQueryLog,
    QueryLog,
    QueryLogRecord,
    client_scope,
    current_client_id,
    resolve_query_log,
)
from .tracing import NullTracer, Span, TraceContext, Tracer, resolve_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NullMetrics",
    "NullQueryLog",
    "NullTracer",
    "QueryLog",
    "QueryLogRecord",
    "Span",
    "TraceContext",
    "Tracer",
    "client_scope",
    "current_client_id",
    "metrics_json",
    "prometheus_text",
    "resolve_metrics",
    "resolve_query_log",
    "resolve_tracer",
]
