"""CompactionPolicy: tier selection, the credit guard, schema grouping."""

import pytest

from repro.compact import CompactionConfig, CompactionPolicy
from repro.obs.querylog import QueryLogRecord
from repro.storage.columnar import write_records


def record(columns, scanned, pruned=0, fingerprint=None):
    return QueryLogRecord(
        fingerprint=fingerprint or f"q|{','.join(columns)}",
        table="t",
        sql="SELECT COUNT(*) FROM t",
        predicate_columns=tuple(columns),
        row_groups_scanned=scanned,
        row_groups_pruned=pruned,
    )


def make_parts(tmp_path, count, rows_each=8, prefix="part",
               columns=("k", "v")):
    paths = []
    for index in range(count):
        rows = [
            {c: index * rows_each + i for c in columns}
            for i in range(rows_each)
        ]
        path = tmp_path / f"{prefix}{index}.pql"
        write_records(path, rows, row_group_size=4)
        paths.append(path)
    return paths


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"min_inputs": 1},
        {"min_inputs": 4, "max_inputs": 2},
        {"small_part_bytes": 0},
        {"tier_ratio": 0.5},
        {"row_group_rows": 0},
        {"rewrite_cost_factor": 0},
        {"min_observations": -1},
        {"poll_interval": 0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CompactionConfig(**kwargs)


class TestTierSelection:
    def test_small_parts_merge_without_any_observations(self, tmp_path):
        parts = make_parts(tmp_path, 4)
        policy = CompactionPolicy()
        plan = policy.propose(parts)
        assert plan is not None
        assert set(plan.inputs) == set(parts)
        assert plan.cluster_by is None  # no credit, merge only
        assert plan.input_row_groups == 8  # 4 parts x 2 groups

    def test_single_part_is_not_a_merge(self, tmp_path):
        parts = make_parts(tmp_path, 1)
        assert CompactionPolicy().propose(parts) is None

    def test_max_inputs_caps_the_merge(self, tmp_path):
        parts = make_parts(tmp_path, 6)
        policy = CompactionPolicy(CompactionConfig(max_inputs=3))
        plan = policy.propose(parts)
        assert plan is not None
        assert len(plan.inputs) == 3

    def test_missing_parts_skipped(self, tmp_path):
        parts = make_parts(tmp_path, 3)
        ghost = tmp_path / "gone.pql"
        plan = CompactionPolicy().propose(parts + [ghost])
        assert plan is not None
        assert ghost not in plan.inputs

    def test_mixed_schemas_never_merge_together(self, tmp_path):
        ints = make_parts(tmp_path, 2, prefix="int", columns=("k",))
        floats = []
        for index in range(3):
            rows = [{"k": float(i)} for i in range(4)]
            path = tmp_path / f"float{index}.pql"
            write_records(path, rows, row_group_size=4)
            floats.append(path)
        plan = CompactionPolicy().propose(ints + floats)
        assert plan is not None
        # The larger same-schema tier wins; no cross-schema mixing.
        assert set(plan.inputs) == set(floats)


class TestCreditGuard:
    def test_recluster_needs_observations_and_credit(self, tmp_path):
        parts = make_parts(tmp_path, 4)
        policy = CompactionPolicy(CompactionConfig(min_observations=2))
        hot = [("k", 10.0)]
        # No observations at all: merge yes, cluster no.
        plan = policy.propose(parts, hot)
        assert plan is not None and plan.cluster_by is None
        # Enough queries, enough credit (each decoded 8 groups).
        policy.observe([record(["k"], scanned=8) for _ in range(2)])
        plan = policy.propose(parts, hot)
        assert plan is not None and plan.cluster_by == "k"

    def test_pruned_groups_deposit_no_credit(self, tmp_path):
        # A workload whose queries already get zone-pruned to nothing
        # deposits nothing: re-sorting cannot help it.
        parts = make_parts(tmp_path, 4)
        policy = CompactionPolicy(CompactionConfig(min_observations=1))
        policy.observe([
            record(["k"], scanned=8, pruned=8) for _ in range(50)
        ])
        plan = policy.propose(parts, [("k", 50.0)])
        assert plan is not None and plan.cluster_by is None

    def test_committed_spends_credit(self, tmp_path):
        parts = make_parts(tmp_path, 4)
        policy = CompactionPolicy(CompactionConfig(min_observations=1))
        policy.observe([record(["k"], scanned=8)])  # exactly the cost
        plan = policy.propose(parts, [("k", 1.0)])
        assert plan is not None and plan.cluster_by == "k"
        policy.committed(plan)
        assert policy.stats()["credit"]["k"] == 0.0
        # The same opportunity no longer clears the guard.
        plan = policy.propose(parts, [("k", 1.0)])
        assert plan is not None and plan.cluster_by is None

    def test_relayout_without_merge_tier(self, tmp_path):
        # One big part, hot shifted workload: a pure re-sort is allowed
        # once credit covers it, but not by the current cluster column.
        parts = make_parts(tmp_path, 1)
        policy = CompactionPolicy(CompactionConfig(min_observations=1))
        policy.observe([record(["b"], scanned=2) for _ in range(5)])
        plan = policy.propose(parts, [("b", 5.0)], current_cluster="b")
        assert plan is None  # already sorted by b: nothing to gain
        plan = policy.propose(parts, [("b", 5.0)], current_cluster="a")
        assert plan is not None
        assert plan.cluster_by == "b"
        assert plan.inputs == (parts[0],)

    def test_stats_shape(self):
        policy = CompactionPolicy()
        policy.observe([record(["a", "b"], scanned=3)])
        stats = policy.stats()
        assert stats["observed_queries"] == 1
        assert stats["credit"] == {"a": 3.0, "b": 3.0}
        assert stats["spent"] == 0.0
