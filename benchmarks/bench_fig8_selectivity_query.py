"""Fig. 8 — per-query execution time vs predicate selectivity.

Same workloads as Fig. 7; reports q0–q4 execution times per selectivity
level.  Expected shape: lower selectivity (0.01) skips more tuples, so
every query runs faster than at 0.35.
"""

from conftest import config_for, run_once

from repro.bench import emit_table, selectivity_experiment

PARAMS = config_for("winlog", n_records=4000, n_queries=5)


def test_fig8_selectivity_query(benchmark, tmp_path, results_dir):
    def experiment():
        return selectivity_experiment(tmp_path, config=PARAMS["config"])

    results = run_once(benchmark, experiment)
    headers = ["query"] + [r.level for r in results] + ["baseline(0.35)"]
    rows = []
    for i in range(5):
        row = [f"q{i}"]
        row.extend(r.per_query_s[i] for r in results)
        row.append(results[0].baseline.per_query_wall_s[i])
        rows.append(row)
    emit_table("fig8_selectivity_query", headers, rows, results_dir,
               title="Fig 8")

    # Per-query times at selectivity 0.01 beat those at 0.35.
    high, low = results[0], results[-1]
    faster = sum(
        1 for a, b in zip(low.per_query_s, high.per_query_s) if a < b
    )
    assert faster >= 4
    # And CIAO beats the baseline at the most selective level.
    assert sum(low.per_query_s) < sum(low.baseline.per_query_wall_s)
