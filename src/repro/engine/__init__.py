"""Mini query-engine substrate (the prototype's Spark stand-in).

Execution is **columnar-batch**: operators exchange
:class:`ColumnBatch` objects — per-column value lists plus a word-level
``BitVector`` selection vector — through ``Operator.batches()``.  Scans
decode each row group's pages once (``RowGroupReader.read_batch``);
``Expr.evaluate_batch`` turns a WHERE clause into one predicate mask per
batch, ANDed into the selection with ``intersect_update``; aggregates
fold batches directly, so COUNT(*)-only plans reduce to popcounts and
never materialize a row dict.

The historical row-at-a-time surface is preserved as a thin adapter:
``Operator.execute()`` spills batches back into dict rows (and
row-only ``Operator`` subclasses are wrapped the other way), so planner,
server, session, and bench code written against row iterators keeps
working unchanged.  :mod:`repro.engine.rowpath` additionally keeps the
full pre-batch interpreter runnable as an equivalence oracle and
benchmark baseline.

Mid-load snapshot queries get incremental aggregation: sealed Parquet
parts are immutable, so :class:`SnapshotAggCache` keys per-part partial
aggregates by (part identity, query fingerprint) and successive
snapshot queries only scan newly sealed parts plus the sideline delta
(:mod:`repro.engine.snapcache`).
"""

from .batch import ColumnBatch
from .catalog import Catalog, CatalogError, TableEntry
from .executor import Executor, QueryResult, run_plan
from .expressions import (
    And,
    Column,
    Comparison,
    Expr,
    IsNotNull,
    IsNull,
    LikeExpr,
    Literal,
    Not,
    Or,
    clause_to_expr,
    compile_like,
    conjuncts,
    like_match,
    predicate_to_expr,
    query_where_expr,
    to_clause,
)
from .operators import (
    Aggregate,
    ChainScan,
    ExecutionStats,
    Filter,
    GroupedAggregate,
    Limit,
    Operator,
    ParquetScan,
    Project,
    SidelineScan,
    SkippingScan,
)
from .planner import PlanInfo, PlannerError, plan_query
from .rowpath import run_plan_rows
from .snapcache import SnapshotAggCache, query_fingerprint
from .sql import ParsedQuery, SelectItem, SqlError, parse_sql

__all__ = [
    "Aggregate",
    "And",
    "Catalog",
    "CatalogError",
    "ChainScan",
    "Column",
    "ColumnBatch",
    "Comparison",
    "ExecutionStats",
    "Executor",
    "Expr",
    "Filter",
    "GroupedAggregate",
    "IsNotNull",
    "IsNull",
    "LikeExpr",
    "Limit",
    "Literal",
    "Not",
    "Operator",
    "Or",
    "ParquetScan",
    "ParsedQuery",
    "PlanInfo",
    "PlannerError",
    "Project",
    "QueryResult",
    "SelectItem",
    "SidelineScan",
    "SkippingScan",
    "SnapshotAggCache",
    "SqlError",
    "TableEntry",
    "clause_to_expr",
    "compile_like",
    "conjuncts",
    "like_match",
    "parse_sql",
    "plan_query",
    "predicate_to_expr",
    "query_fingerprint",
    "query_where_expr",
    "run_plan",
    "run_plan_rows",
    "to_clause",
]
