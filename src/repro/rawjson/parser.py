"""Recursive-descent JSON parser built on :mod:`repro.rawjson.tokenizer`.

This is the server's "expensive" loading path — the Python analogue of the
paper's rapidJSON step.  It produces plain Python objects (``dict`` / ``list``
/ ``str`` / ``int`` / ``float`` / ``bool`` / ``None``) and raises
:class:`~repro.rawjson.errors.JsonSyntaxError` with a byte offset on
malformed input.

Differential tests in ``tests/rawjson`` check it agrees with the stdlib
``json`` module on every valid document hypothesis can produce.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Tuple

from .errors import JsonSyntaxError
from .tokenizer import Token, Tokenizer, TokenType

# Nesting guard: JSON from sensors is shallow; a bound keeps malicious or
# corrupt input from exhausting the interpreter stack.
MAX_DEPTH = 128

_VALUE_STARTERS = {
    TokenType.LBRACE,
    TokenType.LBRACKET,
    TokenType.STRING,
    TokenType.NUMBER,
    TokenType.TRUE,
    TokenType.FALSE,
    TokenType.NULL,
}


class Parser:
    """Single-document recursive-descent parser."""

    def __init__(self, text: str):
        self._tokenizer = Tokenizer(text)
        self._current: Token = self._tokenizer.next_token()

    def parse(self) -> Any:
        """Parse exactly one JSON value and require EOF after it."""
        value = self._parse_value(depth=0)
        if self._current.type is not TokenType.EOF:
            raise JsonSyntaxError(
                f"trailing data after document: {self._current.type.name}",
                self._current.position,
            )
        return value

    # ------------------------------------------------------------------
    def _advance(self) -> Token:
        token = self._current
        self._current = self._tokenizer.next_token()
        return token

    def _expect(self, ttype: TokenType) -> Token:
        if self._current.type is not ttype:
            raise JsonSyntaxError(
                f"expected {ttype.name}, found {self._current.type.name}",
                self._current.position,
            )
        return self._advance()

    def _parse_value(self, depth: int) -> Any:
        if depth > MAX_DEPTH:
            raise JsonSyntaxError("maximum nesting depth exceeded",
                                  self._current.position)
        ttype = self._current.type
        if ttype is TokenType.LBRACE:
            return self._parse_object(depth)
        if ttype is TokenType.LBRACKET:
            return self._parse_array(depth)
        if ttype in (TokenType.STRING, TokenType.NUMBER, TokenType.TRUE,
                     TokenType.FALSE, TokenType.NULL):
            return self._advance().value
        raise JsonSyntaxError(
            f"expected a value, found {ttype.name}", self._current.position
        )

    def _parse_object(self, depth: int) -> Dict[str, Any]:
        self._expect(TokenType.LBRACE)
        obj: Dict[str, Any] = {}
        if self._current.type is TokenType.RBRACE:
            self._advance()
            return obj
        while True:
            key_token = self._expect(TokenType.STRING)
            self._expect(TokenType.COLON)
            obj[key_token.value] = self._parse_value(depth + 1)
            if self._current.type is TokenType.COMMA:
                self._advance()
                continue
            self._expect(TokenType.RBRACE)
            return obj

    def _parse_array(self, depth: int) -> List[Any]:
        self._expect(TokenType.LBRACKET)
        items: List[Any] = []
        if self._current.type is TokenType.RBRACKET:
            self._advance()
            return items
        while True:
            items.append(self._parse_value(depth + 1))
            if self._current.type is TokenType.COMMA:
                self._advance()
                continue
            self._expect(TokenType.RBRACKET)
            return items


def loads(text: str) -> Any:
    """Parse one JSON document from *text* (the `json.loads` equivalent)."""
    return Parser(text).parse()


def parse_object(text: str) -> Dict[str, Any]:
    """Parse *text* and require the top-level value to be an object.

    CIAO records are always JSON objects (one per line); anything else in a
    chunk indicates a corrupt producer and should fail loudly at load time.
    """
    value = loads(text)
    if not isinstance(value, dict):
        raise JsonSyntaxError(
            f"expected a JSON object, got {type(value).__name__}", 0
        )
    return value


def parse_lines(lines: Iterable[str]) -> Iterator[Dict[str, Any]]:
    """Parse newline-delimited JSON objects, skipping blank lines."""
    for line in lines:
        stripped = line.strip()
        if stripped:
            yield parse_object(stripped)


def try_parse(text: str) -> Tuple[Any, bool]:
    """Parse leniently: returns ``(value, ok)`` instead of raising.

    Used by the just-in-time loader to quarantine malformed sideline records
    without aborting a whole query.
    """
    try:
        return loads(text), True
    except JsonSyntaxError:
        return None, False
    except Exception:  # ciaolint: allow[API006] -- probe semantics: any parse failure means "not JSON", never an error
        return None, False
