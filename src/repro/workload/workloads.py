"""Canonical experiment workloads (paper Tables III and §VII-E).

Three kinds of workloads drive the evaluation:

* **Table III end-to-end workloads A/B/C** — 200 queries, expected 3
  predicates each, drawn Zipfian (A most skewed, B medium) or uniformly (C).
  The paper parameterizes numpy's Zipfian where its "1.5" (A) is *more*
  skewed than its "2" (B); our bounded sampler uses the standard
  "larger exponent = more skew" convention, so A maps to the larger
  effective exponent.  The paper label is kept in the spec for traceability.

* **Selectivity workloads** (Figs 7–8) — 5 queries × 3 predicates, all at a
  target selectivity (0.35 / 0.15 / 0.01), built from the Windows-log
  keyword plateaus; 2 predicates pushed, covering every query so partial
  loading engages.

* **Overlap workloads** (Figs 9–10) — 5 queries with 1 / 2 / 4 predicates
  (low/medium/high overlap); 2 pushed.  Skewness workloads (Figs 11–12) are
  produced by :mod:`repro.workload.skewness`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.predicates import Clause, Query, Workload, clause, substring
from ..data import winlog
from ..data.randomness import rng_stream
from .generator import (
    SelectionDistribution,
    UNIFORM,
    generate_workload,
    zipfian,
)
from .pool import PredicatePool


@dataclass(frozen=True)
class WorkloadSpec:
    """Configuration of one Table III workload."""

    label: str                 # 'A' | 'B' | 'C'
    paper_distribution: str    # the label printed in Table III
    distribution: SelectionDistribution
    n_queries: int = 200
    expected_predicates: float = 3.0


#: Table III rows.  Exponents chosen so the measured skewness ordering is
#: A > B > C (validated by tests), matching the paper's characterization of
#: A as the "easy" highly-skewed case and C as the uniform "challenging" one.
TABLE3_SPECS: Dict[str, WorkloadSpec] = {
    "A": WorkloadSpec("A", "Zipfian(1.5)", zipfian(1.5)),
    "B": WorkloadSpec("B", "Zipfian(2)", zipfian(0.9)),
    "C": WorkloadSpec("C", "Uniform", UNIFORM),
}


def table3_workload(dataset: str, label: str, seed: int,
                    n_queries: int | None = None) -> Workload:
    """Build workload A, B, or C for *dataset* (Table III).

    ``n_queries`` overrides the paper's 200 for scaled-down runs.
    """
    try:
        spec = TABLE3_SPECS[label]
    except KeyError:
        raise KeyError(f"workload label must be A, B, or C, got {label!r}") \
            from None
    pool_rng = rng_stream(seed, f"pool:{dataset}")
    pool = PredicatePool.from_templates(dataset, rng=pool_rng)
    query_rng = rng_stream(seed, f"workload:{dataset}:{label}")
    return generate_workload(
        pool,
        n_queries or spec.n_queries,
        spec.expected_predicates,
        spec.distribution,
        query_rng,
    )


# ----------------------------------------------------------------------
# Micro-benchmark workloads on the Windows log dataset (paper §VII-E)
# ----------------------------------------------------------------------
#: The three selectivity levels of Figs 7–8.
SELECTIVITY_LEVELS: Tuple[float, ...] = (0.35, 0.15, 0.01)

#: Overlap levels of Figs 9–10 mapped to predicates-per-query.
OVERLAP_LEVELS: Dict[str, int] = {"low": 1, "medium": 2, "high": 4}

#: Skewness factors of Figs 11–12.
SKEWNESS_LEVELS: Tuple[float, ...] = (0.0, 0.5, 2.0)


def _keyword_clause(rank: int) -> Clause:
    """The ``info LIKE`` clause for keyword *rank*."""
    return clause(substring("info", winlog.INFO_KEYWORDS[rank]))


def selectivity_workload(level: float) -> Tuple[Workload, List[Clause]]:
    """One Fig 7/8 workload: 5 queries × 3 predicates at *level*.

    Returns ``(workload, pushed)`` where ``pushed`` is the 2-clause
    pushdown set.  Construction mirrors the paper: every query's predicates
    sit on the same selectivity plateau, and the two pushed predicates
    jointly cover all five queries (alternating membership) so partial
    loading engages.
    """
    ranks = winlog.plateau_keyword_ranks(level)
    if len(ranks) < 6:
        raise RuntimeError("plateau too narrow for the 5-query construction")
    pushed = [_keyword_clause(ranks[0]), _keyword_clause(ranks[1])]
    fillers = [_keyword_clause(r) for r in ranks[2:6]]
    queries = []
    for i in range(5):
        anchor = pushed[i % 2]
        others = (fillers[i % 4], fillers[(i + 1) % 4])
        queries.append(Query((anchor,) + others, name=f"q{i}"))
    return Workload(tuple(queries), dataset="winlog"), pushed


def overlap_workload(level: str) -> Tuple[Workload, List[Clause]]:
    """One Fig 9/10 workload: 5 queries with 1/2/4 predicates each.

    Returns ``(workload, pushed)`` with the 2-clause pushdown set.  The
    construction realizes the paper's narrative exactly:

    * low — 5 disjoint single-predicate queries; pushed covers q0, q1;
    * medium — 2 predicates per query; pushed covers q0..q3;
    * high — 4 predicates per query; both pushed clauses appear in *every*
      query, so partial loading engages.

    Predicates come from the 0.15-selectivity plateau plus the decaying
    tail, keeping record volumes comparable across levels.
    """
    if level not in OVERLAP_LEVELS:
        raise KeyError(f"overlap level must be one of {set(OVERLAP_LEVELS)}")
    plateau = winlog.plateau_keyword_ranks(0.15)
    tail_start = sum(w for _, w in winlog.SELECTIVITY_PLATEAUS)
    pushed = [_keyword_clause(plateau[0]), _keyword_clause(plateau[1])]
    fillers = [_keyword_clause(tail_start + i) for i in range(20)]
    queries: List[Query] = []
    if level == "low":
        members = [
            (pushed[0],), (pushed[1],),
            (fillers[0],), (fillers[1],), (fillers[2],),
        ]
    elif level == "medium":
        members = [
            (pushed[0], fillers[0]),
            (pushed[1], fillers[1]),
            (pushed[0], fillers[2]),
            (pushed[1], fillers[3]),
            (fillers[4], fillers[5]),
        ]
    else:  # high
        members = [
            (pushed[0], pushed[1], fillers[2 * i], fillers[2 * i + 1])
            for i in range(5)
        ]
    for i, clauses in enumerate(members):
        queries.append(Query(tuple(clauses), name=f"q{i}"))
    return Workload(tuple(queries), dataset="winlog"), pushed


def skewness_workload(target_skew: float, seed: int
                      ) -> Tuple[Workload, List[Clause]]:
    """One Fig 11/12 workload: 5 queries × 2 predicates at a skew target.

    Returns ``(workload, pushed)`` where ``pushed`` holds the single
    highest-multiplicity clause (the paper pushes exactly one predicate).
    """
    from .skewness import workload_with_skewness

    plateau = winlog.plateau_keyword_ranks(0.15)
    tail_start = sum(w for _, w in winlog.SELECTIVITY_PLATEAUS)
    # Rank order = multiplicity order: the plateau clause first so the
    # pushed (hottest) predicate has a meaningful selectivity, then tail.
    ranks = plateau + list(range(tail_start, tail_start + 12))
    pool = PredicatePool("winlog", [_keyword_clause(r) for r in ranks])
    rng = random.Random(seed)
    workload = workload_with_skewness(
        pool, n_queries=5, predicates_per_query=2,
        target_skew=target_skew, rng=rng,
    )
    counts = workload.clause_query_counts()
    hottest = max(counts, key=lambda c: (counts[c], -pool.rank_of(c)))
    return workload, [hottest]
