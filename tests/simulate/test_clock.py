"""Unit tests for the virtual clock."""

import pytest

from repro.simulate import VirtualClock


class TestClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_us == 0.0

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(150.0) == 150.0
        assert clock.now_us == 150.0
        assert clock.now_seconds == pytest.approx(150e-6)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-5)

    def test_window_measures_elapsed(self):
        clock = VirtualClock()
        with clock.window() as window:
            clock.advance(30)
            clock.advance(12)
        assert window.elapsed_us == 42

    def test_open_window_tracks_live(self):
        clock = VirtualClock()
        with clock.window() as window:
            clock.advance(10)
            assert window.elapsed_us == 10
            clock.advance(5)
        assert window.elapsed_us == 15
