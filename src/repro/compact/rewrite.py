"""Part rewrite: merge sealed Parquet-lite parts, optionally re-cluster.

The mechanical half of compaction.  :func:`rewrite_parts` reads every
row of the input parts **with its predicate bit-vector bits attached**,
optionally stable-sorts the rows by one cluster column, and writes one
output part in fixed-size row groups.  Zone maps are rebuilt for free —
:func:`repro.storage.rowgroup.build_row_group` computes per-column
min/max stats for whatever row order it is handed, which is exactly why
sorting by a hot predicate column makes
:func:`repro.engine.zonemaps.expr_prunes_group` effective.

Correctness rules the rewrite must preserve:

* **Row multiset.**  The output holds exactly the input rows (reordered
  iff *cluster_by*), so any query answer over the output equals the
  answer over the union of the inputs.
* **Bit-vector soundness.**  A stored vector bit of 1 means "may
  satisfy"; a row group with *no* vector for a predicate id is scanned
  fully.  Rows coming from a group that lacked a vector for some pid
  therefore carry a conservative 1 for that pid in the output — never a
  0, which could skip a matching row.
* **Crash atomicity.**  The output is written to ``<path>.tmp`` and
  moved into place with :func:`os.replace`; a rewrite that dies mid-way
  leaves no readable file at the output path, so the catalog (which only
  swaps after the rewrite returns) still points at the intact inputs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import reduce
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bitvec.bitvector import BitVector
from ..rawjson.parser import loads
from ..storage.columnar import ParquetLiteReader, ParquetLiteWriter
from ..storage.schema import ColumnType, Schema, merge_schemas

#: Output row-group size: a few input seal-groups' worth, so compaction
#: reduces group count while keeping skipping granularity useful.
DEFAULT_ROW_GROUP_ROWS = 1024


@dataclass(frozen=True)
class RewriteStats:
    """What one :func:`rewrite_parts` call did."""

    inputs: int
    rows: int
    row_groups_in: int
    row_groups_out: int
    bytes_in: int
    bytes_out: int
    cluster_by: Optional[str]


def _sort_key(value: Any) -> Tuple[int, Any]:
    """Total order over one column's values: nulls first, then by type.

    Mixed-type columns (a widened schema, JSON columns) must not abort
    the rewrite with ``TypeError``; grouping by type name first keeps the
    sort total while still clustering equal values together, which is
    all zone maps need.
    """
    if value is None:
        return (0, "", "")
    if isinstance(value, bool):
        return (1, "bool", value)
    if isinstance(value, (int, float)):
        return (1, "number", value)
    return (1, type(value).__name__, repr(value))


def rewrite_parts(
    inputs: Sequence[Path | str],
    output_path: Path | str,
    cluster_by: Optional[str] = None,
    row_group_rows: int = DEFAULT_ROW_GROUP_ROWS,
) -> RewriteStats:
    """Merge *inputs* into one part at *output_path*; see module docs.

    Returns the rewrite's :class:`RewriteStats`.  Raises ``ValueError``
    on an empty input list or empty inputs — sealed parts always hold at
    least one row, so there is never anything to compact away to zero.
    """
    if not inputs:
        raise ValueError("rewrite_parts needs at least one input part")
    if row_group_rows <= 0:
        raise ValueError(
            f"row_group_rows must be positive, got {row_group_rows}"
        )
    output_path = Path(output_path)
    readers = [ParquetLiteReader(p) for p in inputs]
    try:
        schema: Schema = reduce(
            merge_schemas, [r.schema for r in readers]
        )
        # Every predicate id stored anywhere in the inputs survives into
        # the output; ids missing from a group pad to conservative 1s.
        pids = sorted({
            pid
            for reader in readers
            for rg in reader.meta.row_groups
            for pid in rg.bitvectors
        })
        entries: List[Tuple[Dict[str, Any], Tuple[bool, ...]]] = []
        row_groups_in = 0
        for reader in readers:
            # JSON-typed columns read back as their serialized text;
            # writing that text through the schema would wrap it in
            # another layer of quoting.  Decode once here so the output
            # writer's own serialization restores the identical bytes.
            json_columns = [
                field.name for field in reader.schema.fields
                if field.type is ColumnType.JSON
            ]
            for group in reader.row_groups():
                row_groups_in += 1
                rows = group.rows()
                vectors = [
                    group.meta.bitvectors.get(pid) for pid in pids
                ]
                for position, row in enumerate(rows):
                    for name in json_columns:
                        if row[name] is not None:
                            row[name] = loads(row[name])
                    bits = tuple(
                        True if vector is None else vector[position]
                        for vector in vectors
                    )
                    entries.append((row, bits))
                group.clear_cache()
        if not entries:
            raise ValueError("input parts hold no rows")
        if cluster_by is not None:
            entries.sort(key=lambda entry: _sort_key(
                entry[0].get(cluster_by)
            ))
        tmp_path = output_path.parent / (output_path.name + ".tmp")
        writer = ParquetLiteWriter(tmp_path, schema)
        row_groups_out = 0
        try:
            for start in range(0, len(entries), row_group_rows):
                window = entries[start:start + row_group_rows]
                rows = [row for row, _ in window]
                bitvectors = {
                    pid: BitVector.from_bits(
                        [bits[i] for _, bits in window]
                    )
                    for i, pid in enumerate(pids)
                }
                writer.write_row_group(rows, bitvectors=bitvectors)
                row_groups_out += 1
            writer.close()
        except BaseException:  # ciaolint: allow[API006] -- cleanup only; re-raised below
            # Leave no readable file behind: a half-written temp must
            # never be mistaken for a sealed part.
            writer._file.close()
            tmp_path.unlink(missing_ok=True)
            raise
        os.replace(tmp_path, output_path)
    finally:
        for reader in readers:
            reader.close()
    bytes_in = sum(Path(p).stat().st_size for p in inputs)
    return RewriteStats(
        inputs=len(inputs),
        rows=len(entries),
        row_groups_in=row_groups_in,
        row_groups_out=row_groups_out,
        bytes_in=bytes_in,
        bytes_out=output_path.stat().st_size,
        cluster_by=cluster_by,
    )
