"""Data-skipping analysis utilities (paper §VI-B).

The skipping *mechanism* lives in the engine's
:class:`~repro.engine.operators.SkippingScan`; this module provides the
measurement side used by experiments: given a loaded table and a query, how
many tuples and row groups would bit-vector intersection eliminate?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..bitvec.bitvector import BitVector, intersect_all
from ..core.predicates import Query
from ..engine.catalog import TableEntry
from ..storage.columnar import ParquetLiteReader


@dataclass(frozen=True)
class SkippingEstimate:
    """Predicted effect of data skipping for one query on one table."""

    predicate_ids: List[int]
    total_rows: int
    surviving_rows: int
    row_groups: int
    skippable_row_groups: int

    @property
    def tuples_skipped(self) -> int:
        """Rows eliminated before materialization."""
        return self.total_rows - self.surviving_rows

    @property
    def skip_fraction(self) -> float:
        """Fraction of stored tuples skipped."""
        if self.total_rows == 0:
            return 0.0
        return self.tuples_skipped / self.total_rows

    @property
    def benefits(self) -> bool:
        """True if skipping removes at least one tuple (Fig. 6's metric)."""
        return self.predicate_ids != [] and self.tuples_skipped > 0


def query_predicate_ids(query: Query, table: TableEntry) -> List[int]:
    """Pushed-down predicate ids among *query*'s clauses."""
    ids = [
        table.pushdown[c] for c in query.clauses if c in table.pushdown
    ]
    return sorted(set(ids))


def resolve_group_mask(reader: ParquetLiteReader, group_index: int,
                       predicate_ids: Sequence[int]) -> Optional[BitVector]:
    """AND the stored vectors for *predicate_ids* in one row group.

    Returns None when any id lacks a stored vector (scan must not skip).
    """
    meta = reader.meta.row_groups[group_index]
    vectors: List[BitVector] = []
    for pid in predicate_ids:
        bv = meta.bitvectors.get(pid)
        if bv is None:
            return None
        vectors.append(bv)
    if not vectors:
        return None
    return intersect_all(vectors)


def estimate_skipping(query: Query, table: TableEntry) -> SkippingEstimate:
    """Predict skipping effectiveness without executing the query."""
    ids = query_predicate_ids(query, table)
    total = 0
    surviving = 0
    groups = 0
    skippable = 0
    for reader in table.open_readers():
        for index in range(len(reader)):
            meta = reader.meta.row_groups[index]
            groups += 1
            total += meta.row_count
            if not ids:
                surviving += meta.row_count
                continue
            mask = resolve_group_mask(reader, index, ids)
            if mask is None:
                surviving += meta.row_count
                continue
            alive = mask.count()
            surviving += alive
            if alive == 0:
                skippable += 1
    return SkippingEstimate(
        predicate_ids=ids,
        total_rows=total,
        surviving_rows=surviving,
        row_groups=groups,
        skippable_row_groups=skippable,
    )


def skipping_benefit_fractions(queries: Sequence[Query],
                               table: TableEntry) -> Dict[str, float]:
    """Fig. 6's statistic: fraction of queries that benefit from skipping.

    Returns a dict with the benefiting fraction and supporting counts.
    """
    benefiting = 0
    covered = 0
    for query in queries:
        estimate = estimate_skipping(query, table)
        if estimate.predicate_ids:
            covered += 1
        if estimate.benefits:
            benefiting += 1
    n = len(queries)
    return {
        "queries": float(n),
        "covered_fraction": covered / n if n else 0.0,
        "benefiting_fraction": benefiting / n if n else 0.0,
    }
