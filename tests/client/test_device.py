"""Unit tests for the simulated client device."""

import pytest

from repro.client import SimulatedClient, decode_chunk
from repro.core import CostModel, DEFAULT_COEFFICIENTS, manual_plan
from repro.core import clause, key_value
from repro.rawjson import dump_record
from repro.simulate import MemoryChannel

LINES = [dump_record({"i": i, "pad": "x" * 20}) for i in range(25)]
C = clause(key_value("i", 3))


@pytest.fixture()
def plan():
    model = CostModel(DEFAULT_COEFFICIENTS, 60)
    return manual_plan([C], {C: 0.04}, model)


class TestProcess:
    def test_chunking(self, plan):
        client = SimulatedClient("c", plan=plan, chunk_size=10)
        chunks = list(client.process(LINES))
        assert [len(c) for c in chunks] == [10, 10, 5]
        assert client.stats.records == 25
        assert client.stats.chunks == 3

    def test_annotation_attached(self, plan):
        client = SimulatedClient("c", plan=plan, chunk_size=25)
        (chunk,) = client.process(LINES)
        # i = 3 matches semantically; i = 13 and i = 23 are the raw
        # matcher's tolerated false positives ("3" inside "13"/"23").
        assert list(chunk.bitvectors[0].iter_set()) == [3, 13, 23]

    def test_no_plan_means_no_annotation(self):
        client = SimulatedClient("c", plan=None, chunk_size=10)
        chunks = list(client.process(LINES))
        assert all(not c.bitvectors for c in chunks)
        assert client.stats.modeled_us == 0.0

    def test_ship_sends_decodable_payloads(self, plan):
        client = SimulatedClient("c", plan=plan, chunk_size=10)
        channel = MemoryChannel()
        sent = client.ship(LINES, channel)
        assert sent == 3
        assert channel.pending() == 3
        decoded = decode_chunk(channel.receive())
        assert len(decoded) == 10
        assert client.stats.bytes_sent == channel.stats.bytes_sent

    def test_ship_batched_frames(self, plan):
        client = SimulatedClient("c", plan=plan, chunk_size=10)
        channel = MemoryChannel()
        sent = client.ship(LINES, channel, batch_size=2)
        assert sent == 3
        # 3 chunks, batch_size=2 → 2 messages (2 + 1 frames).
        assert channel.pending() == 2
        frames = list(channel.drain_chunks())
        assert len(frames) == 3
        assert all(decode_chunk(f).records for f in frames)
        assert client.stats.bytes_sent == channel.stats.bytes_sent

    def test_ship_batch_size_validated(self, plan):
        client = SimulatedClient("c", plan=plan)
        with pytest.raises(ValueError):
            client.ship(LINES, MemoryChannel(), batch_size=0)


class TestBudgetAccounting:
    def test_budget_respected_normal_speed(self, plan):
        client = SimulatedClient("c", plan=plan, chunk_size=10)
        list(client.process(LINES))
        assert client.budget_respected()

    def test_slow_device_costs_more_virtual_time(self, plan):
        fast = SimulatedClient("f", plan=plan, chunk_size=10)
        slow = SimulatedClient("s", plan=plan, chunk_size=10,
                               speed_factor=0.5)
        list(fast.process(LINES))
        list(slow.process(LINES))
        assert slow.stats.modeled_us == pytest.approx(
            2 * fast.stats.modeled_us
        )
        # Rescaled to calibrated units, the budget still holds.
        assert slow.budget_respected()

    def test_speed_factor_validated(self, plan):
        with pytest.raises(ValueError):
            SimulatedClient("c", plan=plan, speed_factor=0)

    def test_vacuous_budget_without_plan(self):
        client = SimulatedClient("c", plan=None)
        assert client.budget_respected()


class TestUpdatePlan:
    def test_swap_changes_annotations(self, plan):
        client = SimulatedClient("c", plan=None, chunk_size=10)
        first = next(iter(client.process(LINES[:10])))
        assert first.bitvectors == {}
        client.update_plan(plan)
        second = next(iter(client.process(LINES[:10])))
        assert second.predicate_ids == plan.predicate_ids

    def test_swap_to_none_stops_annotating(self, plan):
        client = SimulatedClient("c", plan=plan, chunk_size=10)
        client.update_plan(None)
        chunk = next(iter(client.process(LINES[:10])))
        assert chunk.bitvectors == {}
        assert client.plan is None

    def test_start_chunk_id_offsets_numbering(self, plan):
        client = SimulatedClient("c", plan=plan, chunk_size=10)
        chunks = list(client.process(LINES[:20], start_chunk_id=7))
        assert [c.chunk_id for c in chunks] == [7, 8]
