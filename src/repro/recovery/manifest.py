"""The durable manifest: crash-atomic record of what a server has sealed.

One JSON document per ``(data_dir, table)`` at
``MANIFEST-<table>.json``, rewritten whole on every checkpoint with the
same crash-atomicity discipline as :mod:`repro.compact.rewrite`: write
``<name>.tmp``, flush + fsync, then ``os.replace``.  A crash at any
instant leaves either the previous complete revision or the new one —
never a torn file — so recovery always has a consistent cut to rebuild
from: the sealed parts, the sideline watermarks, the plan and schema,
the ingest-ledger snapshot, and the summary counts *as of the same
moment*.

What the manifest deliberately does not promise: anything past the
last checkpoint.  Acknowledged-but-uncheckpointed batches die with the
process — that is the contract retrying clients are built around (they
replay from the recovered ledger watermark), and it is what bounds a
kill -9's damage to the unsealed tail.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Tuple

#: Format tag checked on load; bump on incompatible layout changes.
MANIFEST_FORMAT = "ciao-manifest/1"

#: Ceiling on the embedded event history (newest kept).
MAX_EVENTS = 64


class ManifestError(RuntimeError):
    """A missing, torn, or incompatible manifest."""


class Manifest:
    """Atomic writer/loader for one table's manifest document.

    The server composes the document (it owns the state and the locks);
    the manifest owns persistence: revision numbering, event-history
    capping, the tmp+replace dance, and load-time validation.
    """

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self.revision = 0

    @staticmethod
    def path_for(data_dir: Path | str, table_name: str) -> Path:
        """The canonical manifest path for a table in *data_dir*."""
        return Path(data_dir) / f"MANIFEST-{table_name}.json"

    @property
    def exists(self) -> bool:
        return self.path.exists()

    def write(self, doc: Dict[str, Any]) -> int:
        """Persist *doc* as the next revision; returns that revision.

        The document is augmented with the format tag and revision
        number, its event list capped to :data:`MAX_EVENTS`, and the
        whole thing replaced atomically — a reader (or a recovery after
        a crash mid-write) sees the old revision or the new one, never
        a mix.
        """
        doc = dict(doc)
        self.revision += 1
        doc["format"] = MANIFEST_FORMAT
        doc["revision"] = self.revision
        doc["events"] = list(doc.get("events", []))[-MAX_EVENTS:]
        encoded = json.dumps(doc, sort_keys=True, indent=1)
        tmp_path = self.path.parent / (self.path.name + ".tmp")
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                handle.write(encoded)
                handle.flush()
                os.fsync(handle.fileno())
        except BaseException:  # ciaolint: allow[API006] -- cleanup-and-reraise: the temp must die on any failure, including KeyboardInterrupt
            # Leave no readable file behind: a half-written temp must
            # never shadow the durable revision.
            tmp_path.unlink(missing_ok=True)
            raise
        os.replace(tmp_path, self.path)
        return self.revision

    @classmethod
    def load(cls, path: Path | str) -> Tuple["Manifest", Dict[str, Any]]:
        """Read and validate the manifest at *path*.

        Returns ``(manifest, document)`` with the manifest positioned
        at the loaded revision, so subsequent writes continue the
        numbering.  Raises :class:`ManifestError` for a missing file,
        undecodable JSON (a torn write can only happen to the ``.tmp``,
        but disks lie), or an unknown format tag.
        """
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ManifestError(
                f"no readable manifest at {path}: {exc}"
            ) from exc
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ManifestError(
                f"manifest at {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise ManifestError(
                f"manifest at {path} must be a JSON object, got "
                f"{type(doc).__name__}"
            )
        if doc.get("format") != MANIFEST_FORMAT:
            raise ManifestError(
                f"manifest at {path} has format {doc.get('format')!r}; "
                f"this build reads {MANIFEST_FORMAT!r}"
            )
        revision = doc.get("revision")
        if not isinstance(revision, int) or revision < 1:
            raise ManifestError(
                f"manifest at {path} has a bad revision: {revision!r}"
            )
        manifest = cls(path)
        manifest.revision = revision
        return manifest, doc
