"""Property-based differential tests: our JSON stack vs the stdlib.

The from-scratch tokenizer/parser/writer must agree with ``json`` on every
valid document — these tests let hypothesis hunt for disagreements.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rawjson import dumps, loads

# JSON-representable values.  Floats are restricted to finite ones; NaN is
# not valid JSON and infinities are rejected by both writers.
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=25,
)


@given(json_values)
@settings(max_examples=200)
def test_own_writer_own_parser_roundtrip(value):
    assert loads(dumps(value)) == value


@given(json_values)
@settings(max_examples=200)
def test_own_writer_output_is_stdlib_compatible(value):
    assert json.loads(dumps(value)) == value


@given(json_values)
@settings(max_examples=200)
def test_own_parser_reads_stdlib_output(value):
    text = json.dumps(value)
    assert loads(text) == json.loads(text)


@given(json_values)
@settings(max_examples=100)
def test_parser_agrees_with_stdlib_on_indented_output(value):
    text = json.dumps(value, indent=2)
    assert loads(text) == json.loads(text)


@given(st.text(max_size=60))
@settings(max_examples=200)
def test_string_escaping_roundtrip(text):
    assert loads(dumps(text)) == text
    assert json.loads(dumps(text)) == text


@given(st.text(max_size=30))
@settings(max_examples=100)
def test_malformed_prefixes_never_crash(text):
    """The parser must raise ValueError (or succeed), never crash."""
    try:
        loads(text)
    except ValueError:
        pass
