"""Fig. 11 — data loading time and ratio vs predicate skewness.

Paper setup: Windows log, 5-query workloads with skewness factor 0.0 /
0.5 / 2.0, one predicate pushed.  Expected shape: only the highly skewed
workload (the pushed predicate appears in every query) enables partial
loading and cuts loading time.
"""

from conftest import config_for, run_once

from repro.bench import emit_table, skewness_experiment

PARAMS = config_for("winlog", n_records=4000, n_queries=5)


def test_fig11_skewness_loading(benchmark, tmp_path, results_dir):
    def experiment():
        return skewness_experiment(tmp_path, config=PARAMS["config"])

    results = run_once(benchmark, experiment)
    rows = [
        (r.level, r.loading_time_s, r.loading_ratio,
         "yes" if r.metrics.partial_loading else "no")
        for r in results
    ]
    emit_table(
        "fig11_skewness_loading",
        ["skewness", "loading time (s)", "loading ratio",
         "partial loading"],
        rows, results_dir, title="Fig 11",
    )

    by_level = {r.level: r for r in results}
    assert by_level["skew=0.0"].loading_ratio == 1.0
    assert by_level["skew=0.5"].loading_ratio == 1.0
    assert by_level["skew=2.0"].loading_ratio < 0.6
    assert (
        by_level["skew=2.0"].loading_time_s
        < by_level["skew=0.0"].loading_time_s
    )
