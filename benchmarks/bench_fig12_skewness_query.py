"""Fig. 12 — per-query execution time vs predicate skewness.

Same workloads as Fig. 11.  Expected shape: at skew 0.0 only q0 contains
the pushed predicate and benefits; at 0.5 a couple of queries benefit; at
2.0 every query contains it and all five drop.
"""

from conftest import config_for, run_once

from repro.bench import emit_table, skewness_experiment

PARAMS = config_for("winlog", n_records=4000, n_queries=5)


def test_fig12_skewness_query(benchmark, tmp_path, results_dir):
    def experiment():
        return skewness_experiment(tmp_path, config=PARAMS["config"])

    results = run_once(benchmark, experiment)
    headers = ["query"] + [r.level for r in results] + ["baseline(0.0)"]
    rows = []
    for i in range(5):
        row = [f"q{i}"]
        row.extend(r.per_query_s[i] for r in results)
        row.append(results[0].baseline.per_query_wall_s[i])
        rows.append(row)
    emit_table("fig12_skewness_query", headers, rows, results_dir,
               title="Fig 12")

    counts = [r.metrics.queries_using_skipping for r in results]
    # 1 / 2 / 5 queries include the pushed predicate (paper: 1 / 3 / 5;
    # our partition search lands on 2 for the middle level — same shape).
    assert counts[0] == 1
    assert counts == sorted(counts)
    assert counts[-1] == 5
