"""Unit tests for the JSON writer."""

import json

import pytest

from repro.rawjson import dump_record, dumps, escape_string, loads


class TestScalars:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, "null"),
            (True, "true"),
            (False, "false"),
            (0, "0"),
            (-7, "-7"),
            (1.5, "1.5"),
            (2.0, "2.0"),
            ("hi", '"hi"'),
        ],
    )
    def test_rendering(self, value, expected):
        assert dumps(value) == expected

    def test_whole_floats_stay_floats_on_reparse(self):
        assert isinstance(loads(dumps(3.0)), float)

    def test_nan_and_inf_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                dumps(bad)


class TestEscaping:
    def test_special_characters(self):
        assert escape_string('a"b\\c\nd\te') == 'a\\"b\\\\c\\nd\\te'

    def test_control_characters_become_unicode_escapes(self):
        assert escape_string("\x01") == "\\u0001"

    def test_stdlib_can_read_escapes(self):
        tricky = {"k\n": 'v"\\\t\x02'}
        assert json.loads(dumps(tricky)) == tricky


class TestContainers:
    def test_compact_output(self):
        text = dumps({"a": [1, 2], "b": {"c": True}})
        assert " " not in text
        assert text == '{"a":[1,2],"b":{"c":true}}'

    def test_sort_keys(self):
        assert dumps({"b": 1, "a": 2}, sort_keys=True) == '{"a":2,"b":1}'

    def test_insertion_order_by_default(self):
        assert dumps({"b": 1, "a": 2}) == '{"b":1,"a":2}'

    def test_tuple_serializes_as_array(self):
        assert dumps((1, 2)) == "[1,2]"

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            dumps({1: "x"})

    def test_unserializable_type_rejected(self):
        with pytest.raises(TypeError):
            dumps({"x": object()})


class TestDumpRecord:
    def test_single_line(self):
        line = dump_record({"msg": "two\nlines"})
        assert "\n" not in line
        assert loads(line) == {"msg": "two\nlines"}

    def test_rejects_non_dicts(self):
        with pytest.raises(TypeError):
            dump_record([1, 2])


class TestRoundtrip:
    def test_own_parser_roundtrip(self):
        record = {
            "s": "hé\n\"quoted\"",
            "i": -42,
            "f": 2.5,
            "b": False,
            "n": None,
            "arr": [1, "two", None],
            "obj": {"inner": [True]},
        }
        assert loads(dumps(record)) == record
