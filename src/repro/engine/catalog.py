"""Catalog: tables as (Parquet-lite files + sideline store + pushdown map).

A CIAO table is not just files: it also remembers *which predicates were
pushed down* (clause → predicate id), because that mapping is what lets the
planner turn a query's WHERE clauses into bit-vector lookups — the
predicate hashmap of Fig. 2, server side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..core.predicates import Clause
from ..storage.columnar import ParquetLiteReader
from ..storage.jsonstore import JsonSideStore


class CatalogError(KeyError):
    """Unknown table or inconsistent registration."""


@dataclass
class TableEntry:
    """One queryable table."""

    name: str
    parquet_paths: List[Path] = field(default_factory=list)
    side_store: Optional[JsonSideStore] = None
    #: Pushed-down clause → predicate id (empty when nothing was pushed).
    pushdown: Dict[Clause, int] = field(default_factory=dict)
    _readers: Optional[List[ParquetLiteReader]] = field(
        default=None, repr=False, compare=False
    )

    def open_readers(self) -> List[ParquetLiteReader]:
        """Open (and cache) readers for this table's Parquet-lite files.

        Files are write-once — the loader seals each file before queries
        run — so cached readers stay valid until :meth:`invalidate` is
        called after new files are registered.  Paths that do not exist yet
        are skipped: a freshly registered table is legitimately empty.
        """
        if self._readers is None:
            self._readers = [
                ParquetLiteReader(path)
                for path in self.parquet_paths
                if Path(path).exists()
            ]
        return self._readers

    def invalidate(self) -> None:
        """Close cached readers; call after loading new files."""
        if self._readers is not None:
            for reader in self._readers:
                reader.close()
            self._readers = None

    def pushed_id(self, clause: Clause) -> Optional[int]:
        """Predicate id for *clause* if it was pushed down."""
        return self.pushdown.get(clause)

    @property
    def has_sideline(self) -> bool:
        """True if a (non-empty) raw sideline exists for this table."""
        return (
            self.side_store is not None
            and self.side_store.record_count > 0
        )


class Catalog:
    """Name → table registry."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableEntry] = {}

    def register(self, entry: TableEntry) -> None:
        """Add or replace a table."""
        self._tables[entry.name] = entry

    def lookup(self, name: str) -> TableEntry:
        """Fetch a table or raise :class:`CatalogError`."""
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "(none)"
            raise CatalogError(
                f"unknown table {name!r}; registered: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> List[str]:
        """Registered table names, sorted."""
        return sorted(self._tables)
