"""Reference row-at-a-time interpreter over the same operator trees.

This is the engine's pre-batch volcano semantics, preserved verbatim as
an *oracle*: every operator materializes dict rows and evaluates
expressions per tuple, exactly like the historical ``execute()``
implementations.  It exists for two jobs:

* the equivalence property tests assert the batch engine returns
  identical rows (values **and** ordering) to this interpreter across
  the whole SQL surface;
* ``benchmarks/bench_query_engine.py`` measures the batch engine's
  speedup against it — the row path *is* the baseline being optimized
  away, so keeping it runnable keeps the claim honest.

It is deliberately not wired into any production path; plan trees built
by :func:`repro.engine.planner.plan_query` are interpreted structurally.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List

from ..bitvec.bitvector import intersect_all
from .executor import QueryResult
from .operators import (
    Aggregate,
    ChainScan,
    ExecutionStats,
    Filter,
    GroupedAggregate,
    Limit,
    Operator,
    ParquetScan,
    Project,
    SidelineScan,
    SkippingScan,
    _AggState,
    _update_state,
)
from .planner import PlanInfo


def iter_rows(op: Operator, stats: ExecutionStats
              ) -> Iterator[Dict[str, Any]]:
    """Row-at-a-time interpretation of *op* (the pre-batch semantics)."""
    if isinstance(op, ParquetScan):
        yield from _scan_parquet(op, stats)
    elif isinstance(op, SkippingScan):
        yield from _scan_skipping(op, stats)
    elif isinstance(op, SidelineScan):
        stats.scanned_sideline = True
        for record in op._store.iter_parsed():
            stats.sideline_records_parsed += 1
            stats.rows_examined += 1
            yield record
    elif isinstance(op, ChainScan):
        for child in op._children:
            yield from iter_rows(child, stats)
    elif isinstance(op, Filter):
        predicate = op._predicate
        for row in iter_rows(op._child, stats):
            if predicate.evaluate(row):
                yield row
    elif isinstance(op, Project):
        columns = op._columns
        for row in iter_rows(op._child, stats):
            yield {name: row.get(name) for name in columns}
    elif isinstance(op, Limit):
        if op._n == 0:
            return
        emitted = 0
        for row in iter_rows(op._child, stats):
            yield row
            emitted += 1
            if emitted >= op._n:
                return
    elif isinstance(op, Aggregate):
        yield _aggregate(op, stats)
    elif isinstance(op, GroupedAggregate):
        yield from _grouped(op, stats)
    else:
        # Unknown operator (e.g. _EmptyScan, test doubles): its own row
        # surface is already row-at-a-time.
        yield from op.execute(stats)


def run_plan_rows(plan: Operator, info: PlanInfo) -> QueryResult:
    """Drive a plan with the row interpreter; mirrors ``run_plan``."""
    stats = ExecutionStats()
    start = time.perf_counter()
    rows = list(iter_rows(plan, stats))
    elapsed = time.perf_counter() - start
    stats.rows_emitted = len(rows)
    return QueryResult(
        rows=rows, stats=stats, plan_info=info, wall_seconds=elapsed
    )


def _scan_parquet(op: ParquetScan, stats: ExecutionStats):
    for group in op._reader.row_groups():
        stats.row_groups_total += 1
        if op._prune is not None and op._prune(group.meta):
            stats.row_groups_pruned_by_zonemap += 1
            stats.tuples_pruned_by_zonemap += group.row_count
            continue
        for row in group.rows(columns=op._columns):
            stats.rows_examined += 1
            yield row
        group.clear_cache()


def _scan_skipping(op: SkippingScan, stats: ExecutionStats):
    stats.used_data_skipping = True
    for group in op._reader.row_groups():
        stats.row_groups_total += 1
        if op._prune is not None and op._prune(group.meta):
            stats.row_groups_pruned_by_zonemap += 1
            stats.tuples_pruned_by_zonemap += group.row_count
            continue
        vectors = []
        missing = False
        for pid in op._ids:
            bv = group.meta.bitvectors.get(pid)
            if bv is None:
                missing = True
                break
            vectors.append(bv)
        if missing:
            for row in group.rows(columns=op._columns):
                stats.rows_examined += 1
                yield row
            group.clear_cache()
            continue
        mask = intersect_all(vectors)
        indices = list(mask.iter_set())
        stats.tuples_skipped += group.row_count - len(indices)
        if not indices:
            stats.row_groups_skipped += 1
            continue
        for row in group.rows(columns=op._columns, indices=indices):
            stats.rows_examined += 1
            yield row
        group.clear_cache()


def _aggregate(op: Aggregate, stats: ExecutionStats) -> Dict[str, Any]:
    states = [_AggState() for _ in op._items]
    for row in iter_rows(op._child, stats):
        for item, state in zip(op._items, states):
            if item.column == "*":
                state.count += 1
                continue
            value = row.get(item.column)
            if value is not None:
                _update_state(state, value)
    result: Dict[str, Any] = {}
    for item, state in zip(op._items, states):
        result[item.label] = Aggregate._finalize(item.aggregate, state)
    return result


def _grouped(op: GroupedAggregate, stats: ExecutionStats):
    groups: Dict[tuple, List[_AggState]] = {}
    order: List[tuple] = []
    agg_items = [i for i in op._items if i.aggregate is not None]
    for row in iter_rows(op._child, stats):
        key = tuple(row.get(c) for c in op._group_columns)
        states = groups.get(key)
        if states is None:
            states = [_AggState() for _ in agg_items]
            groups[key] = states
            order.append(key)
        for item, state in zip(agg_items, states):
            if item.column == "*":
                state.count += 1
                continue
            value = row.get(item.column)
            if value is not None:
                _update_state(state, value)
    for key in order:
        states = groups[key]
        result: Dict[str, Any] = {}
        agg_index = 0
        for item in op._items:
            if item.aggregate is None:
                result[item.label] = key[
                    op._group_columns.index(item.column)
                ]
            else:
                result[item.label] = Aggregate._finalize(
                    item.aggregate, states[agg_index]
                )
                agg_index += 1
        yield result
