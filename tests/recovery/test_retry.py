"""RetryPolicy: bounded, deterministic, validated."""

import pytest

from repro.recovery import RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -0.1},
        {"max_delay": -1.0},
        {"multiplier": 0.5},
        {"jitter": 1.0},
        {"jitter": -0.1},
        {"deadline": 0.0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestSchedule:
    def test_pause_count_is_bounded(self):
        policy = RetryPolicy(max_attempts=4)
        assert len(list(policy.backoff())) == 3
        assert len(list(policy.pauses())) == 4

    def test_first_pause_is_zero(self):
        pauses = list(RetryPolicy(max_attempts=3).pauses())
        assert pauses[0] == 0.0

    def test_single_attempt_never_pauses(self):
        assert list(RetryPolicy(max_attempts=1).pauses()) == [0.0]
        assert list(RetryPolicy(max_attempts=1).backoff()) == []

    def test_exponential_growth_with_ceiling(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, max_delay=0.4,
            multiplier=2.0, jitter=0.0,
        )
        assert list(policy.backoff()) == pytest.approx(
            [0.1, 0.2, 0.4, 0.4, 0.4]
        )

    def test_same_seed_same_pauses(self):
        a = RetryPolicy(max_attempts=8, jitter=0.3, seed=42)
        b = RetryPolicy(max_attempts=8, jitter=0.3, seed=42)
        assert list(a.backoff()) == list(b.backoff())
        # ... and a fresh iterator restarts the stream.
        assert list(a.backoff()) == list(a.backoff())

    def test_different_seed_different_jitter(self):
        a = RetryPolicy(max_attempts=8, jitter=0.3, seed=1)
        b = RetryPolicy(max_attempts=8, jitter=0.3, seed=2)
        assert list(a.backoff()) != list(b.backoff())

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            max_attempts=20, base_delay=1.0, max_delay=1.0,
            multiplier=1.0, jitter=0.25, seed=7,
        )
        for pause in policy.backoff():
            assert 0.75 <= pause <= 1.25
