"""Table IV — robustness of the cost model across hardware platforms.

Paper setup: 100 random predicates per dataset timed on a 5 GB sample,
multivariate linear regression, R² per platform: local server 0.897,
Alibaba Cloud ECS 0.666 (hypervisor interference), PKU cluster 0.978.

Here the three platforms are simulated noise profiles (DESIGN.md §2) fed
through the same regression, plus a fourth row fitting *real* ``str.find``
timings measured on the current host.
"""

from conftest import run_once

from repro.bench import cost_model_experiment, emit, emit_json, format_table


def test_table4_cost_model_robustness(benchmark, results_dir):
    def experiment():
        return cost_model_experiment(
            predicates_per_dataset=100,
            hit_rate_records=400,
            include_real_local=True,
            real_records=250,
        )

    rows = run_once(benchmark, experiment)
    table = format_table(
        ["platform", "hardware", "R² (ours)", "R² (paper)"],
        [
            (r.platform, r.hardware, r.r_squared, r.paper_r_squared)
            for r in rows
        ],
    )
    details = "\n".join(
        f"{r.platform}: {r.report.summary()}" for r in rows
    )
    emit(
        "table4_cost_model",
        f"== Table IV ==\n{table}\n\nfit details:\n{details}",
        results_dir,
    )
    emit_json("table4_cost_model", {
        "headers": ["platform", "hardware", "r_squared",
                    "paper_r_squared"],
        "rows": [
            [r.platform, r.hardware, r.r_squared, r.paper_r_squared]
            for r in rows
        ],
    }, results_dir)

    simulated = {r.platform: r for r in rows[:3]}
    # Paper-matching values within tolerance...
    for name, row in simulated.items():
        assert abs(row.r_squared - row.paper_r_squared) < 0.2, name
    # ...and, more importantly, the ordering cloud < local < cluster.
    assert (
        simulated["alibaba"].r_squared
        < simulated["local"].r_squared
        < simulated["pku"].r_squared
    )
    # The real-host fit should be decent: the model captures str.find.
    this_machine = rows[3]
    assert this_machine.r_squared > 0.5
