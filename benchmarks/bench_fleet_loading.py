"""Coordinated fleet loading vs 1-client loading, plus straggler recovery.

Runs entirely through the deployment API (`repro.api.CiaoSession`): the
serial baseline and the fleets differ only in their `DeploymentConfig`,
and both sides pay the same encode → channel → decode protocol path, so
the comparison is transport-for-transport fair.

Three claims are measured:

1. **Fleet equivalence** — an 8-client heterogeneous fleet (Table IV
   hardware profiles, Zipf-skewed data shares, per-client budget
   allocation) produces query results *identical* to serial single-client
   ingest of the same records.  Asserted unconditionally.
2. **Straggler recovery** — the same fleet with one client killed
   mid-load still completes with zero record loss
   (``received == loaded + sidelined + malformed == all records``) and
   identical query results; survivors absorb the dead client's remaining
   partition.  Asserted unconditionally.
3. **Concurrency speedup** — the fleet (client workers shipping
   concurrently into a 4-shard fork-process pipeline) must beat 1-client
   serial loading by ≥1.5× wall-clock.  Like the other parallel benches
   this is *core-gated*: on fewer than 4 usable cores the fleet cannot
   parallelize, so the bench only guards a no-pathological-overhead floor
   and reports the measured ratio.  Override with
   ``REPRO_BENCH_MIN_FLEET_SPEEDUP`` (a float) to pin it in CI.

Chunk framing is batched (``ship_batch=DEFAULT_SHIP_BATCH``) per the
measured amortization win — see ``bench_parallel_ingest.py`` and
``benchmarks/results/batched_framing.txt``.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_fleet_loading.py``
(set ``REPRO_BENCH_SMOKE=1`` for a <60 s smoke configuration).
"""

from __future__ import annotations

import os

from conftest import run_once

from repro.api import (
    Budget,
    CiaoSession,
    ClientPopulation,
    DeploymentConfig,
    LineSource,
)
from repro.bench import emit, emit_json, fleet_table
from repro.client import DEFAULT_SHIP_BATCH
from repro.data import make_generator
from repro.workload import table3_workload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_RECORDS = 1600 if SMOKE else 6000
CHUNK_SIZE = 200
N_CLIENTS = 8
N_SHARDS = 4
AGGREGATE_BUDGET = Budget(8.0)
SEED = 20260727

SERIAL = DeploymentConfig(mode="serial", chunk_size=CHUNK_SIZE,
                          ship_batch=DEFAULT_SHIP_BATCH)


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _min_fleet_speedup() -> float:
    override = os.environ.get("REPRO_BENCH_MIN_FLEET_SPEEDUP")
    if override:
        return float(override)
    cores = _effective_cores()
    if cores >= N_SHARDS:
        return 1.5
    if cores >= 2:
        return 1.1
    # Single core: concurrency cannot beat serial; only guard against
    # pathological coordination overhead.
    return 0.4


def fleet_config(population: ClientPopulation) -> DeploymentConfig:
    return DeploymentConfig(
        mode="fleet",
        n_shards=N_SHARDS,
        shard_mode="process",
        chunk_size=CHUNK_SIZE,
        ship_batch=DEFAULT_SHIP_BATCH,
        population=population,
        aggregate_budget=AGGREGATE_BUDGET,
        realloc_interval=max(4, N_RECORDS // CHUNK_SIZE // 4),
    )


def _prepare():
    generator = make_generator("yelp", SEED)
    source = LineSource(generator.raw_lines(N_RECORDS), name="yelp")
    workload = table3_workload("yelp", "A", seed=SEED, n_queries=15)
    return source, workload


def _load(tmp_path, tag, source, workload, config):
    """One session-driven load; returns (session, unified report)."""
    session = CiaoSession(
        workload, source=source, config=config,
        data_dir=tmp_path / tag, seed=SEED,
    )
    session.plan(
        Budget(20.0),
        sample_size=min(1000, N_RECORDS),
        avg_record_length=160,
    )
    report = session.load().result()
    return session, report


def _answers(session, workload):
    return [session.query(q.sql("t")).scalar() for q in workload.queries]


def test_fleet_loading(benchmark, tmp_path, results_dir):
    source, workload = _prepare()
    population = ClientPopulation.generate(N_CLIENTS, seed=SEED)
    fat = max(population, key=lambda s: s.share).client_id
    killed_population = population.with_kill(fat, after_chunks=1)

    def experiment():
        serial_session, serial_report = _load(
            tmp_path, "serial", source, workload, SERIAL
        )
        fleet_session, fleet_report = _load(
            tmp_path, "fleet", source, workload,
            fleet_config(population),
        )
        kill_session, kill_report = _load(
            tmp_path, "killed", source, workload,
            fleet_config(killed_population),
        )
        return (serial_session, serial_report, fleet_session,
                fleet_report, kill_session, kill_report)

    (serial_session, serial_report, fleet_session, fleet_report,
     kill_session, kill_report) = run_once(benchmark, experiment)

    expected = _answers(serial_session, workload)

    # 1. Fleet result ≡ serial single-client ingest of the same records.
    assert serial_report.no_record_loss
    assert fleet_report.no_record_loss
    assert _answers(fleet_session, workload) == expected, (
        "fleet answers diverged from serial ingest"
    )

    # 2. One client killed mid-load: zero record loss, same answers,
    #    survivors absorbed the dead client's partition.
    assert kill_report.fleet.killed_clients == [fat]
    assert kill_report.no_record_loss, (
        f"record loss after killing {fat}: "
        f"received={kill_report.received} of {N_RECORDS}"
    )
    assert _answers(kill_session, workload) == expected, (
        "killed-fleet answers diverged from serial ingest"
    )
    assert kill_report.fleet.reassignment_events > 0
    dead = kill_report.fleet.client(fat)
    assert dead.shipped_records < dead.assigned_records

    # 3. Core-gated concurrency speedup (both sides timed end-to-end
    #    through the identical session/protocol path).
    serial_s = serial_report.wall_seconds
    fleet_s = fleet_report.wall_seconds
    speedup = serial_s / fleet_s
    floor = _min_fleet_speedup()
    cores = _effective_cores()
    lines_out = [
        f"coordinated fleet loading, yelp-style stream "
        f"({N_RECORDS} records, {N_CLIENTS} clients, {N_SHARDS} shards, "
        f"chunk {CHUNK_SIZE}, ship batch {DEFAULT_SHIP_BATCH}):",
        "",
        fleet_table(fleet_report.fleet),
        "",
        f"straggler run: killed {fat} after 1 chunk — "
        f"{kill_report.fleet.reassignment_events} reassignment events "
        f"moved {kill_report.fleet.reassigned_records} records to "
        f"survivors; no record loss: {kill_report.no_record_loss}",
        "",
        f"  effective cores : {cores}",
        f"  1-client serial : {serial_s:8.2f} s "
        f"({N_RECORDS / serial_s:8.0f} rec/s)",
        f"  {N_CLIENTS}-client fleet  : {fleet_s:8.2f} s "
        f"({N_RECORDS / fleet_s:8.0f} rec/s)",
        f"  speedup         : {speedup:8.2f}x (floor {floor:.1f}x)",
    ]
    emit("fleet_loading", "\n".join(lines_out), results_dir)
    emit_json("BENCH_fleet_loading", {
        "config": {
            "n_records": N_RECORDS,
            "n_clients": N_CLIENTS,
            "n_shards": N_SHARDS,
            "chunk_size": CHUNK_SIZE,
            "ship_batch": DEFAULT_SHIP_BATCH,
            "smoke": SMOKE,
            "effective_cores": cores,
        },
        "serial_seconds": serial_s,
        "fleet_seconds": fleet_s,
        "speedup": speedup,
        "speedup_floor": floor,
        "fleet_no_record_loss": fleet_report.no_record_loss,
        "straggler": {
            "killed_client": fat,
            "reassignment_events":
                kill_report.fleet.reassignment_events,
            "reassigned_records": kill_report.fleet.reassigned_records,
            "no_record_loss": kill_report.no_record_loss,
            "wall_seconds": kill_report.wall_seconds,
        },
    }, results_dir)

    for session in (serial_session, fleet_session, kill_session):
        session.close()

    assert speedup >= floor, (
        f"{N_CLIENTS}-client fleet only {speedup:.2f}x over 1-client "
        f"loading (floor {floor:.1f}x on {cores} cores)"
    )
