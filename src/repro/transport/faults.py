"""Chaos harness: seeded fault schedules injected into a channel.

Where :class:`~repro.transport.decorators.LossyChannel` models a lossy
link under a *reliable* protocol (drops are retransmitted, data never
lost), this module models the faults that protocol itself must survive:
connections that die mid-conversation, peers that stall, frames that
arrive truncated, and payloads whose bytes were flipped in flight.

A :class:`FaultPlan` is a deterministic schedule — fault kind per send
operation index — generated entirely from an explicit seed, so any
failing chaos run replays exactly.  :class:`FaultyChannel` applies the
plan as a decorator over any channel (composing over
:class:`~repro.transport.sockets.SocketChannel` like the existing
decorators), which is what lets the chaos suite assert the end-to-end
invariants that matter: zero record loss and byte-identical final
answers under every injected schedule, with the exactly-once ingest
ledger absorbing the replays.

Faults act on the *send* direction — the injected damage travels to the
peer (a truncated or corrupted message arrives malformed; a disconnect
kills the transport under both directions), which exercises the
receiver's validation and the sender's retry path at once.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from .base import Channel, ChannelDecorator, TransportError

#: Fault kinds a plan may schedule, in roughly increasing subtlety.
FAULT_KINDS = ("disconnect", "stall", "drop", "truncate", "corrupt")

#: Ceiling on one injected stall, seconds.  Chaos runs must stay fast:
#: a stall exercises timeout paths, not wall clocks.
MAX_STALL_SECONDS = 0.25


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        op: 0-based index of the send operation the fault strikes.
        kind: One of :data:`FAULT_KINDS`.
        magnitude: Kind-specific knob in ``[0, 1)`` — stall duration
            fraction of :data:`MAX_STALL_SECONDS`, truncation fraction
            of the payload kept, corruption position fraction.
    """

    op: int
    kind: str
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.op < 0:
            raise ValueError(f"fault op index must be >= 0, got {self.op}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if not 0.0 <= self.magnitude < 1.0:
            raise ValueError(
                f"fault magnitude must be in [0, 1), got {self.magnitude!r}"
            )


class FaultPlan:
    """A deterministic schedule of faults over send-operation indices.

    Built either explicitly from events or via :meth:`generate`, which
    derives the whole schedule from *seed* — same seed, same faults,
    always (the :class:`LossyChannel` replayability discipline).
    """

    def __init__(self, events: Sequence[FaultEvent], seed: int):
        if seed is None:
            raise ValueError(
                "FaultPlan requires an explicit seed: chaos schedules "
                "must be replayable"
            )
        by_op: Dict[int, FaultEvent] = {}
        for event in events:
            if event.op in by_op:
                raise ValueError(
                    f"duplicate fault for op {event.op}: one fault per "
                    f"send operation"
                )
            by_op[event.op] = event
        self.seed = seed
        self.events = tuple(sorted(by_op.values(), key=lambda e: e.op))
        self._by_op = by_op

    @classmethod
    def generate(cls, seed: int, n_ops: int = 64,
                 fault_rate: float = 0.1,
                 kinds: Sequence[str] = FAULT_KINDS) -> "FaultPlan":
        """A random-but-replayable schedule over the first *n_ops* sends.

        Each operation independently draws a fault with probability
        *fault_rate*; kind and magnitude come from the same seeded
        stream, so the full schedule is a pure function of the
        arguments.
        """
        if not 0.0 <= fault_rate < 1.0:
            raise ValueError(
                f"fault_rate must be in [0, 1), got {fault_rate!r}"
            )
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        rng = random.Random(seed)
        events = []
        for op in range(n_ops):
            if rng.random() < fault_rate:
                events.append(FaultEvent(
                    op=op,
                    kind=rng.choice(list(kinds)),
                    magnitude=rng.random(),
                ))
        return cls(events, seed)

    def for_op(self, op: int) -> Optional[FaultEvent]:
        """The fault scheduled for send operation *op*, if any."""
        return self._by_op.get(op)

    def __len__(self) -> int:
        return len(self.events)


class OpCounter:
    """A shared send-operation counter.

    Reconnecting clients build a fresh channel per dial; sharing one
    counter across the :class:`FaultyChannel` wrappers keeps a single
    :class:`FaultPlan` marching forward over the whole conversation
    instead of restarting at op 0 after every reconnect.
    """

    def __init__(self, start: int = 0):
        self.value = start

    def next(self) -> int:
        op = self.value
        self.value += 1
        return op


class FaultyChannel(ChannelDecorator):
    """Apply a :class:`FaultPlan` to a channel's send operations.

    Per scheduled fault kind:

    * ``disconnect`` — closes the underlying channel and raises
      :class:`TransportError`; both directions die, like a peer reset.
    * ``stall`` — sleeps ``magnitude * MAX_STALL_SECONDS`` before
      sending (exercises receive deadlines), then delivers normally.
    * ``drop`` — silently discards the payload; the peer never sees it,
      so the sender's reply timeout must fire.
    * ``truncate`` — delivers only a ``magnitude`` prefix of the
      payload; the peer's codec must reject the remainder as malformed.
    * ``corrupt`` — delivers the full length with one byte flipped at a
      seed-derived position; framing survives, content validation (CRC,
      codec strictness) must catch it.

    Fault counts land in :attr:`injected` for assertions.  *sleep* is
    injectable so stall tests need not actually wait.
    """

    def __init__(self, inner: Channel, plan: FaultPlan,
                 counter: Optional[OpCounter] = None,
                 sleep: Callable[[float], None] = time.sleep):
        super().__init__(inner)
        self.plan = plan
        self._counter = counter if counter is not None else OpCounter()
        self._sleep = sleep
        self._rng = random.Random(plan.seed)
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def send(self, payload: bytes) -> None:
        event = self.plan.for_op(self._counter.next())
        if event is None:
            super().send(payload)
            return
        self.injected[event.kind] += 1
        if event.kind == "disconnect":
            self.inner.close()
            raise TransportError(
                f"injected disconnect at op {event.op}"
            )
        if event.kind == "stall":
            self._sleep(event.magnitude * MAX_STALL_SECONDS)
            super().send(payload)
            return
        if event.kind == "drop":
            # Never reaches the wire; account it like a lossy-link drop.
            self.stats.record_drop(len(payload))
            return
        if event.kind == "truncate":
            keep = max(1, int(len(payload) * event.magnitude))
            super().send(bytes(payload[:keep]))
            return
        # corrupt: flip one byte at a seed-derived position.
        data = bytearray(payload)
        if data:
            position = int(event.magnitude * len(data)) % len(data)
            data[position] ^= 0xFF
        super().send(bytes(data))


def faulty_dialer(dial: Callable[[], Channel], plan: FaultPlan,
                  counter: Optional[OpCounter] = None
                  ) -> Tuple[Callable[[], Channel], OpCounter]:
    """Wrap a channel factory so every dialed channel shares *plan*.

    Returns ``(factory, counter)``: the factory hands back each new
    connection wrapped in a :class:`FaultyChannel` whose op counter
    continues where the previous connection's left off, and the counter
    is exposed so tests can assert how far the schedule ran.
    """
    shared = counter if counter is not None else OpCounter()

    def _dial() -> Channel:
        return FaultyChannel(dial(), plan, counter=shared)

    return _dial, shared
