"""The query log: one structured record per executed query.

This is the workload history the ROADMAP's adaptive-layout work feeds
on — which predicate columns are hot, how selective they are, how much
data skipping actually saved.  The :class:`~repro.engine.executor.
Executor` appends one :class:`QueryLogRecord` per query (fingerprint,
predicate columns, selectivity, rows/row-groups scanned vs. skipped,
snapshot-cache outcome, latency, client id) and ``CiaoSession.
query_log()`` drains it.

Client attribution crosses the service boundary via a context variable:
the service wraps query execution in :func:`client_scope`, and the
executor — several frames down, with no client parameter — reads
:func:`current_client_id`.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from ..analysis.sanitizer import make_lock

DEFAULT_QUERY_LOG_CAPACITY = 4096

#: Who is asking, when the executor has no client parameter in scope.
_CLIENT_ID: ContextVar[str] = ContextVar(
    "repro_obs_client_id", default="local"
)


@contextmanager
def client_scope(client_id: str) -> Iterator[None]:
    """Attribute queries executed inside this block to *client_id*."""
    token = _CLIENT_ID.set(client_id)
    try:
        yield
    finally:
        _CLIENT_ID.reset(token)


def current_client_id() -> str:
    """The client id queries in this context are attributed to."""
    return _CLIENT_ID.get()


@dataclass
class QueryLogRecord:
    """Everything a layout optimizer wants to know about one query."""

    fingerprint: str
    table: str
    sql: str
    predicate_columns: Tuple[str, ...] = ()
    selectivity: float = 1.0
    rows_examined: int = 0
    rows_emitted: int = 0
    row_groups_scanned: int = 0
    row_groups_skipped: int = 0
    #: Of the scanned groups, how many zone maps pruned without
    #: decoding (a subset of ``row_groups_scanned``, which counts
    #: every group the bit-vector path did not skip outright).
    row_groups_pruned: int = 0
    tuples_skipped: int = 0
    snapshot_cache: str = "none"  # "none" | "hit" | "miss" | "mixed"
    wall_seconds: float = 0.0
    client_id: str = "local"
    trace_id: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "table": self.table,
            "sql": self.sql,
            "predicate_columns": list(self.predicate_columns),
            "selectivity": self.selectivity,
            "rows_examined": self.rows_examined,
            "rows_emitted": self.rows_emitted,
            "row_groups_scanned": self.row_groups_scanned,
            "row_groups_skipped": self.row_groups_skipped,
            "row_groups_pruned": self.row_groups_pruned,
            "tuples_skipped": self.tuples_skipped,
            "snapshot_cache": self.snapshot_cache,
            "wall_seconds": self.wall_seconds,
            "client_id": self.client_id,
            "trace_id": self.trace_id,
            "attrs": dict(self.attrs),
        }


class QueryLog:
    """A thread-safe bounded log of :class:`QueryLogRecord`.

    Bounded so a long-lived server can't grow without limit: beyond
    *capacity* the oldest records fall off (total appended is still
    available as :attr:`total`).
    """

    def __init__(self, capacity: int = DEFAULT_QUERY_LOG_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = make_lock("obs.QueryLog._lock")
        # guarded-by: _lock
        self._records: Deque[QueryLogRecord] = deque(maxlen=capacity)
        self._total = 0  # guarded-by: _lock

    @staticmethod
    def null() -> "QueryLog":
        """The shared no-op log (the default everywhere)."""
        return NULL_QUERY_LOG

    @property
    def enabled(self) -> bool:
        return True

    @property
    def total(self) -> int:
        """Records ever appended (including ones evicted by capacity)."""
        with self._lock:
            return self._total

    def append(self, record: QueryLogRecord) -> None:
        with self._lock:
            self._records.append(record)
            self._total += 1

    def records(self) -> List[QueryLogRecord]:
        """The retained records, oldest first (log keeps them)."""
        with self._lock:
            return list(self._records)

    def drain(self) -> List[QueryLogRecord]:
        """Remove and return the retained records, oldest first."""
        with self._lock:
            drained = list(self._records)
            self._records.clear()  # ciaolint: allow[LCK002] -- deque.clear binds no project lock; the name union binds wider
        return drained

    def tail(self, n: int) -> List[QueryLogRecord]:
        """The most recent *n* records, oldest first."""
        with self._lock:
            if n <= 0:
                return []
            return list(self._records)[-n:]

    def hot_columns(self, top_n: int = 3) -> List[Tuple[str, float]]:
        """The hottest predicate columns, fingerprint-weighted.

        Folds the retained records into ``(column, weight)`` pairs,
        hottest first: each distinct query fingerprint contributes its
        occurrence count to every column its WHERE clause filters on,
        so a column stays hot because the *workload* keeps filtering on
        it, not because one query ran once with many clauses.  Ties
        break by column name for determinism.  This is the fold the
        compaction policy (and any layout optimizer) ranks re-cluster
        candidates with.
        """
        if top_n <= 0:
            raise ValueError(f"top_n must be positive, got {top_n}")
        with self._lock:
            records = list(self._records)
        frequency: Dict[str, int] = {}
        columns_of: Dict[str, Tuple[str, ...]] = {}
        for record in records:
            if not record.predicate_columns:
                continue
            frequency[record.fingerprint] = (
                frequency.get(record.fingerprint, 0) + 1
            )
            columns_of[record.fingerprint] = record.predicate_columns
        weight: Dict[str, float] = {}
        for fingerprint, count in frequency.items():
            for column in columns_of[fingerprint]:
                weight[column] = weight.get(column, 0.0) + count
        ranked = sorted(
            weight.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:top_n]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class NullQueryLog(QueryLog):
    """Disabled log: stateless, shared, drops every record."""

    def __init__(self) -> None:
        self.capacity = 0

    @property
    def enabled(self) -> bool:
        return False

    @property
    def total(self) -> int:
        return 0

    def append(self, record: QueryLogRecord) -> None:
        pass

    def records(self) -> List[QueryLogRecord]:
        return []

    def drain(self) -> List[QueryLogRecord]:
        return []

    def tail(self, n: int) -> List[QueryLogRecord]:
        return []

    def hot_columns(self, top_n: int = 3) -> List[Tuple[str, float]]:
        if top_n <= 0:
            raise ValueError(f"top_n must be positive, got {top_n}")
        return []

    def __len__(self) -> int:
        return 0


#: The shared disabled log (what ``QueryLog.null()`` returns).
NULL_QUERY_LOG = NullQueryLog()


def resolve_query_log(query_log: Optional[QueryLog]) -> QueryLog:
    """``query_log`` if given, else the shared null log."""
    return query_log if query_log is not None else NULL_QUERY_LOG
