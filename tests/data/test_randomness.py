"""Unit tests for deterministic RNG streams."""

from repro.data import SeedSequence, derive_seed, rng_stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")

    def test_name_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")


class TestStreams:
    def test_same_name_replays(self):
        a = rng_stream(7, "data")
        b = rng_stream(7, "data")
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_different_names_independent(self):
        a = rng_stream(7, "data")
        b = rng_stream(7, "noise")
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]


class TestSeedSequence:
    def test_stream_and_seed_agree(self):
        seq = SeedSequence(42)
        assert seq.seed("a") == derive_seed(42, "a")

    def test_substreams_are_distinct(self):
        seq = SeedSequence(42)
        streams = list(seq.substreams("workers", 3))
        values = [s.random() for s in streams]
        assert len(set(values)) == 3
