"""Deprecated channel location — the stack now lives in :mod:`repro.transport`.

The channel abstraction started here while the whole reproduction ran in
one process; once it grew a real TCP transport and a service wire it
moved to :mod:`repro.transport` (``base``/``file``/``decorators``/
``sockets``/``spec``/``wire``).  This module re-exports the original
names so existing imports keep working — new code should import from
:mod:`repro.transport` directly, which also offers the
:class:`~repro.transport.sockets.SocketChannel` transport and
``"tcp:<host>:<port>"`` channel specs this shim predates.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.simulate.network is deprecated; import the channel stack "
    "from repro.transport instead",
    DeprecationWarning,
    stacklevel=2,
)

from ..transport import (  # noqa: E402  (the warning must fire first)
    Channel,
    ChannelDecorator,
    ChannelLike,
    ChannelSpec,
    ChannelStats,
    FileChannel,
    LatencyChannel,
    LinkModel,
    LossyChannel,
    MemoryChannel,
    make_channel,
    per_client_channels,
)

__all__ = [
    "Channel",
    "ChannelDecorator",
    "ChannelLike",
    "ChannelSpec",
    "ChannelStats",
    "FileChannel",
    "LatencyChannel",
    "LinkModel",
    "LossyChannel",
    "MemoryChannel",
    "make_channel",
    "per_client_channels",
]
