"""Deterministic heterogeneous client populations.

A fleet experiment needs a *population*: N clients whose hardware, idle
capacity, and data volume differ the way a real deployment's do.  This
module generates one reproducibly from a seed:

* **Hardware** comes from :data:`repro.simulate.hardware.PLATFORMS` — each
  client is an instance of one of the Table IV machines, and its speed
  factor is *derived* from that platform's cost coefficients
  (:meth:`HardwareProfile.relative_speed` against the calibrated ``local``
  machine) with a small per-device jitter, rather than invented.
* **Slack** — a fraction of the clients are battery/duty-cycle constrained
  and declare a finite ``slack_us_per_record`` cap, which the budget
  allocator's water-filling must respect.
* **Data shares** are Zipf-skewed (:func:`repro.data.zipf.zipf_weights`)
  and then permuted independently of hardware, so fat partitions land on
  weak devices as often as on strong ones — the regime where coordination
  (backpressure + straggler reassignment) actually matters.

Everything is drawn from :func:`repro.data.randomness.rng_stream` child
streams, so the same seed reproduces the identical population, partition
assignment, and therefore (under round-robin dispatch) identical server
shard layout.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence

from ..core.budgets import ClientProfile
from ..data.randomness import rng_stream
from ..data.zipf import zipf_weights
from ..simulate.hardware import PLATFORMS, HardwareProfile

#: Reference platform for speed factors (the calibrated machine).
REFERENCE_PLATFORM = "local"


@dataclass(frozen=True)
class FleetClientSpec:
    """One fleet member: identity, capability, and data share.

    Attributes:
        client_id: Stable identifier (also the ingest-session source id).
        platform: Key into :data:`repro.simulate.hardware.PLATFORMS`.
        speed_factor: Relative device speed (1.0 = calibrated machine).
        slack_us_per_record: Self-reported idle capacity cap, in the
            device's own µs (``inf`` = unconstrained).
        share: Fraction of the fleet's raw input this client produces.
        kill_after_chunks: Fault injection — the client dies right
            after shipping this many chunks (``None`` = healthy).  Used
            by the straggler tests and bench; real deployments simply
            vanish.  The coordinator guarantees a live client processes
            at least one chunk of its own partition before siblings may
            steal the rest, so ``1`` kills deterministically; larger
            values are best-effort (a heavily-stolen-from client may
            finish earlier).
    """

    client_id: str
    platform: str
    speed_factor: float
    slack_us_per_record: float = float("inf")
    share: float = 0.0
    kill_after_chunks: Optional[int] = None

    def __post_init__(self) -> None:
        if self.platform not in PLATFORMS:
            raise ValueError(
                f"unknown platform {self.platform!r}; "
                f"expected one of {sorted(PLATFORMS)}"
            )
        if self.speed_factor <= 0:
            raise ValueError("speed factor must be positive")
        if self.share < 0:
            raise ValueError("data shares must be non-negative")

    @property
    def hardware(self) -> HardwareProfile:
        """The underlying hardware profile."""
        return PLATFORMS[self.platform]

    def profile(self) -> ClientProfile:
        """The budget-allocation view of this client."""
        return ClientProfile(
            client_id=self.client_id,
            speed_factor=self.speed_factor,
            slack_us_per_record=self.slack_us_per_record,
        )

    def killed_spec(self, after_chunks: int) -> "FleetClientSpec":
        """A copy of this spec that dies after *after_chunks* chunks."""
        return replace(self, kill_after_chunks=after_chunks)


class ClientPopulation:
    """An ordered, validated collection of :class:`FleetClientSpec`\\ s."""

    def __init__(self, specs: Sequence[FleetClientSpec]):
        if not specs:
            raise ValueError("a population needs at least one client")
        ids = [s.client_id for s in specs]
        if len(set(ids)) != len(ids):
            raise ValueError("client ids must be unique")
        total_share = sum(s.share for s in specs)
        if total_share <= 0:
            raise ValueError("at least one client must have a data share")
        # Normalize shares so partitioning never depends on whether the
        # caller provided fractions or raw weights.
        self.specs: List[FleetClientSpec] = [
            replace(s, share=s.share / total_share) for s in specs
        ]

    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, n: int, seed: int,
                 platforms: Optional[Sequence[str]] = None,
                 zipf_s: float = 1.0,
                 slack_fraction: float = 0.25,
                 slack_range_us: tuple = (2.0, 8.0),
                 speed_jitter: float = 0.2) -> "ClientPopulation":
        """A seeded heterogeneous population of *n* clients.

        Args:
            n: Number of clients.
            seed: Root seed; equal seeds produce identical populations.
            platforms: Platform keys to draw from (default: all of
                Table IV's machines).
            zipf_s: Skew of the data shares (0 = uniform).  Shares are
                permuted independently of hardware.
            slack_fraction: Fraction of clients (in expectation) that
                declare a finite slack cap.
            slack_range_us: Uniform range the finite caps are drawn from.
            speed_jitter: Relative spread of per-device speed around the
                platform's derived factor.
        """
        if n < 1:
            raise ValueError(f"need at least one client, got {n}")
        names = sorted(platforms) if platforms else sorted(PLATFORMS)
        rng = rng_stream(seed, "fleet:population")
        reference = PLATFORMS[REFERENCE_PLATFORM]
        shares = zipf_weights(n, zipf_s)
        rng.shuffle(shares)
        specs: List[FleetClientSpec] = []
        for i in range(n):
            platform = names[rng.randrange(len(names))]
            base_speed = PLATFORMS[platform].relative_speed(reference)
            jitter = rng.uniform(1.0 - speed_jitter, 1.0 + speed_jitter)
            slack = float("inf")
            if rng.random() < slack_fraction:
                slack = rng.uniform(*slack_range_us)
            specs.append(
                FleetClientSpec(
                    client_id=f"client-{i:02d}",
                    platform=platform,
                    speed_factor=base_speed * jitter,
                    slack_us_per_record=slack,
                    share=shares[i],
                )
            )
        return cls(specs)

    # ------------------------------------------------------------------
    def profiles(self) -> List[ClientProfile]:
        """Budget-allocation profiles, population order."""
        return [s.profile() for s in self.specs]

    def partition(self, records: Sequence[str]) -> Dict[str, List[str]]:
        """Split *records* into per-client contiguous slices by share.

        Sizes follow largest-remainder rounding (deterministic: ties break
        by population order), so ``sum(len(part)) == len(records)`` exactly
        and the same population always produces the same assignment.
        """
        total = len(records)
        quotas = [s.share * total for s in self.specs]
        sizes = [int(q) for q in quotas]
        leftover = total - sum(sizes)
        remainders = sorted(
            range(len(self.specs)),
            key=lambda i: (-(quotas[i] - sizes[i]), i),
        )
        for i in remainders[:leftover]:
            sizes[i] += 1
        out: Dict[str, List[str]] = {}
        cursor = 0
        for spec, size in zip(self.specs, sizes):
            out[spec.client_id] = list(records[cursor:cursor + size])
            cursor += size
        return out

    def with_kill(self, client_id: str,
                  after_chunks: int) -> "ClientPopulation":
        """A copy where *client_id* dies after *after_chunks* chunks."""
        found = False
        specs = []
        for spec in self.specs:
            if spec.client_id == client_id:
                specs.append(spec.killed_spec(after_chunks))
                found = True
            else:
                specs.append(spec)
        if not found:
            raise KeyError(client_id)
        return ClientPopulation(specs)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FleetClientSpec]:
        return iter(self.specs)

    def __getitem__(self, client_id: str) -> FleetClientSpec:
        for spec in self.specs:
            if spec.client_id == client_id:
                return spec
        raise KeyError(client_id)
