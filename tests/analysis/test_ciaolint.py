"""Per-rule checker tests over the fixture corpus, plus CLI behavior."""

import json
from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.baseline import BaselineError
from repro.analysis.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def analyze(target, select="all", baseline=None):
    return run_analysis(
        [FIXTURES / target], select=[select], baseline_path=baseline,
        root=FIXTURES,
    )


def rules_of(result):
    return {f.rule for f in result.findings}


# ---------------------------------------------------------------- rules
@pytest.mark.parametrize("bad, good, select, expected", [
    ("lck_bad.py", "lck_good.py", "lock-discipline", {"LCK001"}),
    ("cycle_bad.py", "cycle_good.py", "lock-discipline", {"LCK002"}),
    ("gen_bad.py", "gen_good.py", "yield-under-lock", {"GEN001"}),
    ("pro_bad.py", "pro_good.py", "protocol-bounds",
     {"PRO001", "PRO002"}),
    ("api_bad", "api_good", "api-hygiene",
     {"API002", "API003", "API004", "API005", "API006"}),
    ("det_bad.py", "det_good.py", "determinism", {"DET001", "DET002"}),
    ("obs_bad.py", "obs_good.py", "observability", {"OBS001"}),
    ("ret_bad.py", "ret_good.py", "retry-bounds", {"RET001"}),
])
def test_bad_caught_good_clean(bad, good, select, expected):
    bad_rules = rules_of(analyze(bad, select))
    assert bad_rules == expected
    good_result = analyze(good, select)
    assert good_result.findings == [], [
        f.render() for f in good_result.findings
    ]


def test_api001_missing_all(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("x = 1\n")
    result = run_analysis([pkg], select=["api-hygiene"], root=tmp_path)
    assert rules_of(result) == {"API001"}


def test_lck003_unannotated_write_under_lock(tmp_path):
    (tmp_path / "mod.py").write_text(
        "import threading\n\n\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._x = 0\n\n"
        "    def set(self, v):\n"
        "        with self._lock:\n"
        "            self._x = v\n"
    )
    result = run_analysis(
        [tmp_path / "mod.py"], select=["lock-discipline"], root=tmp_path
    )
    assert rules_of(result) == {"LCK003"}


def test_lck004_unknown_lock_name(tmp_path):
    (tmp_path / "mod.py").write_text(
        "import threading\n\n\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._x = 0  # guarded-by: _mutex\n"
    )
    result = run_analysis(
        [tmp_path / "mod.py"], select=["lock-discipline"], root=tmp_path
    )
    assert rules_of(result) == {"LCK004"}


def test_guarded_by_decorator_assumes_lock(tmp_path):
    (tmp_path / "mod.py").write_text(
        "import threading\n\n"
        "from repro.analysis import guarded_by\n\n\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._x = 0  # guarded-by: _lock\n\n"
        "    @guarded_by('_lock')\n"
        "    def _set(self, v):\n"
        "        self._x = v\n"
    )
    result = run_analysis(
        [tmp_path / "mod.py"], select=["lock-discipline"], root=tmp_path
    )
    assert result.findings == [], [f.render() for f in result.findings]


# --------------------------------------------------------- suppressions
def test_allow_marker_suppresses_with_reason(tmp_path):
    (tmp_path / "mod.py").write_text(
        "def f():\n"
        "    try:\n"
        "        return 1\n"
        "    except Exception:  # ciaolint: allow[API006] -- fixture\n"
        "        return None\n"
    )
    result = run_analysis(
        [tmp_path / "mod.py"], select=["api-hygiene"], root=tmp_path
    )
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["API006"]


def test_allow_marker_without_reason_is_meta001(tmp_path):
    (tmp_path / "mod.py").write_text(
        "def f():\n"
        "    try:\n"
        "        return 1\n"
        "    except Exception:  # ciaolint: allow[API006]\n"
        "        return None\n"
    )
    result = run_analysis(
        [tmp_path / "mod.py"], select=["api-hygiene"], root=tmp_path
    )
    # The reason-less marker does not suppress, and is itself flagged.
    assert rules_of(result) == {"API006", "META001"}


def test_standalone_marker_covers_next_statement(tmp_path):
    (tmp_path / "mod.py").write_text(
        "# ciaolint: module-role=simulate\n"
        "import random\n\n\n"
        "def f():\n"
        "    # ciaolint: allow[DET002] -- fixture\n"
        "    return random.random()\n"
    )
    result = run_analysis(
        [tmp_path / "mod.py"], select=["determinism"], root=tmp_path
    )
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["DET002"]


# -------------------------------------------------------------- baseline
def test_baseline_grandfathers_with_justification(tmp_path):
    baseline = tmp_path / "baseline.json"
    result = analyze("det_bad.py", "determinism")
    entries = [
        dict(f.baseline_key(), justification="fixture: known debt")
        for f in result.findings
    ]
    baseline.write_text(json.dumps({"version": 1, "entries": entries}))
    rebased = analyze("det_bad.py", "determinism", baseline=baseline)
    assert rebased.findings == []
    assert len(rebased.baselined) == len(entries)


def test_baseline_without_justification_rejected(tmp_path):
    baseline = tmp_path / "baseline.json"
    result = analyze("det_bad.py", "determinism")
    entries = [dict(f.baseline_key()) for f in result.findings]
    baseline.write_text(json.dumps({"version": 1, "entries": entries}))
    with pytest.raises(BaselineError, match="justification"):
        analyze("det_bad.py", "determinism", baseline=baseline)


def test_stale_baseline_entries_reported(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"version": 1, "entries": [{
        "rule": "DET001", "path": "gone.py", "message": "never happens",
        "justification": "obsolete",
    }]}))
    result = analyze("det_good.py", "determinism", baseline=baseline)
    assert result.findings == []
    assert len(result.stale_baseline) == 1


# ------------------------------------------------------------------ CLI
def test_cli_exit_codes():
    assert main([str(FIXTURES / "det_bad.py"), "--no-baseline"]) == 1
    assert main([str(FIXTURES / "det_good.py"), "--no-baseline"]) == 0
    assert main(["--list-checkers"]) == 0
    assert main([str(FIXTURES / "det_good.py"), "--select", "nope"]) == 2
    assert main([str(FIXTURES / "no_such_file.py")]) == 2


def test_cli_json_output(capsys):
    code = main([
        str(FIXTURES / "det_bad.py"), "--no-baseline", "--format", "json",
    ])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["clean"] is False
    assert {f["rule"] for f in doc["findings"]} == {"DET001", "DET002"}
    for finding in doc["findings"]:
        assert set(finding) == {
            "path", "line", "col", "rule", "checker", "message"
        }


def test_cli_unparseable_target_is_config_error(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    assert main([str(bad), "--no-baseline"]) == 2
    assert "META002" in capsys.readouterr().out


def test_cli_write_baseline_roundtrip(tmp_path, capsys):
    baseline = tmp_path / "bl.json"
    assert main([
        str(FIXTURES / "det_bad.py"), "--write-baseline",
        "--baseline", str(baseline),
    ]) == 0
    doc = json.loads(baseline.read_text())
    assert doc["entries"], "expected grandfathered entries"
    # TODO justifications must be replaced before the file loads.
    assert main([
        str(FIXTURES / "det_bad.py"), "--baseline", str(baseline),
    ]) == 2
