"""Client-side substrate: raw-record evaluation, chunk protocol, devices."""

from .device import DEFAULT_SHIP_BATCH, ClientStats, SimulatedClient
from .evaluator import ClientEvaluator, EvaluationReport
from .protocol import (
    MAGIC,
    ProtocolError,
    bitvector_overhead,
    decode_chunk,
    decode_chunk_stream,
    encode_chunk,
    encode_frame_batch,
    split_frames,
)

__all__ = [
    "ClientEvaluator",
    "ClientStats",
    "DEFAULT_SHIP_BATCH",
    "EvaluationReport",
    "MAGIC",
    "ProtocolError",
    "SimulatedClient",
    "bitvector_overhead",
    "decode_chunk",
    "decode_chunk_stream",
    "encode_chunk",
    "encode_frame_batch",
    "split_frames",
]
