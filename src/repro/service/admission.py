"""Query-side admission control: fair, bounded, backpressured.

The read-path mirror of the fleet coordinator's ingest-side admission
(``max_active`` slots, ``max_pending`` per-channel backpressure): a
:class:`QueryAdmission` bounds how many remote queries execute
concurrently (*max_active*) and how many each client may have queued
(*max_pending*).  Saturation is surfaced immediately —
:class:`AdmissionSaturated` maps to a BUSY reply on the wire — instead
of letting one chatty client queue without bound and starve the rest.

Fairness is round-robin across clients: when a slot frees, the grant
goes to the longest-waiting ticket of the next client in rotation, not
to whichever client submitted the most requests.  All state sits under
one condition variable; no lock is held while a query executes, so the
admission layer adds no edges under the server's lifecycle lock.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Set

from ..analysis.annotations import guarded_by
from ..analysis.sanitizer import make_condition
from ..api.config import DEFAULT_QUERY_MAX_PENDING
from ..obs.metrics import Metrics, resolve_metrics


class AdmissionSaturated(RuntimeError):
    """The admission queue rejected a query (bounds or timeout)."""


@dataclass
class AdmissionStats:
    """Aggregate accounting for one :class:`QueryAdmission`."""

    granted: int = 0
    completed: int = 0
    rejected: int = 0
    peak_active: int = 0
    peak_queued: int = 0


class QueryAdmission:
    """Slot-based query admission with per-client fairness.

    Args:
        max_active: Concurrent execution slots (``None`` = unbounded —
            every ticket is granted immediately; the per-client queue
            bound still applies to pathological bursts).
        max_pending: Per-client queue bound: a client with this many
            tickets already waiting gets :class:`AdmissionSaturated`
            instead of a longer queue.

    Protocol: :meth:`acquire` a ticket (blocks until granted, honoring
    round-robin order across clients), run the query, :meth:`release`
    the ticket in a ``finally``.
    """

    def __init__(self, max_active: Optional[int] = None,
                 max_pending: int = DEFAULT_QUERY_MAX_PENDING,
                 metrics: Optional[Metrics] = None):
        if max_active is not None and max_active < 1:
            raise ValueError(
                f"max_active must be >= 1 or None, got {max_active}"
            )
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.max_active = max_active
        self.max_pending = max_pending
        self.stats = AdmissionStats()
        metrics = resolve_metrics(metrics)
        self._m_granted = metrics.counter("admission.granted")
        self._m_rejected = metrics.counter("admission.rejected")
        self._m_completed = metrics.counter("admission.completed")
        self._m_active = metrics.gauge("admission.active")
        self._m_queued = metrics.gauge("admission.queued")
        self._cond = make_condition("QueryAdmission._cond")
        #: client_id -> waiting tickets, oldest first.
        self._queues: Dict[str, Deque[int]] = {}  # guarded-by: _cond
        #: Round-robin rotation of known client ids.
        self._rr: Deque[str] = deque()  # guarded-by: _cond
        self._grants: Set[int] = set()  # guarded-by: _cond
        self._active = 0  # guarded-by: _cond
        self._next_ticket = 0  # guarded-by: _cond

    # ------------------------------------------------------------------
    def acquire(self, client_id: str,
                timeout: Optional[float] = None) -> int:
        """Wait for an execution slot; returns the granted ticket.

        Raises :class:`AdmissionSaturated` immediately when *client_id*
        already has *max_pending* tickets waiting, or on *timeout*
        (the withdrawn ticket frees its queue slot).
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._cond:
            queue = self._queues.get(client_id)
            if queue is None:
                queue = deque()
                self._queues[client_id] = queue
                self._rr.append(client_id)
            if len(queue) >= self.max_pending:
                self.stats.rejected += 1
                self._m_rejected.inc()
                raise AdmissionSaturated(
                    f"client {client_id!r} already has {len(queue)} "
                    f"queries queued (max_pending={self.max_pending}); "
                    f"back off and retry"
                )
            ticket = self._next_ticket
            self._next_ticket += 1
            queue.append(ticket)
            queued = sum(len(q) for q in self._queues.values())
            if queued > self.stats.peak_queued:
                self.stats.peak_queued = queued
            self._m_queued.set(queued)
            self._grant_locked()
            while ticket not in self._grants:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cond.wait(remaining)
            if ticket not in self._grants:
                # Timed out waiting: withdraw so the queue slot frees.
                try:
                    queue.remove(ticket)
                except ValueError:
                    pass  # granted between the check and the withdraw
                if ticket in self._grants:
                    return ticket
                self.stats.rejected += 1
                self._m_rejected.inc()
                self._m_queued.set(
                    sum(len(q) for q in self._queues.values())
                )
                raise AdmissionSaturated(
                    f"client {client_id!r} timed out after {timeout} s "
                    f"waiting for an execution slot"
                )
            return ticket

    def release(self, ticket: int) -> None:
        """Return *ticket*'s slot and grant the next waiter."""
        with self._cond:
            if ticket not in self._grants:
                raise ValueError(
                    f"ticket {ticket} is not currently granted"
                )
            self._grants.discard(ticket)
            self._active -= 1
            self.stats.completed += 1
            self._m_completed.inc()
            self._m_active.set(self._active)
            self._grant_locked()

    @property
    def active(self) -> int:
        """Currently executing queries."""
        with self._cond:
            return self._active

    @property
    def queued(self) -> int:
        """Tickets waiting for a slot."""
        with self._cond:
            return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------
    @guarded_by("_cond")
    def _grant_locked(self) -> None:
        """Grant waiting tickets round-robin while slots remain."""
        granted_any = False
        while self.max_active is None or self._active < self.max_active:
            ticket = None
            for _ in range(len(self._rr)):
                client_id = self._rr[0]
                self._rr.rotate(-1)
                queue = self._queues[client_id]
                if queue:
                    ticket = queue.popleft()
                    break
            if ticket is None:
                break
            self._grants.add(ticket)
            self._active += 1
            granted_any = True
            self.stats.granted += 1
            self._m_granted.inc()
            if self._active > self.stats.peak_active:
                self.stats.peak_active = self._active
        if granted_any:
            self._m_active.set(self._active)
            self._m_queued.set(
                sum(len(q) for q in self._queues.values())
            )
            self._cond.notify_all()
