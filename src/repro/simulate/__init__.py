"""Simulation substrate: virtual time, hardware profiles, and transport."""

from .clock import ClockWindow, VirtualClock
from .hardware import (
    GaussianNoise,
    HardwareProfile,
    HypervisorNoise,
    PLATFORMS,
    synthesize_observations,
)
from .network import (
    Channel,
    ChannelStats,
    FileChannel,
    LinkModel,
    MemoryChannel,
)
from .runtime import ACCOUNTS, LOADING, PREFILTERING, QUERY, CostLedger

__all__ = [
    "ACCOUNTS",
    "Channel",
    "ChannelStats",
    "ClockWindow",
    "CostLedger",
    "FileChannel",
    "GaussianNoise",
    "HardwareProfile",
    "HypervisorNoise",
    "LOADING",
    "LinkModel",
    "MemoryChannel",
    "PLATFORMS",
    "PREFILTERING",
    "QUERY",
    "VirtualClock",
    "synthesize_observations",
]
