"""Synthetic stand-in for the Yelp Open Dataset ``review.json``.

The real file (5 GB, 6.1M objects) has per-review: the review text, userId,
businessId, date, and four integer feedback metrics.  This generator emits
records with the same shape and with value distributions aligned to the
predicate templates of Table II:

=====================  =============  =====================================
Template               #Candidates    Realized here by
=====================  =============  =====================================
``useful = <int>``     100            Zipf-skewed counts over 0..99
``cool = <int>``       100            Zipf-skewed counts over 0..99
``funny = <int>``      100            Zipf-skewed counts over 0..99
``stars = <int>``      5              weighted ratings 1..5
``user_id = <string>`` 5              top-5 users of a Zipfian user base
``text LIKE <string>`` 5              5 keywords planted with fixed probs
``date LIKE`` (year)   14             years 2007..2020, recency-weighted
``date LIKE`` (month)  12             months uniform
=====================  =============  =====================================
"""

from __future__ import annotations

from typing import Any, Dict, List

from .base import DatasetGenerator
from .textgen import hex_id, keyword_pool, paragraph
from .zipf import WeightedSampler, ZipfSampler, zipf_weights

#: Keywords available to ``text LIKE`` predicates, and the probability each
#: is planted into a review — i.e. the predicate's true selectivity.
TEXT_KEYWORDS: List[str] = keyword_pool("tasty", 5)
TEXT_KEYWORD_PROBS: List[float] = [0.30, 0.15, 0.08, 0.03, 0.01]

#: Star-rating distribution (reviews skew positive on the real platform).
STAR_WEIGHTS: List[float] = [0.10, 0.09, 0.11, 0.25, 0.45]

#: Year domain for the ``date LIKE`` (year) template: 14 candidates.
YEARS: List[int] = list(range(2007, 2021))

#: Recency-weighted year distribution (later years have more reviews).
YEAR_WEIGHTS: List[float] = [1.0 + 0.35 * i for i in range(len(YEARS))]

#: Size of the user population; the top five are the Table II candidates.
USER_POPULATION = 1000
USER_ZIPF_EXPONENT = 1.1

#: Number of distinct businesses.
BUSINESS_POPULATION = 500


def top_user_ids(count: int = 5) -> List[str]:
    """The *count* most prolific user ids (Table II's 5 candidates)."""
    return [_user_id(rank) for rank in range(count)]


def user_id_probability(rank: int) -> float:
    """Exact selectivity of ``user_id = <rank-th user>`` under the Zipf."""
    return zipf_weights(USER_POPULATION, USER_ZIPF_EXPONENT)[rank]


def _user_id(rank: int) -> str:
    return f"user_{rank:05d}"


class YelpGenerator(DatasetGenerator):
    """Generator for synthetic Yelp review records."""

    name = "yelp"

    def __init__(self, seed: int):
        super().__init__(seed)
        rng = self._rng
        self._users = ZipfSampler(USER_POPULATION, USER_ZIPF_EXPONENT, rng)
        self._stars = WeightedSampler([1, 2, 3, 4, 5], STAR_WEIGHTS, rng)
        self._years = WeightedSampler(YEARS, YEAR_WEIGHTS, rng)
        # Feedback metrics cluster near zero: Zipf rank-1 ↦ count 0.
        self._feedback = ZipfSampler(100, 1.3, rng)

    def record(self) -> Dict[str, Any]:
        """One review object in the Yelp ``review.json`` shape."""
        rng = self._rng
        year = self._years.draw()
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        return {
            "review_id": hex_id(rng),
            "user_id": _user_id(self._users.draw()),
            "business_id": f"biz_{rng.randrange(BUSINESS_POPULATION):04d}",
            "stars": self._stars.draw(),
            "useful": self._feedback.draw(),
            "funny": self._feedback.draw(),
            "cool": self._feedback.draw(),
            "text": paragraph(
                rng,
                n_sentences=rng.randint(2, 5),
                keywords=TEXT_KEYWORDS,
                keyword_probs=TEXT_KEYWORD_PROBS,
            ),
            "date": f"{year:04d}-{month:02d}-{day:02d}",
        }
