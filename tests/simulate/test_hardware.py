"""Unit tests for hardware platform profiles (Table IV inputs)."""

import random

import pytest

from repro.core import fit
from repro.simulate import (
    GaussianNoise,
    HypervisorNoise,
    PLATFORMS,
    synthesize_observations,
)

SHAPES = [
    (lp, sel)
    for lp in (3, 6, 12, 24)
    for sel in (0.01, 0.1, 0.3, 0.6)
]


class TestNoiseModels:
    def test_gaussian_centers_on_truth(self):
        rng = random.Random(0)
        noise = GaussianNoise(relative_sigma=0.05)
        samples = [noise.perturb(10.0, rng) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(10.0, rel=0.02)

    def test_gaussian_never_negative(self):
        rng = random.Random(0)
        noise = GaussianNoise(relative_sigma=2.0)
        assert all(noise.perturb(1.0, rng) >= 0 for _ in range(500))

    def test_hypervisor_spikes_inflate_mean(self):
        rng = random.Random(0)
        calm = GaussianNoise(relative_sigma=0.1)
        spiky = HypervisorNoise(
            relative_sigma=0.1, spike_probability=0.2, spike_scale=4.0
        )
        calm_mean = sum(calm.perturb(10.0, rng) for _ in range(3000)) / 3000
        spiky_mean = sum(
            spiky.perturb(10.0, rng) for _ in range(3000)
        ) / 3000
        assert spiky_mean > calm_mean * 1.1


class TestProfiles:
    def test_table4_platforms_present(self):
        assert set(PLATFORMS) == {"local", "alibaba", "pku"}

    def test_observation_is_positive_and_deterministic(self):
        profile = PLATFORMS["local"]
        a = profile.observe(10, 300, 0.2, random.Random(7))
        b = profile.observe(10, 300, 0.2, random.Random(7))
        assert a == b > 0

    def test_synthesize_observations_shape(self):
        rng = random.Random(1)
        observations = synthesize_observations(
            PLATFORMS["pku"], SHAPES, record_length=300, rng=rng
        )
        assert len(observations) == len(SHAPES)
        assert all(obs.record_length == 300 for obs in observations)

    def test_fitted_r_squared_ordering_matches_table4(self):
        """The reproduction's key Table IV property: bare metal fits the
        linear model well; the hypervisor-noised cloud VM fits worse."""
        scores = {}
        for name, profile in PLATFORMS.items():
            rng = random.Random(11)
            observations = []
            for record_length in (250, 500, 900):
                observations.extend(
                    synthesize_observations(
                        profile, SHAPES, record_length, rng
                    )
                )
            scores[name] = fit(observations).r_squared
        assert scores["pku"] > scores["local"] > scores["alibaba"]

    def test_r_squared_in_paper_ballpark(self):
        for name, profile in PLATFORMS.items():
            rng = random.Random(23)
            observations = []
            for record_length in (250, 500, 900):
                observations.extend(
                    synthesize_observations(
                        profile, SHAPES, record_length, rng
                    )
                )
            score = fit(observations).r_squared
            assert score == pytest.approx(
                profile.paper_r_squared, abs=0.15
            ), name


class TestRelativeSpeed:
    def test_self_speed_is_unity(self):
        local = PLATFORMS["local"]
        assert local.relative_speed(local) == pytest.approx(1.0)

    def test_ordering_matches_coefficients(self):
        local = PLATFORMS["local"]
        # pku has uniformly smaller coefficients (faster); alibaba larger.
        assert PLATFORMS["pku"].relative_speed(local) > 1.0
        assert PLATFORMS["alibaba"].relative_speed(local) < 1.0

    def test_true_cost_is_noise_free(self):
        profile = PLATFORMS["pku"]
        a = profile.true_cost_us(12.0, 160.0, 0.1)
        b = profile.true_cost_us(12.0, 160.0, 0.1)
        assert a == b > 0
