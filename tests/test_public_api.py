"""The public-API contract: ``__all__`` is complete, exact, and importable.

Every package exposes its public surface through ``__all__``; a symbol
imported into a package namespace but missing from ``__all__`` (or listed
but not importable) fails here — so the front door cannot silently rot as
modules grow.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.bench",
    "repro.bitvec",
    "repro.client",
    "repro.core",
    "repro.data",
    "repro.engine",
    "repro.fleet",
    "repro.rawcsv",
    "repro.rawjson",
    "repro.server",
    "repro.simulate",
    "repro.storage",
    "repro.workload",
]

#: Symbols the roadmap promises at the top level (the satellite list:
#: fleet + streaming-query + deployment API symbols, exported
#: consistently).
PROMISED_TOP_LEVEL = {
    "Budget",
    "ChannelSpec",
    "CiaoOptimizer",
    "CiaoServer",
    "CiaoSession",
    "ClientPopulation",
    "DataSource",
    "DeploymentConfig",
    "FleetClientSpec",
    "FleetCoordinator",
    "FleetReport",
    "IngestSession",
    "LoadJob",
    "LoadReport",
    "LoadSummary",
    "LossyChannel",
    "ServerConfig",
    "SimulatedClient",
    "make_channel",
}


@pytest.mark.parametrize("name", PACKAGES)
def test_all_is_declared(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_importable(name):
    """Every name in ``__all__`` resolves (no stale exports)."""
    module = importlib.import_module(name)
    missing = [n for n in module.__all__ if not hasattr(module, n)]
    assert not missing, f"{name}.__all__ lists unimportable: {missing}"


@pytest.mark.parametrize("name", PACKAGES)
def test_no_public_name_outside_all(name):
    """Every public (non-module) attribute is listed in ``__all__``.

    This is the CI tripwire the satellite asks for: importing a symbol
    into a package without exporting it fails the suite.
    """
    module = importlib.import_module(name)
    public = {
        attr
        for attr, value in vars(module).items()
        if not attr.startswith("_") and not inspect.ismodule(value)
    }
    stray = sorted(public - set(module.__all__))
    assert not stray, (
        f"{name} imports public names missing from __all__: {stray}"
    )


@pytest.mark.parametrize("name", PACKAGES)
def test_all_is_sorted_and_unique(name):
    module = importlib.import_module(name)
    entries = list(module.__all__)
    assert entries == sorted(entries), f"{name}.__all__ is not sorted"
    assert len(entries) == len(set(entries)), (
        f"{name}.__all__ has duplicates"
    )


def test_promised_symbols_at_top_level():
    repro = importlib.import_module("repro")
    missing = sorted(PROMISED_TOP_LEVEL - set(repro.__all__))
    assert not missing, f"top-level __all__ lost: {missing}"


def test_star_import_matches_all():
    namespace = {}
    exec("from repro import *", namespace)
    imported = {n for n in namespace if not n.startswith("_")}
    repro = importlib.import_module("repro")
    assert imported == set(repro.__all__) - {"__version__"}
