"""Workload-adaptive compaction of sealed Parquet-lite parts.

Streaming seals and fleet ingest deliberately produce many small sealed
parts; every part is a scan unit and a snapshot-cache key, so part
count is a direct query-latency tax.  This package merges small sealed
parts into large ones and — guided by the query log — re-clusters rows
by the hot predicate columns so the rebuilt zone maps prune, with a
ski-rental regret guard that keeps a shifting workload from thrashing
the layout (see :mod:`repro.compact.policy`).

Entry points: pass ``compaction=CompactionConfig(...)`` (or ``True``)
to :class:`repro.api.CiaoSession` for the background worker, or drive
:class:`Compactor.run_once` / :func:`rewrite_parts` directly.
"""

from .compactor import Compactor
from .policy import CompactionConfig, CompactionPlan, CompactionPolicy
from .rewrite import DEFAULT_ROW_GROUP_ROWS, RewriteStats, rewrite_parts

__all__ = [
    "CompactionConfig",
    "CompactionPlan",
    "CompactionPolicy",
    "Compactor",
    "DEFAULT_ROW_GROUP_ROWS",
    "RewriteStats",
    "resolve_compaction",
    "rewrite_parts",
]


def resolve_compaction(value) -> "CompactionConfig | None":
    """Normalize a session's ``compaction=`` argument.

    ``None``/``False`` → disabled; ``True`` → default config; a
    :class:`CompactionConfig` passes through.
    """
    if value is None or value is False:
        return None
    if value is True:
        return CompactionConfig()
    if isinstance(value, CompactionConfig):
        return value
    raise TypeError(
        f"compaction must be a CompactionConfig, True, False or None; "
        f"got {type(value).__name__}"
    )
