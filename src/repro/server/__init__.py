"""Server-side substrate: partial loading, eager baseline, data skipping,
and the CIAO server facade."""

from .ciao import (
    CiaoServer,
    IngestSession,
    ServerConfig,
    validate_server_options,
)
from .ingest import EagerLoader
from .loader import ClientAssistedLoader, LoadReport, LoadSummary
from .pipeline import (
    IngestPipelineError,
    LoadSnapshot,
    ShardedIngestPipeline,
)
from .skipping import (
    SkippingEstimate,
    estimate_skipping,
    query_predicate_ids,
    resolve_group_mask,
    skipping_benefit_fractions,
)

__all__ = [
    "CiaoServer",
    "ClientAssistedLoader",
    "EagerLoader",
    "IngestPipelineError",
    "IngestSession",
    "LoadReport",
    "LoadSnapshot",
    "LoadSummary",
    "ServerConfig",
    "ShardedIngestPipeline",
    "SkippingEstimate",
    "estimate_skipping",
    "query_predicate_ids",
    "resolve_group_mask",
    "skipping_benefit_fractions",
    "validate_server_options",
]
