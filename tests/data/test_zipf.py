"""Unit tests for bounded Zipf and weighted sampling."""

import random

import pytest

from repro.data import WeightedSampler, ZipfSampler, zipf_choice, zipf_weights


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(50, 1.2)
        assert sum(weights) == pytest.approx(1.0)

    def test_zero_exponent_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(w == pytest.approx(0.1) for w in weights)

    def test_monotone_decreasing(self):
        weights = zipf_weights(20, 1.5)
        assert weights == sorted(weights, reverse=True)

    def test_higher_exponent_concentrates_head(self):
        flat = zipf_weights(100, 0.5)[0]
        steep = zipf_weights(100, 2.0)[0]
        assert steep > flat

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)


class TestZipfSampler:
    def test_draws_in_range(self):
        sampler = ZipfSampler(10, 1.0, random.Random(1))
        assert all(0 <= r < 10 for r in sampler.draw_many(500))

    def test_empirical_rank_ordering(self):
        sampler = ZipfSampler(5, 1.5, random.Random(1))
        counts = [0] * 5
        for rank in sampler.draw_many(20_000):
            counts[rank] += 1
        assert counts[0] > counts[1] > counts[4]

    def test_probability_matches_weights(self):
        sampler = ZipfSampler(8, 1.1, random.Random(0))
        weights = zipf_weights(8, 1.1)
        for rank in range(8):
            assert sampler.probability(rank) == pytest.approx(
                weights[rank], abs=1e-9
            )

    def test_probability_bounds_checked(self):
        sampler = ZipfSampler(3, 1.0, random.Random(0))
        with pytest.raises(IndexError):
            sampler.probability(3)

    def test_zipf_choice(self):
        assert zipf_choice(["a", "b"], 1.0, random.Random(2)) in ("a", "b")


class TestWeightedSampler:
    def test_respects_weights_empirically(self):
        sampler = WeightedSampler(
            ["x", "y"], [0.9, 0.1], random.Random(5)
        )
        draws = [sampler.draw() for _ in range(5000)]
        assert draws.count("x") / len(draws) == pytest.approx(0.9, abs=0.03)

    def test_zero_weight_items_never_drawn(self):
        sampler = WeightedSampler(["x", "y"], [1.0, 0.0], random.Random(5))
        assert all(sampler.draw() == "x" for _ in range(200))

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            WeightedSampler([], [], rng)
        with pytest.raises(ValueError):
            WeightedSampler(["a"], [1.0, 2.0], rng)
        with pytest.raises(ValueError):
            WeightedSampler(["a"], [-1.0], rng)
        with pytest.raises(ValueError):
            WeightedSampler(["a", "b"], [0.0, 0.0], rng)
