"""Unit tests for the DataSource abstraction and as_source coercion."""

import pytest

from repro.api import (
    CsvFileSource,
    DataSource,
    GeneratorSource,
    JsonFileSource,
    LineSource,
    as_source,
)
from repro.data import make_generator
from repro.rawcsv import CsvCodec
from repro.rawjson import dump_record


class TestGeneratorSource:
    def test_wraps_generator(self):
        source = as_source("yelp", seed=7, n_records=50)
        assert isinstance(source, GeneratorSource)
        assert source.count() == 50
        lines = list(source.records())
        assert len(lines) == 50
        assert all(line.startswith("{") for line in lines)

    def test_sample_independent_of_stream(self):
        source = as_source("yelp", seed=7, n_records=20)
        sample = source.sample(10)
        # Sampling must not consume the ingest stream.
        assert len(list(source.records())) == 20
        assert len(sample) == 10
        assert all(isinstance(r, dict) for r in sample)

    def test_deterministic_for_seed(self):
        a = list(as_source("winlog", seed=3, n_records=10).records())
        b = list(as_source("winlog", seed=3, n_records=10).records())
        assert a == b

    def test_with_count_rebounds(self):
        source = as_source("yelp", seed=7, n_records=5)
        rebounded = as_source(source, n_records=9)
        assert rebounded.count() == 9

    def test_unknown_dataset_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            as_source("no-such-dataset")

    def test_average_record_length_positive(self):
        assert as_source("ycsb", n_records=5).average_record_length() > 0


class TestLineSource:
    def test_round_trip(self, demo_records):
        records, raws = demo_records
        source = as_source(raws)
        assert isinstance(source, LineSource)
        assert list(source.records()) == raws
        assert source.sample(2) == records[:2]
        assert source.count() == len(raws)

    def test_one_shot_iterator_materialized(self, demo_records):
        _, raws = demo_records
        source = as_source(iter(raws))
        assert list(source.records()) == raws
        assert list(source.records()) == raws  # replayable

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one record"):
            LineSource([])


class TestFileSources:
    def test_jsonl_file(self, tmp_path, demo_records):
        records, raws = demo_records
        path = tmp_path / "data.jsonl"
        path.write_text("\n".join(raws) + "\n", encoding="utf-8")
        source = as_source(path)
        assert isinstance(source, JsonFileSource)
        assert list(source.records()) == raws
        assert source.sample(3) == records[:3]

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            JsonFileSource(tmp_path / "absent.jsonl")

    def test_csv_file(self, tmp_path):
        codec = CsvCodec(["name", "age"], types={"age": int})
        rows = [{"name": "Bob", "age": 20}, {"name": "Eve", "age": 31}]
        path = tmp_path / "data.csv"
        path.write_text(
            "\n".join(codec.encode_record(r) for r in rows) + "\n",
            encoding="utf-8",
        )
        source = as_source(path, codec=codec)
        assert isinstance(source, CsvFileSource)
        assert source.sample(2) == rows
        # The record stream is JSON re-framed from the CSV rows.
        assert list(source.records()) == [dump_record(r) for r in rows]

    def test_csv_needs_codec(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n", encoding="utf-8")
        with pytest.raises(ValueError, match="CsvCodec"):
            as_source(path)

    def test_csv_skip_header(self, tmp_path):
        codec = CsvCodec(["name", "age"], types={"age": int})
        path = tmp_path / "data.csv"
        path.write_text("name,age\nBob,20\n", encoding="utf-8")
        source = CsvFileSource(path, codec, skip_header=True)
        assert source.sample(5) == [{"name": "Bob", "age": 20}]


class TestLimitedSource:
    def test_n_records_truncates_line_source(self, demo_records):
        """Regression: n_records must bound *every* source kind."""
        _, raws = demo_records
        source = as_source(LineSource(raws), n_records=2)
        assert list(source.records()) == raws[:2]
        assert source.count() == 2
        assert source.sample(10) == \
            [r for r in LineSource(raws).sample(2)]

    def test_n_records_truncates_file_source(self, tmp_path,
                                             demo_records):
        _, raws = demo_records
        path = tmp_path / "data.jsonl"
        path.write_text("\n".join(raws) + "\n", encoding="utf-8")
        source = as_source(path, n_records=3)
        assert len(list(source.records())) == 3
        # File length is unknown without a scan, so no count is claimed.
        assert source.count() is None

    def test_n_records_truncates_iterable(self, demo_records):
        _, raws = demo_records
        source = as_source(raws, n_records=1)
        assert list(source.records()) == raws[:1]

    def test_cap_beyond_length_is_harmless(self, demo_records):
        _, raws = demo_records
        source = as_source(LineSource(raws), n_records=10 ** 6)
        assert list(source.records()) == raws
        assert source.count() == len(raws)


class TestAsSource:
    def test_datasource_passthrough(self, demo_records):
        _, raws = demo_records
        source = LineSource(raws)
        assert as_source(source) is source

    def test_generator_instance(self):
        generator = make_generator("yelp", seed=1)
        source = as_source(generator, n_records=7)
        assert isinstance(source, GeneratorSource)
        assert source.count() == 7

    def test_rejects_nonsense(self):
        with pytest.raises(TypeError, match="DataSource"):
            as_source(42)

    def test_average_record_length_empty_sample(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        source = JsonFileSource(path)
        with pytest.raises(ValueError, match="empty sample"):
            source.average_record_length()
