"""Batch-vectorized operators over columnar batches.

The operator set covers the paper's query template (scan → filter →
COUNT(*)) plus projections, general aggregates, and LIMIT so the examples
can run realistic analytics.  The CIAO-specific operator is
:class:`SkippingScan`: it resolves the query's pushed-down predicate ids to
per-row-group bit-vectors, ANDs them (§VI-B), skips whole row groups whose
intersection is empty, and keeps the surviving mask as the batch's
selection vector — no per-row index list is ever materialized.

Execution is columnar: operators exchange
:class:`~repro.engine.batch.ColumnBatch` objects (decoded column lists +
a word-level ``BitVector`` selection vector) through :meth:`Operator.
batches`.  Scans decode each row group's pages exactly once
(``RowGroupReader.read_batch``); filters narrow the selection with
``Expr.evaluate_batch`` + ``intersect_update``; aggregates consume batches
directly, so a COUNT(*)-only plan is selection-vector popcounts all the
way down and never materializes a row dict.  The historical row-at-a-time
surface survives as a thin adapter: :meth:`Operator.execute` spills
batches back into dict rows, and subclasses that only implement
``execute()`` (legacy or test operators) are wrapped the other way.

Every operator reports into a shared :class:`ExecutionStats`, which is how
the experiment harness measures tuples skipped, groups skipped, and
sideline parsing.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from ..bitvec.bitvector import BitVector, intersect_all
from ..storage.columnar import ParquetLiteReader
from ..storage.jsonstore import JsonSideStore
from .batch import ColumnBatch
from .expressions import Expr


def _close_source(source) -> None:
    """Close a child batch iterator if it supports it (generators do);
    closing propagates LIMIT satisfaction down into the scans."""
    close = getattr(source, "close", None)
    if close is not None:
        close()

#: Rows accumulated per batch when batching a row-producing source
#: (sideline scans).  Large enough to amortize per-batch overhead, small
#: enough that LIMIT over a sideline stops parsing early.
SIDELINE_BATCH_ROWS = 2048


@dataclass
class ExecutionStats:
    """Counters accumulated during one query execution."""

    rows_examined: int = 0
    rows_emitted: int = 0
    row_groups_total: int = 0
    row_groups_skipped: int = 0
    row_groups_pruned_by_zonemap: int = 0
    tuples_skipped: int = 0
    tuples_pruned_by_zonemap: int = 0
    sideline_records_parsed: int = 0
    used_data_skipping: bool = False
    scanned_sideline: bool = False

    def merge(self, other: "ExecutionStats") -> None:
        """Fold another stats object into this one."""
        self.rows_examined += other.rows_examined
        self.rows_emitted += other.rows_emitted
        self.row_groups_total += other.row_groups_total
        self.row_groups_skipped += other.row_groups_skipped
        self.row_groups_pruned_by_zonemap += \
            other.row_groups_pruned_by_zonemap
        self.tuples_skipped += other.tuples_skipped
        self.tuples_pruned_by_zonemap += other.tuples_pruned_by_zonemap
        self.sideline_records_parsed += other.sideline_records_parsed
        self.used_data_skipping |= other.used_data_skipping
        self.scanned_sideline |= other.scanned_sideline


class Operator(ABC):
    """A node producing columnar batches (and, via adapter, dict rows).

    Implement :meth:`batches` (the engine's native surface).  Subclasses
    that predate the batch engine may instead implement :meth:`execute`;
    their row stream is wrapped into single-row batches, preserving the
    exact per-row laziness of the old volcano interpreter.
    """

    def batches(self, stats: ExecutionStats) -> Iterator[ColumnBatch]:
        """Yield columnar batches, accounting into *stats*."""
        if type(self).execute is Operator.execute:
            raise TypeError(
                f"{type(self).__name__} implements neither batches() "
                f"nor execute()"
            )
        for row in self.execute(stats):
            yield ColumnBatch.from_rows([row])

    def execute(self, stats: ExecutionStats) -> Iterator[Dict[str, Any]]:
        """Yield result rows — the ``rows()`` adapter over batches."""
        for batch in self.batches(stats):
            yield from batch.iter_rows()

    def describe(self) -> str:
        """One-line plan description."""
        raise NotImplementedError


class ParquetScan(Operator):
    """Full scan of a Parquet-lite file, optionally projected.

    ``prune`` is the zone-map hook: a callable deciding from row-group
    metadata (min/max/null statistics) that a group cannot contain
    qualifying rows and may be skipped without decoding anything.
    """

    def __init__(self, reader: ParquetLiteReader,
                 columns: Optional[Sequence[str]] = None,
                 prune: Optional[Callable] = None):
        self._reader = reader
        self._columns = list(columns) if columns is not None else None
        self._prune = prune

    def batches(self, stats: ExecutionStats) -> Iterator[ColumnBatch]:
        names = self._columns if self._columns is not None \
            else self._reader.schema.names
        for group in self._reader.row_groups():
            stats.row_groups_total += 1
            if self._prune is not None and self._prune(group.meta):
                stats.row_groups_pruned_by_zonemap += 1
                stats.tuples_pruned_by_zonemap += group.row_count
                continue
            columns = group.read_batch(self._columns)
            group.clear_cache()
            stats.rows_examined += group.row_count
            yield ColumnBatch.from_columns(columns, group.row_count,
                                           names=names)

    def describe(self) -> str:
        cols = ", ".join(self._columns) if self._columns else "*"
        zone = ", zonemap" if self._prune is not None else ""
        return f"ParquetScan({self._reader.path.name}, columns=[{cols}]{zone})"


class SkippingScan(Operator):
    """Bit-vector data-skipping scan (paper §VI-B).

    For each row group: fetch the bit-vectors of the query's pushed-down
    predicate ids, AND them, and

    * if a predicate id has no stored vector in this group (it was pushed
      after this data was loaded), fall back to scanning the group fully —
      soundness first;
    * if the intersection is empty, skip the group without decoding a
      single column;
    * otherwise the surviving mask *becomes the batch's selection vector*:
      survivor counting is a popcount and no index list is built.
    """

    def __init__(self, reader: ParquetLiteReader,
                 predicate_ids: Sequence[int],
                 columns: Optional[Sequence[str]] = None,
                 prune: Optional[Callable] = None):
        if not predicate_ids:
            raise ValueError("SkippingScan needs at least one predicate id")
        self._reader = reader
        self._ids = list(predicate_ids)
        self._columns = list(columns) if columns is not None else None
        self._prune = prune

    def batches(self, stats: ExecutionStats) -> Iterator[ColumnBatch]:
        stats.used_data_skipping = True
        names = self._columns if self._columns is not None \
            else self._reader.schema.names
        for group in self._reader.row_groups():
            stats.row_groups_total += 1
            if self._prune is not None and self._prune(group.meta):
                stats.row_groups_pruned_by_zonemap += 1
                stats.tuples_pruned_by_zonemap += group.row_count
                continue
            vectors: List[BitVector] = []
            missing = False
            for pid in self._ids:
                bv = group.meta.bitvectors.get(pid)
                if bv is None:
                    missing = True
                    break
                vectors.append(bv)
            if missing:
                columns = group.read_batch(self._columns)
                group.clear_cache()
                stats.rows_examined += group.row_count
                yield ColumnBatch.from_columns(columns, group.row_count,
                                               names=names)
                continue
            mask = intersect_all(vectors)
            survivors = mask.count()
            stats.tuples_skipped += group.row_count - survivors
            if not survivors:
                stats.row_groups_skipped += 1
                continue
            columns = group.read_batch(self._columns)
            group.clear_cache()
            stats.rows_examined += survivors
            yield ColumnBatch.from_columns(columns, group.row_count,
                                           names=names, sel=mask)

    def describe(self) -> str:
        return (
            f"SkippingScan({self._reader.path.name}, "
            f"predicates={self._ids})"
        )


class SidelineScan(Operator):
    """Just-in-time parse-and-scan of the raw JSON sideline store.

    Accepts anything with the store's read interface (``iter_parsed`` +
    ``path``) — in particular the bounded loaded-so-far views snapshot
    queries scan during a streaming ingest.  Parsed records are grouped
    into row-backed batches, so their ragged key sets survive
    materialization untouched.
    """

    def __init__(self, store: JsonSideStore):
        self._store = store

    def batches(self, stats: ExecutionStats) -> Iterator[ColumnBatch]:
        stats.scanned_sideline = True
        pending: List[Dict[str, Any]] = []
        for record in self._store.iter_parsed():
            stats.sideline_records_parsed += 1
            stats.rows_examined += 1
            pending.append(record)
            if len(pending) >= SIDELINE_BATCH_ROWS:
                yield ColumnBatch.from_rows(pending)
                pending = []
        if pending:
            yield ColumnBatch.from_rows(pending)

    def describe(self) -> str:
        return f"SidelineScan({self._store.path.name})"


class ChainScan(Operator):
    """Concatenate child scans (Parquet files + sideline)."""

    def __init__(self, children: Sequence[Operator]):
        if not children:
            raise ValueError("ChainScan needs at least one child")
        self._children = list(children)

    def batches(self, stats: ExecutionStats) -> Iterator[ColumnBatch]:
        for child in self._children:
            yield from child.batches(stats)

    def describe(self) -> str:
        return " + ".join(child.describe() for child in self._children)


class Filter(Operator):
    """Residual predicate evaluation.

    Always present above CIAO scans: bit-vectors admit false positives, so
    every surviving tuple re-checks the full WHERE expression (§IV-B) —
    as one vectorized ``evaluate_batch`` mask ANDed into the selection
    vector, not a Python-level row loop.
    """

    def __init__(self, child: Operator, predicate: Expr):
        self._child = child
        self._predicate = predicate

    #: Selection density (1/N of the batch) below which the residual
    #: predicate re-checks survivors row-by-row instead of vectorizing
    #: over the whole batch.  Vectorized evaluation costs ~tens of ns per
    #: row, per-row AST walks ~1 µs per survivor, so the survivor path
    #: wins once pushdown masks leave fewer than ~1/16 of a group alive
    #: (the paper's high-selectivity headline case).
    SPARSE_SELECTION_DIVISOR = 16

    def batches(self, stats: ExecutionStats) -> Iterator[ColumnBatch]:
        predicate = self._predicate
        source = self._child.batches(stats)
        try:
            for batch in source:
                selected = batch.selected_count()
                if not selected:
                    continue
                if selected * self.SPARSE_SELECTION_DIVISOR \
                        <= batch.num_rows:
                    # Sparse pushdown survivors: evaluate only them, like
                    # the pre-batch engine's survivor loop.
                    view = batch.row_view()
                    keep = []
                    for index in batch.sel.iter_set():
                        view.index = index
                        if predicate.evaluate(view):
                            keep.append(index)
                    if not keep:
                        continue
                    batch.sel = BitVector.from_indices(batch.num_rows,
                                                       keep)
                    yield batch
                    continue
                batch.apply_mask(predicate.evaluate_batch(batch))
                if batch.sel.any():
                    yield batch
        finally:
            _close_source(source)

    def describe(self) -> str:
        return f"Filter({self._predicate.sql()}) <- {self._child.describe()}"


class Project(Operator):
    """Column projection (zero-copy: batches share column storage)."""

    def __init__(self, child: Operator, columns: Sequence[str]):
        if not columns:
            raise ValueError("projections need at least one column")
        self._child = child
        self._columns = list(columns)

    def batches(self, stats: ExecutionStats) -> Iterator[ColumnBatch]:
        columns = self._columns
        source = self._child.batches(stats)
        try:
            for batch in source:
                yield batch.project(columns)
        finally:
            _close_source(source)

    def describe(self) -> str:
        return (
            f"Project({', '.join(self._columns)}) <- "
            f"{self._child.describe()}"
        )


class Limit(Operator):
    """Stop after *n* selected rows.

    Closing the child generator chain on satisfaction propagates all the
    way into the scans (``ChainScan``/``Filter``/``Project`` forward the
    close), so remaining row groups are never decoded.
    """

    def __init__(self, child: Operator, n: int):
        if n < 0:
            raise ValueError("LIMIT must be non-negative")
        self._child = child
        self._n = n

    def batches(self, stats: ExecutionStats) -> Iterator[ColumnBatch]:
        if self._n == 0:
            return
        remaining = self._n
        source = self._child.batches(stats)
        try:
            for batch in source:
                selected = batch.selected_count()
                if selected < remaining:
                    remaining -= selected
                    yield batch
                    continue
                yield batch.truncate_selected(remaining)
                return
        finally:
            _close_source(source)

    def describe(self) -> str:
        return f"Limit({self._n}) <- {self._child.describe()}"


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
@dataclass
class _AggState:
    count: int = 0
    total: float = 0.0
    minimum: Any = None
    maximum: Any = None


def _update_state(state: _AggState, value: Any) -> None:
    """Fold one non-null value into an aggregate state (SQL null rules
    are applied by the caller: nulls never reach here)."""
    state.count += 1
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        state.total += value
    if state.minimum is None or value < state.minimum:
        state.minimum = value
    if state.maximum is None or value > state.maximum:
        state.maximum = value


def merge_states(into: _AggState, other: _AggState) -> None:
    """Fold a partial aggregate into an accumulator (cache merges)."""
    into.count += other.count
    into.total += other.total
    if other.minimum is not None and (
            into.minimum is None or other.minimum < into.minimum):
        into.minimum = other.minimum
    if other.maximum is not None and (
            into.maximum is None or other.maximum > into.maximum):
        into.maximum = other.maximum


def accumulate_simple(items: Sequence, batches: Iterator[ColumnBatch]
                      ) -> List[_AggState]:
    """Fold *batches* into one aggregate state per select item.

    COUNT(*) items are pure selection-vector popcounts; per-column items
    walk the decoded column list over selected positions only.  This is
    shared by :class:`Aggregate` and the incremental snapshot cache's
    per-part partials.
    """
    states = [_AggState() for _ in items]
    for batch in batches:
        full = batch.sel.all()
        positions: Optional[List[int]] = None  # shared across items
        for item, state in zip(items, states):
            if item.column == "*":
                state.count += batch.num_rows if full \
                    else batch.selected_count()
                continue
            values = batch.column(item.column)
            if full:
                for value in values:
                    if value is not None:
                        _update_state(state, value)
            else:
                if positions is None:
                    positions = list(batch.sel.iter_set())
                for index in positions:
                    value = values[index]
                    if value is not None:
                        _update_state(state, value)
    return states


def accumulate_grouped(group_columns: Sequence[str], agg_items: Sequence,
                       batches: Iterator[ColumnBatch]):
    """Fold *batches* into per-group aggregate states.

    Returns ``(order, groups)`` where *order* lists key tuples in first
    appearance order (the engine's deterministic output order) and
    *groups* maps each key to one state per aggregate item.
    """
    groups: Dict[tuple, List[_AggState]] = {}
    order: List[tuple] = []
    for batch in batches:
        key_columns = [batch.column(c) for c in group_columns]
        value_columns = [
            batch.column(item.column) if item.column != "*" else None
            for item in agg_items
        ]
        positions = range(batch.num_rows) if batch.sel.all() \
            else batch.sel.iter_set()
        for index in positions:
            key = tuple(column[index] for column in key_columns)
            states = groups.get(key)
            if states is None:
                states = [_AggState() for _ in agg_items]
                groups[key] = states
                order.append(key)
            for state, values in zip(states, value_columns):
                if values is None:  # COUNT(*)
                    state.count += 1
                    continue
                value = values[index]
                if value is not None:
                    _update_state(state, value)
    return order, groups


class Aggregate(Operator):
    """COUNT/SUM/AVG/MIN/MAX over the child's rows (single output row).

    Null handling follows SQL: only COUNT(*) counts null-valued rows;
    per-column aggregates ignore nulls.  A COUNT(*)-only plan reduces to
    selection-vector popcounts and never touches a value list.
    """

    def __init__(self, child: Operator, items: Sequence):
        from .sql import SelectItem  # local to avoid cycle at import time

        self._child = child
        self._items: List[SelectItem] = list(items)
        for item in self._items:
            if item.aggregate is None:
                raise ValueError(
                    "Aggregate received a non-aggregate select item; "
                    "grouping is not supported"
                )

    def batches(self, stats: ExecutionStats) -> Iterator[ColumnBatch]:
        states = accumulate_simple(self._items, self._child.batches(stats))
        result: Dict[str, Any] = {}
        for item, state in zip(self._items, states):
            result[item.label] = self._finalize(item.aggregate, state)
        yield ColumnBatch.from_rows([result])

    @staticmethod
    def _finalize(aggregate: str, state: _AggState) -> Any:
        if aggregate == "COUNT":
            return state.count
        if aggregate == "SUM":
            return state.total if state.count else None
        if aggregate == "AVG":
            return state.total / state.count if state.count else None
        if aggregate == "MIN":
            return state.minimum
        if aggregate == "MAX":
            return state.maximum
        raise ValueError(f"unknown aggregate {aggregate}")

    def describe(self) -> str:
        labels = ", ".join(item.label for item in self._items)
        return f"Aggregate({labels}) <- {self._child.describe()}"


class GroupedAggregate(Operator):
    """GROUP BY aggregation: one output row per distinct key tuple.

    Select items must be either aggregates or bare group-by columns (the
    planner enforces this).  Output order is first-appearance order of
    each group, which keeps results deterministic for tests.
    """

    def __init__(self, child: Operator, group_columns: Sequence[str],
                 items: Sequence):
        if not group_columns:
            raise ValueError("GroupedAggregate needs group columns")
        self._child = child
        self._group_columns = list(group_columns)
        self._items = list(items)
        for item in self._items:
            if item.aggregate is None and \
                    item.column not in self._group_columns:
                raise ValueError(
                    f"column {item.column!r} is neither aggregated nor "
                    f"grouped"
                )

    def batches(self, stats: ExecutionStats) -> Iterator[ColumnBatch]:
        agg_items = [i for i in self._items if i.aggregate is not None]
        order, groups = accumulate_grouped(
            self._group_columns, agg_items, self._child.batches(stats)
        )
        rows = finalize_grouped(self._items, self._group_columns,
                                order, groups)
        if rows:
            yield ColumnBatch.from_rows(rows)

    def describe(self) -> str:
        labels = ", ".join(item.label for item in self._items)
        keys = ", ".join(self._group_columns)
        return (
            f"GroupedAggregate([{keys}] -> {labels}) <- "
            f"{self._child.describe()}"
        )


def finalize_grouped(items: Sequence, group_columns: Sequence[str],
                     order: List[tuple],
                     groups: Dict[tuple, List[_AggState]]
                     ) -> List[Dict[str, Any]]:
    """Render grouped aggregate states into output rows (shared with the
    snapshot cache's merge path)."""
    rows: List[Dict[str, Any]] = []
    for key in order:
        states = groups[key]
        result: Dict[str, Any] = {}
        agg_index = 0
        for item in items:
            if item.aggregate is None:
                result[item.label] = key[group_columns.index(item.column)]
            else:
                result[item.label] = Aggregate._finalize(
                    item.aggregate, states[agg_index]
                )
                agg_index += 1
        rows.append(result)
    return rows
