"""Unit tests for engine expressions and the clause bridge."""

import pytest

from repro.core import (
    PredicateKind,
    clause,
    exact,
    key_present,
    key_value,
    prefix,
    substring,
    suffix,
)
from repro.engine import (
    And,
    Column,
    Comparison,
    IsNotNull,
    LikeExpr,
    Literal,
    Not,
    Or,
    clause_to_expr,
    conjuncts,
    like_match,
    parse_sql,
    predicate_to_expr,
    query_where_expr,
    to_clause,
)

ROW = {"name": "Bob", "age": 20, "text": "very delicious", "email": "x@y"}


class TestEvaluation:
    def test_comparisons(self):
        assert Comparison(Column("age"), "=", Literal(20)).evaluate(ROW)
        assert Comparison(Column("age"), ">", Literal(10)).evaluate(ROW)
        assert not Comparison(Column("age"), "<", Literal(10)).evaluate(ROW)
        assert Comparison(Column("age"), "!=", Literal(3)).evaluate(ROW)

    def test_null_comparisons_are_false(self):
        assert not Comparison(
            Column("missing"), "=", Literal(1)
        ).evaluate(ROW)
        assert not Comparison(
            Column("missing"), "!=", Literal(1)
        ).evaluate(ROW)

    def test_type_confusion_is_false(self):
        assert not Comparison(Column("age"), "=", Literal("20")).evaluate(ROW)
        assert not Comparison(
            Column("age"), "=", Literal(True)
        ).evaluate({"age": 1})

    def test_like(self):
        assert LikeExpr(Column("text"), "%delicious%").evaluate(ROW)
        assert LikeExpr(Column("text"), "very%").evaluate(ROW)
        assert not LikeExpr(Column("age"), "%2%").evaluate(ROW)  # non-string

    def test_null_checks(self):
        assert IsNotNull(Column("email")).evaluate(ROW)
        assert not IsNotNull(Column("missing")).evaluate(ROW)

    def test_boolean_combinators(self):
        true = Comparison(Column("age"), "=", Literal(20))
        false = Comparison(Column("age"), "=", Literal(3))
        assert And((true, true)).evaluate(ROW)
        assert not And((true, false)).evaluate(ROW)
        assert Or((false, true)).evaluate(ROW)
        assert Not(false).evaluate(ROW)

    def test_columns_collected(self):
        expr = And((
            Comparison(Column("a"), "=", Literal(1)),
            Or((LikeExpr(Column("b"), "%x%"), IsNotNull(Column("c")))),
        ))
        assert expr.columns() == {"a", "b", "c"}


class TestLikeMatch:
    @pytest.mark.parametrize(
        "pattern,value,expected",
        [
            ("%abc%", "xxabcyy", True),
            ("%abc%", "ab", False),
            ("abc%", "abcdef", True),
            ("abc%", "zabc", False),
            ("%abc", "zzabc", True),
            ("%abc", "abcz", False),
            ("abc", "abc", True),
            ("abc", "abcd", False),
            ("a%b%c", "a__b__c", True),
            ("a%b%c", "acb", False),
            ("%a%b%", "xaxbx", True),
            ("%a%b%", "xbxax", False),
            ("%%", "anything", True),
            ("", "", True),
        ],
    )
    def test_matching(self, pattern, value, expected):
        assert like_match(pattern, value) is expected


class TestConjuncts:
    def test_flattens_nested_ands(self):
        q = parse_sql(
            "SELECT * FROM t WHERE a = 1 AND (b = 2 AND c = 3) AND d = 4"
        )
        assert len(conjuncts(q.where)) == 4

    def test_none_is_empty(self):
        assert conjuncts(None) == []

    def test_single_atom(self):
        q = parse_sql("SELECT * FROM t WHERE a = 1")
        assert len(conjuncts(q.where)) == 1


class TestToClause:
    @pytest.mark.parametrize(
        "sql_fragment,kind,value",
        [
            ("name = 'Bob'", PredicateKind.EXACT, "Bob"),
            ("age = 10", PredicateKind.KEY_VALUE, 10),
            ("on = true", PredicateKind.KEY_VALUE, True),
            ("email != NULL", PredicateKind.KEY_PRESENCE, None),
            ("email IS NOT NULL", PredicateKind.KEY_PRESENCE, None),
            ("t LIKE '%x%'", PredicateKind.SUBSTRING, "x"),
            ("t LIKE 'x%'", PredicateKind.PREFIX, "x"),
            ("t LIKE '%x'", PredicateKind.SUFFIX, "x"),
            ("t LIKE 'x'", PredicateKind.EXACT, "x"),
        ],
    )
    def test_supported_atoms(self, sql_fragment, kind, value):
        q = parse_sql(f"SELECT * FROM t WHERE {sql_fragment}")
        got = to_clause(q.where)
        assert got is not None
        pred = got.predicates[0]
        assert pred.kind is kind
        assert pred.value == value

    @pytest.mark.parametrize(
        "sql_fragment",
        [
            "age > 10",             # range
            "age != 10",            # inequality
            "score = 1.5",          # float equality
            "t LIKE '%a%b%'",       # multi-segment pattern
            "NOT name = 'Bob'",     # negation
            "a IS NULL",            # null check (not presence)
        ],
    )
    def test_unsupported_atoms(self, sql_fragment):
        q = parse_sql(f"SELECT * FROM t WHERE {sql_fragment}")
        assert to_clause(q.where) is None

    def test_in_list_becomes_disjunctive_clause(self):
        q = parse_sql("SELECT * FROM t WHERE name IN ('a', 'b')")
        got = to_clause(q.where)
        assert got == clause(exact("name", "a"), exact("name", "b"))

    def test_disjunction_with_unsupported_arm_is_rejected(self):
        q = parse_sql("SELECT * FROM t WHERE name = 'a' OR age > 3")
        assert to_clause(q.where) is None


class TestRoundTripBridges:
    def test_predicate_expr_equivalence_on_rows(self):
        predicates = [
            exact("name", "Bob"),
            substring("text", "deli"),
            prefix("text", "very"),
            suffix("text", "cious"),
            key_present("email"),
            key_value("age", 20),
        ]
        rows = [ROW, {"name": "Eve"}, {"age": 20}, {}]
        for pred in predicates:
            expr = predicate_to_expr(pred)
            for row in rows:
                assert expr.evaluate(row) == pred.evaluate(row), (
                    pred.sql(), row
                )

    def test_clause_and_query_exprs(self):
        c1 = clause(exact("name", "Bob"), exact("name", "Eve"))
        c2 = clause(key_value("age", 20))
        expr = query_where_expr([c1, c2])
        assert expr.evaluate(ROW)
        assert not expr.evaluate({"name": "Bob", "age": 1})
        assert clause_to_expr(c1).evaluate({"name": "Eve"})

    def test_clause_sql_reparses_to_same_clause(self):
        original = clause(exact("name", "Bob"), key_value("age", 10))
        q = parse_sql(f"SELECT * FROM t WHERE {original.sql()}")
        assert to_clause(q.where) == original
