"""Fixture: copy under the lock, yield outside it."""

import threading

_lock = threading.Lock()
_items = ["a", "b"]


def stream():
    with _lock:
        snapshot = list(_items)
    for item in snapshot:
        yield item
