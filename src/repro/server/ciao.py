"""The CIAO server facade: plan registration, ingestion, and querying.

Wires the whole server side together (Fig. 1, right):

* holds the pushdown plan (Fig. 2's predicate hashmap) and decides the
  partial-loading policy;
* ingests encoded chunks from a channel — or :class:`JsonChunk` objects
  directly — through the client-assisted loader;
* registers the loaded table in a catalog and answers SQL through the mini
  engine, with bit-vector skipping planned automatically.

Partial-loading policy (``partial_loading='auto'``): enabled iff the plan
covers every query of the prospective workload, i.e. each query has at
least one pushed-down clause.  Then no prospective query ever needs the
sideline (§VI-B), so sidelining records cannot hurt those queries.  With an
uncovered workload the server loads everything — the paper's workload-C
behaviour, where loading shows no win but skipping still helps covered
queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..client.protocol import decode_chunk
from ..core.optimizer import PushdownPlan
from ..core.predicates import Query, Workload
from ..engine.catalog import Catalog, TableEntry
from ..engine.executor import Executor, QueryResult
from ..rawjson.chunks import JsonChunk
from ..simulate.network import Channel
from ..storage.jsonstore import JsonSideStore
from ..storage.schema import Schema
from .loader import ClientAssistedLoader, LoadSummary
from .pipeline import ShardedIngestPipeline


@dataclass
class ServerConfig:
    """Construction options for :class:`CiaoServer`."""

    data_dir: Path
    table_name: str = "t"
    partial_loading: str = "auto"  # 'auto' | 'on' | 'off'
    schema: Optional[Schema] = None
    n_shards: int = 1
    shard_mode: str = "process"  # 'process' | 'thread'


class CiaoServer:
    """One CIAO server instance managing one table.

    With ``n_shards > 1`` ingestion runs through a
    :class:`~repro.server.pipeline.ShardedIngestPipeline`: encoded chunks
    are fanned across shard workers (decode + parse + write each) and the
    shard outputs are merged into the catalog at :meth:`finalize_loading`.
    Query results are identical to serial ingest; ``load_summary`` is only
    complete once loading has finalized in that mode.
    """

    def __init__(self, data_dir: str | Path,
                 plan: Optional[PushdownPlan] = None,
                 workload: Optional[Workload] = None,
                 table_name: str = "t",
                 partial_loading: str = "auto",
                 schema: Optional[Schema] = None,
                 n_shards: int = 1,
                 shard_mode: str = "process"):
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.plan = plan
        self.workload = workload
        self.table_name = table_name
        self.partial_loading_enabled = self._decide_partial_loading(
            partial_loading
        )
        self._side_store = JsonSideStore(
            self.data_dir / f"{table_name}.sideline.jsonl"
        )
        self._parquet_path = self.data_dir / f"{table_name}.pql"
        required_ids = plan.predicate_ids if plan is not None else None
        self._loader: Optional[ClientAssistedLoader] = None
        self._pipeline: Optional[ShardedIngestPipeline] = None
        if n_shards > 1:
            self._pipeline = ShardedIngestPipeline(
                self._parquet_path,
                self._side_store,
                n_shards=n_shards,
                partial_loading=self.partial_loading_enabled,
                schema=schema,
                required_predicate_ids=required_ids,
                mode=shard_mode,
            )
        else:
            self._loader = ClientAssistedLoader(
                self._parquet_path,
                self._side_store,
                partial_loading=self.partial_loading_enabled,
                schema=schema,
                required_predicate_ids=required_ids,
            )
        self.catalog = Catalog()
        self._table = TableEntry(
            name=table_name,
            parquet_paths=[],
            side_store=self._side_store,
            pushdown=(
                {e.clause: e.predicate_id for e in plan.entries}
                if plan is not None else {}
            ),
        )
        self.catalog.register(self._table)
        self._executor = Executor(self.catalog)
        self._loading_finalized = False

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def ingest(self, chunk: Union[JsonChunk, bytes]) -> None:
        """Ingest one chunk (decoded or wire-encoded).

        Sharded servers forward encoded payloads verbatim — the shard
        worker decodes them off the submitting thread.
        """
        if self._pipeline is not None:
            self._pipeline.submit(chunk)
            return
        if isinstance(chunk, (bytes, bytearray)):
            chunk = decode_chunk(bytes(chunk))
        self._loader.ingest(chunk)

    def ingest_channel(self, channel: Channel) -> int:
        """Drain a channel; returns the number of chunks ingested."""
        count = 0
        for payload in channel.drain():
            self.ingest(payload)
            count += 1
        return count

    def finalize_loading(self) -> LoadSummary:
        """Seal storage and make the table queryable; idempotent.

        For a sharded server this is the merge point: shard loaders are
        sealed, their Parquet parts registered (shard-major order) and
        their sidelines folded into the table's store.
        """
        if self._pipeline is not None:
            summary = self._pipeline.finalize()
            parquet_paths = self._pipeline.parquet_paths
        else:
            summary = self._loader.finalize()
            parquet_paths = self._loader.parquet_paths
        if not self._loading_finalized:
            self._table.parquet_paths = list(parquet_paths)
            self._table.invalidate()
            self._loading_finalized = True
        return summary

    @property
    def load_summary(self) -> LoadSummary:
        """Loading statistics so far.

        In sharded mode the per-chunk reports only arrive at the merge, so
        this is empty until :meth:`finalize_loading` has run.
        """
        if self._pipeline is not None:
            return self._pipeline.summary
        return self._loader.summary

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self, sql: str) -> QueryResult:
        """Execute one SQL statement against the loaded table."""
        if not self._loading_finalized:
            self.finalize_loading()
        return self._executor.execute(sql)

    def run_workload(self, queries: Iterable[Query]
                     ) -> List[QueryResult]:
        """Execute core-model queries via their SQL renderings."""
        return [self.query(q.sql(self.table_name)) for q in queries]

    @property
    def table(self) -> TableEntry:
        """The managed table's catalog entry."""
        return self._table

    def update_plan(self, plan: PushdownPlan) -> None:
        """Swap in a replanned pushdown registry (adaptive replanning).

        Affects the query path immediately: queries matching the new
        plan's clauses resolve to its predicate ids.  Row groups loaded
        before the new predicates existed have no vectors for them and
        are scanned fully (the engine's missing-vector rule), so answers
        stay exact; data ingested by future sessions carries the new
        annotations.  Retained clauses keep their ids (see
        :mod:`repro.core.adaptive`), so their historical vectors keep
        skipping.
        """
        self.plan = plan
        self._table.pushdown = {
            e.clause: e.predicate_id for e in plan.entries
        }

    # ------------------------------------------------------------------
    def _decide_partial_loading(self, mode: str) -> bool:
        if mode == "on":
            return True
        if mode == "off":
            return False
        if mode != "auto":
            raise ValueError(
                f"partial_loading must be 'auto', 'on' or 'off', got {mode!r}"
            )
        if self.plan is None or len(self.plan) == 0:
            return False
        if self.workload is None:
            # No prospective workload to check coverage against: be
            # conservative, exactly like a baseline server.
            return False
        return all(self.plan.covers_query(q) for q in self.workload)
