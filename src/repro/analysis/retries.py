"""Retry discipline for transport-facing layers.

Fault tolerance lives or dies on *bounded* retries: an unbounded
``while True: try/except`` reconnect loop turns a dead peer into a
livelocked client (and, server-side, a pinned router thread).  The
sanctioned shape is :class:`repro.recovery.RetryPolicy` — a hard
attempt bound with backoff — iterated with a ``for`` loop, which is
bounded by construction.

``RET001``
    A ``while True`` loop in a transport/service/recovery-role module
    that swallows exceptions (some handler neither re-raises, returns,
    nor breaks) and has no escape the exception path can reach: every
    ``return``/``raise``/``break`` sits inside the swallowed ``try``
    body, so persistent failure spins forever.  Drive the retry with
    ``for pause in policy.pauses():`` instead, or give the handler an
    explicit bound.

Scope: modules whose role is ``protocol`` (the transport stack),
``service``, or ``recovery`` (path-inferred, or declared with
``# ciaolint: module-role=...``).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .findings import Finding
from .model import Project, SourceModule
from .registry import Checker, register

_RETRY_ROLES = ("protocol", "service", "recovery")

_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _is_while_true(node: ast.While) -> bool:
    test = node.test
    return isinstance(test, ast.Constant) and test.value is True


def _swallows(handler: ast.ExceptHandler) -> bool:
    """A handler that neither re-raises, returns, nor breaks.

    Such a handler sends control back around the loop no matter what
    went wrong — the shape that needs an external bound to terminate.
    """
    return not any(
        isinstance(inner, (ast.Raise, ast.Return, ast.Break))
        for inner in ast.walk(handler)
    )


class _LoopAudit:
    """Escape analysis for one ``while True`` body.

    Walks the statement tree tracking whether the current position is
    *protected* by a swallowing ``try`` — i.e. whether an exception
    can skip it.  An exit (``return``/``raise``, or ``break`` bound to
    this loop) only counts if the exception path can still reach it:
    exits inside a swallowed ``try`` body never run when the operation
    keeps failing, and exits inside handler bodies only bound their own
    exception type (their presence already makes that handler
    non-swallowing).
    """

    def __init__(self) -> None:
        self.swallowing_trys: List[ast.Try] = []
        self.reachable_exit = False

    def scan(self, body: List[ast.stmt], protected: bool = False,
             own_loop: bool = True) -> None:
        for stmt in body:
            if isinstance(stmt, _SCOPES):
                continue  # nested scopes neither exit nor retry this loop
            if isinstance(stmt, (ast.Return, ast.Raise)):
                if not protected:
                    self.reachable_exit = True
            elif isinstance(stmt, ast.Break):
                if not protected and own_loop:
                    self.reachable_exit = True
            elif isinstance(stmt, ast.Try):
                swallowed = any(_swallows(h) for h in stmt.handlers)
                if swallowed:
                    self.swallowing_trys.append(stmt)
                self.scan(stmt.body, protected or swallowed, own_loop)
                self.scan(stmt.orelse, protected or swallowed, own_loop)
                # finally always runs, even on the exception path.
                self.scan(stmt.finalbody, protected, own_loop)
            elif isinstance(stmt, ast.If):
                self.scan(stmt.body, protected, own_loop)
                self.scan(stmt.orelse, protected, own_loop)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self.scan(stmt.body, protected, own_loop)
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                # break in a nested loop stays in the nested loop.
                self.scan(stmt.body, protected, own_loop=False)
                self.scan(stmt.orelse, protected, own_loop)


@register
class RetryBoundsChecker(Checker):
    name = "retry-bounds"
    description = (
        "transport-facing retry loops terminate: no unbounded "
        "while True: try/except reconnects"
    )
    rules = {
        "RET001": (
            "unbounded swallow-and-spin retry loop — iterate "
            "RetryPolicy.pauses() or bound the handler"
        ),
    }

    def check(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in project.by_role(*_RETRY_ROLES):
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.While) or not _is_while_true(node):
                continue
            audit = _LoopAudit()
            audit.scan(node.body)
            if audit.swallowing_trys and not audit.reachable_exit:
                findings.append(Finding(
                    path=module.rel_path, line=node.lineno,
                    col=node.col_offset, rule="RET001",
                    checker=self.name,
                    message=(
                        "while True retry loop swallows exceptions with "
                        "no reachable exit on the failure path: a dead "
                        "peer spins this forever — drive it with "
                        "`for pause in RetryPolicy(...).pauses():` or "
                        "bound the handler explicitly"
                    ),
                ))
        return findings
