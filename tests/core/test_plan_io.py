"""Unit tests for pushdown-plan serialization."""

import pytest

from repro.core import (
    Budget,
    PlanFormatError,
    clause,
    dumps_plan,
    exact,
    key_present,
    key_value,
    loads_plan,
    substring,
)
from repro.core.plan_io import (
    clause_from_dict,
    clause_to_dict,
    plan_from_dict,
    plan_to_dict,
)
from repro.rawjson import dump_record


@pytest.fixture()
def plan(tiny_optimizer):
    return tiny_optimizer.plan(Budget(10.0))


class TestClauseSerialization:
    def test_roundtrip_all_kinds(self):
        clauses = [
            clause(exact("name", "Bob"), exact("name", "Jo's")),
            clause(key_value("age", 10)),
            clause(key_value("on", True)),
            clause(key_present("email")),
            clause(substring("text", 'has "quotes" and \\slashes\\')),
        ]
        for c in clauses:
            assert clause_from_dict(clause_to_dict(c)) == c

    def test_empty_clause_rejected(self):
        with pytest.raises(PlanFormatError):
            clause_from_dict([])

    def test_bad_kind_rejected(self):
        with pytest.raises(PlanFormatError):
            clause_from_dict([{"kind": "regex", "column": "a", "value": "b"}])


class TestPlanRoundtrip:
    def test_full_roundtrip(self, plan):
        restored = loads_plan(dumps_plan(plan))
        assert restored.predicate_ids == plan.predicate_ids
        assert restored.clauses == plan.clauses
        assert restored.budget.us == plan.budget.us
        for a, b in zip(restored.entries, plan.entries):
            assert a.selectivity == b.selectivity
            assert a.cost_us == pytest.approx(b.cost_us)

    def test_patterns_rederived_identically(self, plan):
        restored = loads_plan(dumps_plan(plan))
        for a, b in zip(restored.entries, plan.entries):
            assert a.compiled.specs == b.compiled.specs

    def test_restored_matchers_behave_identically(self, plan):
        restored = loads_plan(dumps_plan(plan))
        records = [
            {"name": "Bob", "age": 20, "text": "so delicious",
             "email": "e@f"},
            {"name": "Eve", "age": 3, "text": "meh"},
            {},
        ]
        for record in records:
            raw = dump_record(record)
            for a, b in zip(restored.entries, plan.entries):
                assert a.compiled.match(raw) == b.compiled.match(raw)

    def test_id_gaps_preserved(self, plan):
        data = plan_to_dict(plan)
        data["entries"] = [e for e in data["entries"] if e["id"] != 1]
        restored = plan_from_dict(data)
        assert 1 not in restored.predicate_ids


class TestValidation:
    def test_wrong_format_rejected(self, plan):
        data = plan_to_dict(plan)
        data["format"] = "ciao-plan/999"
        with pytest.raises(PlanFormatError):
            plan_from_dict(data)

    def test_duplicate_ids_rejected(self, plan):
        data = plan_to_dict(plan)
        data["entries"].append(dict(data["entries"][0]))
        with pytest.raises(PlanFormatError):
            plan_from_dict(data)

    def test_non_json_payload_rejected(self):
        with pytest.raises(PlanFormatError):
            loads_plan("{not json")

    def test_non_object_payload_rejected(self):
        with pytest.raises(PlanFormatError):
            loads_plan("[1, 2]")

    def test_tampered_patterns_are_ignored(self, plan):
        # Patterns in the payload are informational; the loaded plan must
        # re-derive them from the clause (no-false-negative contract).
        data = plan_to_dict(plan)
        data["entries"][0]["patterns"] = ["@@bogus@@"]
        restored = plan_from_dict(data)
        original = plan.entries[0]
        match = restored.lookup(original.clause)
        assert match is not None
        assert match.compiled.specs == original.compiled.specs
