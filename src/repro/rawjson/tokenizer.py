"""A from-scratch JSON tokenizer.

CIAO's server must *actually pay* for parsing: partial loading only shows a
benefit if converting a JSON record into tuples costs real work.  We therefore
implement the lexer (and the parser on top of it) from scratch instead of
calling the C-accelerated stdlib ``json`` — mirroring the paper's rapidJSON
server component, where parsing is likewise orders of magnitude more expensive
than a bare substring search.

The grammar follows RFC 8259: strings with full escape handling (including
``\\uXXXX`` surrogate pairs), numbers with optional fraction/exponent, the
three literals, and the six punctuators.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, List, Optional, Union

from .errors import JsonTokenError


class TokenType(Enum):
    """Lexical token kinds of RFC 8259 JSON."""

    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    COLON = auto()
    COMMA = auto()
    STRING = auto()
    NUMBER = auto()
    TRUE = auto()
    FALSE = auto()
    NULL = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    """One lexical token with its decoded value and source offset."""

    type: TokenType
    value: Union[str, int, float, bool, None]
    position: int


_WHITESPACE = " \t\n\r"
_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
}
_DIGITS = "0123456789"


class Tokenizer:
    """Streaming lexer over a JSON text.

    >>> [t.type.name for t in Tokenizer('{"a": 1}').tokens()]
    ['LBRACE', 'STRING', 'COLON', 'NUMBER', 'RBRACE', 'EOF']
    """

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._length = len(text)

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens followed by a single EOF token."""
        while True:
            token = self.next_token()
            yield token
            if token.type is TokenType.EOF:
                return

    def next_token(self) -> Token:
        """Scan and return the next token (EOF at end of input)."""
        self._skip_whitespace()
        if self._pos >= self._length:
            return Token(TokenType.EOF, None, self._pos)
        ch = self._text[self._pos]
        start = self._pos
        if ch == "{":
            self._pos += 1
            return Token(TokenType.LBRACE, "{", start)
        if ch == "}":
            self._pos += 1
            return Token(TokenType.RBRACE, "}", start)
        if ch == "[":
            self._pos += 1
            return Token(TokenType.LBRACKET, "[", start)
        if ch == "]":
            self._pos += 1
            return Token(TokenType.RBRACKET, "]", start)
        if ch == ":":
            self._pos += 1
            return Token(TokenType.COLON, ":", start)
        if ch == ",":
            self._pos += 1
            return Token(TokenType.COMMA, ",", start)
        if ch == '"':
            return self._scan_string()
        if ch == "-" or ch in _DIGITS:
            return self._scan_number()
        if ch == "t":
            return self._scan_literal("true", TokenType.TRUE, True)
        if ch == "f":
            return self._scan_literal("false", TokenType.FALSE, False)
        if ch == "n":
            return self._scan_literal("null", TokenType.NULL, None)
        raise JsonTokenError(f"unexpected character {ch!r}", self._pos)

    @property
    def position(self) -> int:
        """Current byte offset into the input."""
        return self._pos

    # ------------------------------------------------------------------
    def _skip_whitespace(self) -> None:
        text, pos, length = self._text, self._pos, self._length
        while pos < length and text[pos] in _WHITESPACE:
            pos += 1
        self._pos = pos

    def _scan_literal(self, word: str, ttype: TokenType, value) -> Token:
        start = self._pos
        end = start + len(word)
        if self._text[start:end] != word:
            raise JsonTokenError(f"invalid literal, expected {word!r}", start)
        self._pos = end
        return Token(ttype, value, start)

    def _scan_string(self) -> Token:
        text = self._text
        start = self._pos
        pos = start + 1  # skip the opening quote
        pieces: List[str] = []
        segment_start = pos
        while True:
            if pos >= self._length:
                raise JsonTokenError("unterminated string", start)
            ch = text[pos]
            if ch == '"':
                pieces.append(text[segment_start:pos])
                self._pos = pos + 1
                return Token(TokenType.STRING, "".join(pieces), start)
            if ch == "\\":
                pieces.append(text[segment_start:pos])
                decoded, pos = self._scan_escape(pos)
                pieces.append(decoded)
                segment_start = pos
                continue
            if ord(ch) < 0x20:
                raise JsonTokenError(
                    f"unescaped control character {ch!r} in string", pos
                )
            pos += 1

    def _scan_escape(self, pos: int) -> tuple:
        """Decode one backslash escape starting at *pos*; return (str, next)."""
        text = self._text
        if pos + 1 >= self._length:
            raise JsonTokenError("truncated escape sequence", pos)
        ch = text[pos + 1]
        simple = _ESCAPES.get(ch)
        if simple is not None:
            return simple, pos + 2
        if ch == "u":
            code, pos = self._scan_unicode_escape(pos)
            if 0xD800 <= code <= 0xDBFF:
                return self._scan_surrogate_pair(code, pos)
            if 0xDC00 <= code <= 0xDFFF:
                # A lone low surrogate cannot be represented; substitute.
                return "�", pos
            return chr(code), pos
        raise JsonTokenError(f"invalid escape character {ch!r}", pos + 1)

    def _scan_unicode_escape(self, pos: int) -> tuple:
        """Read ``\\uXXXX`` starting at *pos*; return (codepoint, next_pos)."""
        hex_digits = self._text[pos + 2 : pos + 6]
        if len(hex_digits) != 4:
            raise JsonTokenError("truncated \\u escape", pos)
        try:
            code = int(hex_digits, 16)
        except ValueError:
            raise JsonTokenError(
                f"invalid \\u escape {hex_digits!r}", pos
            ) from None
        return code, pos + 6

    def _scan_surrogate_pair(self, high: int, pos: int) -> tuple:
        """Combine a high surrogate with a following ``\\uXXXX`` low half."""
        text = self._text
        if text[pos : pos + 2] == "\\u":  # ciaolint: allow[PRO001] -- str compare: a short slice simply fails the ==
            low, next_pos = self._scan_unicode_escape(pos)
            if 0xDC00 <= low <= 0xDFFF:
                combined = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                return chr(combined), next_pos
        # Unpaired high surrogate: substitute, consume nothing extra.
        return "�", pos

    def _scan_number(self) -> Token:
        text = self._text
        start = self._pos
        pos = start
        if pos < self._length and text[pos] == "-":
            pos += 1
        # Integer part: 0, or a nonzero digit followed by digits.
        if pos >= self._length or text[pos] not in _DIGITS:
            raise JsonTokenError("malformed number", start)
        if text[pos] == "0":
            pos += 1
        else:
            while pos < self._length and text[pos] in _DIGITS:
                pos += 1
        is_float = False
        if pos < self._length and text[pos] == ".":
            is_float = True
            pos += 1
            if pos >= self._length or text[pos] not in _DIGITS:
                raise JsonTokenError("digit expected after decimal point", pos)
            while pos < self._length and text[pos] in _DIGITS:
                pos += 1
        if pos < self._length and text[pos] in "eE":
            is_float = True
            pos += 1
            if pos < self._length and text[pos] in "+-":
                pos += 1
            if pos >= self._length or text[pos] not in _DIGITS:
                raise JsonTokenError("digit expected in exponent", pos)
            while pos < self._length and text[pos] in _DIGITS:
                pos += 1
        literal = text[start:pos]
        self._pos = pos
        value: Union[int, float]
        if is_float:
            value = float(literal)
        else:
            value = int(literal)
        return Token(TokenType.NUMBER, value, start)


def tokenize(text: str) -> List[Token]:
    """Tokenize *text* eagerly; convenience wrapper for tests and tools."""
    return list(Tokenizer(text).tokens())
