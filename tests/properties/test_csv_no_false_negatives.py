"""Property test: the CSV matchers obey the one-sided error contract too.

Same invariant as the JSON property suite (§IV-B): for every supported
predicate and record, a semantic match implies a raw CSV-line match.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import exact, key_value, prefix, substring, suffix
from repro.rawcsv import CsvCodec, compile_csv_predicate

COLUMNS = ["alpha", "beta", "gamma"]
CODEC = CsvCodec(COLUMNS, types={"gamma": int})

# Quote-free text: operands with quotes are rejected by the compiler, and
# values may contain anything EXCEPT newlines (line framing).
field_text = st.text(
    alphabet=st.characters(blacklist_characters='"\n\r'), max_size=20
)
operand_text = st.text(
    alphabet=st.characters(blacklist_characters='"\n\r'),
    min_size=1, max_size=10,
)


@st.composite
def records(draw):
    return {
        "alpha": draw(field_text),
        "beta": draw(field_text),
        "gamma": draw(st.integers(min_value=-9999, max_value=9999)),
    }


@st.composite
def csv_predicates(draw):
    kind = draw(st.sampled_from(
        ["exact", "substring", "prefix", "suffix", "kv"]
    ))
    if kind == "kv":
        return key_value(
            "gamma", draw(st.integers(min_value=-9999, max_value=9999))
        )
    column = draw(st.sampled_from(["alpha", "beta"]))
    operand = draw(operand_text)
    maker = {
        "exact": exact, "substring": substring,
        "prefix": prefix, "suffix": suffix,
    }[kind]
    return maker(column, operand)


@given(records(), csv_predicates())
@settings(max_examples=500)
def test_csv_no_false_negatives(record, predicate):
    if predicate.evaluate(record):
        line = CODEC.encode_record(record)
        spec = compile_csv_predicate(predicate, CODEC)
        assert spec.match(line), (
            f"CSV FALSE NEGATIVE: {predicate.sql()} on {line!r}"
        )


@st.composite
def planted_csv_cases(draw):
    record = draw(records())
    column = draw(st.sampled_from(["alpha", "beta"]))
    operand = draw(operand_text)
    pad_a = draw(field_text)
    pad_b = draw(field_text)
    kind = draw(st.sampled_from(["exact", "substring", "prefix", "suffix"]))
    if kind == "exact":
        pred, value = exact(column, operand), operand
    elif kind == "substring":
        pred, value = substring(column, operand), pad_a + operand + pad_b
    elif kind == "prefix":
        pred, value = prefix(column, operand), operand + pad_b
    else:
        pred, value = suffix(column, operand), pad_a + operand
    record[column] = value
    return pred, record


@given(planted_csv_cases())
@settings(max_examples=500)
def test_csv_no_false_negatives_on_planted_matches(case):
    predicate, record = case
    assert predicate.evaluate(record)
    line = CODEC.encode_record(record)
    assert compile_csv_predicate(predicate, CODEC).match(line), (
        f"CSV FALSE NEGATIVE: {predicate.sql()} on {line!r}"
    )


@given(records())
@settings(max_examples=300)
def test_csv_codec_roundtrip(record):
    assert CODEC.decode_line(CODEC.encode_record(record)) == record
