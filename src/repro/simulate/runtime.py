"""Cost ledgers: the deterministic time axis of every experiment.

Each end-to-end run maintains one :class:`CostLedger` with the paper's
three accounts — ``prefiltering`` (client), ``loading`` (server parse +
convert), ``query`` (execution) — charged in virtual microseconds from the
calibrated cost model.  Wall-clock seconds are recorded alongside; the
benches print both so readers can check that the deterministic model and
the actual Python runtime agree in *shape*.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

#: Canonical account names, matching the stacked bars of Figs 3–5.
PREFILTERING = "prefiltering"
LOADING = "loading"
QUERY = "query"
ACCOUNTS = (PREFILTERING, LOADING, QUERY)


@dataclass
class CostLedger:
    """Virtual-µs and wall-clock accounting across named accounts."""

    virtual_us: Dict[str, float] = field(default_factory=dict)
    wall_seconds: Dict[str, float] = field(default_factory=dict)

    def charge(self, account: str, microseconds: float) -> None:
        """Add virtual cost to *account*."""
        if microseconds < 0:
            raise ValueError("cannot charge negative cost")
        self.virtual_us[account] = (
            self.virtual_us.get(account, 0.0) + microseconds
        )

    def charge_wall(self, account: str, seconds: float) -> None:
        """Add wall-clock seconds to *account*."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.wall_seconds[account] = (
            self.wall_seconds.get(account, 0.0) + seconds
        )

    @contextmanager
    def timed(self, account: str) -> Iterator[None]:
        """Wall-clock a with-block into *account*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.charge_wall(account, time.perf_counter() - start)

    # ------------------------------------------------------------------
    def virtual_total_us(self) -> float:
        """Σ virtual µs over all accounts."""
        return sum(self.virtual_us.values())

    def wall_total_seconds(self) -> float:
        """Σ wall seconds over all accounts."""
        return sum(self.wall_seconds.values())

    def virtual_seconds(self, account: str) -> float:
        """One account's virtual time, in seconds."""
        return self.virtual_us.get(account, 0.0) / 1e6

    def merge(self, other: "CostLedger") -> "CostLedger":
        """Sum of two ledgers (new object)."""
        merged = CostLedger(dict(self.virtual_us), dict(self.wall_seconds))
        for account, us in other.virtual_us.items():
            merged.charge(account, us)
        for account, sec in other.wall_seconds.items():
            merged.charge_wall(account, sec)
        return merged

    def rows(self) -> List[Tuple[str, float, float]]:
        """(account, virtual_seconds, wall_seconds) rows for reporting."""
        accounts = list(ACCOUNTS) + sorted(
            set(self.virtual_us) | set(self.wall_seconds) - set(ACCOUNTS)
        )
        seen = set()
        out: List[Tuple[str, float, float]] = []
        for account in accounts:
            if account in seen:
                continue
            seen.add(account)
            if (account not in self.virtual_us
                    and account not in self.wall_seconds):
                continue
            out.append(
                (
                    account,
                    self.virtual_seconds(account),
                    self.wall_seconds.get(account, 0.0),
                )
            )
        return out

    def describe(self) -> str:
        """Small table: per-account virtual and wall time."""
        lines = [f"{'account':<14}{'virtual (s)':>14}{'wall (s)':>12}"]
        for account, virtual, wall in self.rows():
            lines.append(f"{account:<14}{virtual:>14.4f}{wall:>12.4f}")
        lines.append(
            f"{'total':<14}{self.virtual_total_us() / 1e6:>14.4f}"
            f"{self.wall_total_seconds():>12.4f}"
        )
        return "\n".join(lines)
