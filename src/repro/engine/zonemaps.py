"""Zone-map pruning: skip row groups using min/max column statistics.

An extension over the paper, implementing the classic data-skipping its
related work cites (Sun et al. [12]): Parquet-lite already records
per-row-group min/max/null-count per column, and for clustered columns
(log sequence numbers, timestamps) those statistics prove entire row
groups irrelevant to range and equality predicates — *including the
range/inequality predicates CIAO cannot push to clients*, so zone maps
complement bit-vector skipping rather than replace it.

The core is :func:`expr_prunes_group`: given a WHERE expression and a row
group's metadata, decide conservatively whether *no row in the group can
satisfy the expression*.  Conjunctions prune if any factor does,
disjunctions only if every arm does, and anything not understood never
prunes — soundness by construction.
"""

from __future__ import annotations

from typing import Any, Optional

from ..storage.metadata import RowGroupMeta
from ..storage.pages import PageStats
from .expressions import (
    And,
    Column,
    Comparison,
    Expr,
    IsNotNull,
    IsNull,
    LikeExpr,
    Literal,
    Not,
    Or,
)


def expr_prunes_group(expr: Expr, meta: RowGroupMeta) -> bool:
    """True iff the statistics prove no row of the group satisfies *expr*.

    Conservative: unknown expression shapes, missing columns, or missing
    statistics all return False (cannot prune).
    """
    if isinstance(expr, And):
        return any(expr_prunes_group(c, meta) for c in expr.children)
    if isinstance(expr, Or):
        return all(expr_prunes_group(c, meta) for c in expr.children)
    if isinstance(expr, Not):
        return False  # complement bounds are not tracked
    if isinstance(expr, Comparison):
        return _comparison_prunes(expr, meta)
    if isinstance(expr, LikeExpr):
        return _like_prunes(expr, meta)
    if isinstance(expr, IsNull):
        stats = _column_stats(expr.column, meta)
        return stats is not None and stats.null_count == 0
    if isinstance(expr, IsNotNull):
        stats = _column_stats(expr.column, meta)
        return stats is not None and stats.null_count == stats.row_count
    return False


def _column_stats(column: Expr, meta: RowGroupMeta) -> Optional[PageStats]:
    if not isinstance(column, Column):
        return None
    chunk = meta.columns.get(column.name)
    return chunk.stats if chunk is not None else None


def _comparable(value: Any, bound: Any) -> bool:
    """Are *value* and *bound* same-kind scalars the stats can bound?

    Bool is excluded: its min/max carry almost no pruning power and
    True/1 confusion is a correctness trap.
    """
    if isinstance(value, bool) or isinstance(bound, bool):
        return False
    if isinstance(value, str) and isinstance(bound, str):
        return True
    numeric = (int, float)
    return isinstance(value, numeric) and isinstance(bound, numeric)


def _comparison_prunes(expr: Comparison, meta: RowGroupMeta) -> bool:
    if not isinstance(expr.left, Column) or not isinstance(
            expr.right, Literal):
        return False
    stats = _column_stats(expr.left, meta)
    if stats is None:
        return False
    value = expr.right.value
    if value is None:
        return False
    if stats.min_value is None or stats.max_value is None:
        # No non-null values in the group: any comparison is false for
        # every row (comparisons never match nulls).
        return stats.null_count == stats.row_count
    low, high = stats.min_value, stats.max_value
    if not _comparable(value, low):
        return False
    op = expr.op
    if op == "=":
        return value < low or value > high
    if op == "<":
        return low >= value
    if op == "<=":
        return low > value
    if op == ">":
        return high <= value
    if op == ">=":
        return high < value
    return False  # '!=' is effectively unprunable


def _like_prunes(expr: LikeExpr, meta: RowGroupMeta) -> bool:
    """Prune prefix patterns (``'abc%'``) against string min/max."""
    stats = _column_stats(expr.column, meta)
    if stats is None:
        return False
    if stats.min_value is None or stats.max_value is None:
        return stats.null_count == stats.row_count
    pattern = expr.pattern
    if not pattern or pattern.startswith("%"):
        return False
    prefix = pattern.split("%", 1)[0]
    if not prefix:
        return False
    low, high = stats.min_value, stats.max_value
    if not isinstance(low, str) or not isinstance(high, str):
        return False
    if high < prefix:
        return True  # every value sorts before the prefix
    upper = _prefix_upper_bound(prefix)
    if upper is not None and low >= upper:
        return True  # every value sorts after all prefix-matches
    return False


def _prefix_upper_bound(prefix: str) -> Optional[str]:
    """Smallest string greater than every string starting with *prefix*."""
    for i in range(len(prefix) - 1, -1, -1):
        code = ord(prefix[i])
        if code < 0x10FFFF:
            return prefix[:i] + chr(code + 1)
    return None  # prefix is all U+10FFFF; no upper bound exists
