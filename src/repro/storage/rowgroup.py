"""Row-group assembly: rows in, column chunks + metadata out.

A row group is the skipping granularity: the partial loader emits one row
group per client chunk so the chunk's bit-vectors map one-to-one onto row
positions.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.sanitizer import make_lock
from ..bitvec.bitvector import BitVector
from .encodings import Encoding
from .metadata import ColumnChunkMeta, RowGroupMeta
from .pages import read_page, write_page
from .schema import Schema, coerce_value


def build_row_group(
    rows: Sequence[Mapping[str, Any]],
    schema: Schema,
    base_offset: int,
    source_chunk_id: Optional[int] = None,
    bitvectors: Optional[Mapping[int, BitVector]] = None,
    encoding: Optional[Encoding] = None,
) -> Tuple[bytes, RowGroupMeta]:
    """Encode *rows* into a row-group block positioned at *base_offset*.

    Returns the block bytes and its metadata (column chunk offsets are
    absolute file offsets, so the caller passes where the block will land).
    """
    if not rows:
        raise ValueError("row groups must contain at least one row")
    meta = RowGroupMeta(
        row_count=len(rows), source_chunk_id=source_chunk_id
    )
    block = bytearray()
    for field in schema:
        values = [
            coerce_value(row.get(field.name), field.type) for row in rows
        ]
        page, stats = write_page(values, field.type, encoding=encoding)
        meta.columns[field.name] = ColumnChunkMeta(
            offset=base_offset + len(block),
            length=len(page),
            stats=stats,
        )
        block += page
    if bitvectors:
        for predicate_id, bv in bitvectors.items():
            meta.attach_bitvector(predicate_id, bv)
    return bytes(block), meta


class RowGroupReader:
    """Decode columns of one row group from an open file.

    Concurrent queries share one file handle per Parquet-lite file (the
    catalog caches readers), so page reads must not race on the handle's
    seek position: where the platform has :func:`os.pread` the read is
    positionless and lock-free; otherwise *read_lock* serializes the
    seek+read pair.  Pass the same lock to every row group of one file.
    """

    def __init__(self, file_handle, schema: Schema, meta: RowGroupMeta,
                 read_lock=None):
        self._file = file_handle
        self._schema = schema
        self.meta = meta
        # guarded-by: _read_lock (the shared handle's seek position, on
        # platforms without pread)
        self._read_lock = read_lock or make_lock(
            "RowGroupReader._read_lock"
        )
        self._cache: Dict[str, List[Any]] = {}

    def _read_at(self, offset: int, length: int) -> bytes:
        """Read *length* bytes at *offset* without racing other readers."""
        try:
            fd = self._file.fileno()
        except (AttributeError, OSError):
            fd = None
        if fd is not None and hasattr(os, "pread"):
            parts: List[bytes] = []
            remaining = length
            position = offset
            while remaining > 0:
                part = os.pread(fd, remaining, position)
                if not part:
                    break
                parts.append(part)
                position += len(part)
                remaining -= len(part)
            return b"".join(parts)
        with self._read_lock:
            self._file.seek(offset)
            return self._file.read(length)

    @property
    def row_count(self) -> int:
        """Rows in this group."""
        return self.meta.row_count

    def column(self, name: str) -> List[Any]:
        """Decode (and cache) one column.

        A column missing from this file's schema reads as all nulls — a
        query may reference keys that no loaded record ever had, or that
        only appear in a later, wider file of the same table.
        """
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        chunk = self.meta.columns.get(name)
        if chunk is None:
            values: List[Any] = [None] * self.meta.row_count
        else:
            page = self._read_at(chunk.offset, chunk.length)
            values = read_page(page, self._schema.field(name).type)
        self._cache[name] = values
        return values

    def read_batch(self, columns: Optional[Sequence[str]] = None
                   ) -> Dict[str, List[Any]]:
        """Decode the requested columns once, as column value lists.

        This is the columnar fast path under the batch query engine: each
        page is decoded exactly once and handed over as a plain list —
        no per-row dict is ever materialized (compare :meth:`rows`).
        Columns absent from the schema read as all-null lists, matching
        :meth:`column`.
        """
        names = list(columns) if columns is not None else self._schema.names
        return {name: self.column(name) for name in names}

    def rows(self, columns: Optional[Sequence[str]] = None,
             indices: Optional[Sequence[int]] = None
             ) -> List[Dict[str, Any]]:
        """Materialize rows as dicts.

        ``columns`` restricts which columns are decoded (projection
        pushdown); ``indices`` restricts which row positions materialize
        (the data-skipping hook — skipped rows are never built).
        """
        names = list(columns) if columns is not None else self._schema.names
        data = {name: self.column(name) for name in names}
        positions = indices if indices is not None else range(self.row_count)
        return [
            {name: data[name][i] for name in names} for i in positions
        ]

    def clear_cache(self) -> None:
        """Drop decoded column caches (memory control for big scans)."""
        self._cache.clear()
