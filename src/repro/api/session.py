"""The CIAO front door: plan → load → query in one session object.

The paper presents CIAO as a single framework (Fig. 1): a workload goes
in, an optimized pushdown plan comes out, and client-assisted loading and
skipping run underneath.  :class:`CiaoSession` is that picture as an API:

    session = CiaoSession(workload, source="yelp", seed=7)
    plan = session.plan(Budget(1.0))
    report = session.load(n_records=10_000).result()
    result = session.query("SELECT COUNT(*) FROM t")

Everything underneath — sampling, selectivity estimation, cost modeling,
optimization, server construction, client simulation, fleet coordination,
transport — stays the existing low-level API; the session composes it and
injects nothing you cannot override (pass your own ``selectivities``,
``cost_model``, ``plan``, population, or channel spec).  One session is
one deployment: its :class:`~repro.api.config.DeploymentConfig` decides
whether a load runs serial, sharded, or as a coordinated fleet, and
:meth:`load` always returns a :class:`LoadJob` handle with the same
contract in every mode.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from ..analysis.sanitizer import make_lock
from ..client.device import SimulatedClient
from ..compact import Compactor, resolve_compaction
from ..core.budgets import Budget
from ..core.cost_model import DEFAULT_COEFFICIENTS, CostModel
from ..core.optimizer import CiaoOptimizer, PushdownPlan
from ..core.predicates import Query, Workload
from ..data import DEFAULT_SEED
from ..data.randomness import derive_seed
from ..engine.executor import QueryResult
from ..fleet.coordinator import FleetCoordinator
from ..obs.metrics import Metrics, resolve_metrics
from ..obs.querylog import QueryLog, QueryLogRecord, resolve_query_log
from ..obs.tracing import Tracer, resolve_tracer
from ..fleet.population import ClientPopulation
from ..recovery.manifest import ManifestError
from ..server.ciao import CiaoServer
from ..transport import Channel, make_channel, per_client_channels
from ..workload.selectivity import estimate_selectivities
from .config import DeploymentConfig
from .report import LoadReport
from .source import DataSource, SourceLike, as_source


@dataclass(frozen=True)
class LoadProgress:
    """A point-in-time view of a running :class:`LoadJob`."""

    state: str  # 'running' | 'done' | 'failed'
    records_shipped: int
    chunks_shipped: int

    @property
    def done(self) -> bool:
        return self.state != "running"


class LoadJob:
    """Handle on one in-flight (or finished) load.

    The load runs on a background thread, so the caller keeps control
    while data flows: poll :meth:`progress`, answer analytics mid-load
    with :meth:`snapshot_query` (sharded deployments), and collect the
    unified :class:`~repro.api.report.LoadReport` with :meth:`result` —
    which joins the load, finalizes the server, and enforces the
    accounting invariant's visibility in every mode.
    """

    def __init__(self, server: CiaoServer, config: DeploymentConfig,
                 records_offered: Optional[int]):
        self.server = server
        self.config = config
        self.records_offered = records_offered
        self._thread: Optional[threading.Thread] = None
        # guarded-by: <written by the load thread, read after wait()/join>
        self._error: Optional[BaseException] = None
        self._report: Optional[LoadReport] = None
        self._started = time.perf_counter()
        # guarded-by: <written by the load thread, read after wait()/join>
        self._wall: Optional[float] = None
        #: Server summary, set by the worker thread after it finalizes —
        #: so wall time covers finalize in every mode (the fleet
        #: coordinator finalizes internally; serial/sharded match it).
        # guarded-by: <written by the load thread, read after wait()/join>
        self._summary = None
        # Mode-specific progress taps, set by the session at start.
        self._client: Optional[SimulatedClient] = None
        self._channel: Optional[Channel] = None
        self._coordinator: Optional[FleetCoordinator] = None
        # guarded-by: <written by the load thread, read after wait()/join>
        self._fleet_report = None
        # Externally-fed loads (a network service pushing chunks) have no
        # load thread; completion is signalled through an event instead.
        self._external = False
        self._finished: Optional[threading.Event] = None

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """The deployment mode this job runs under."""
        return self.config.mode

    @property
    def done(self) -> bool:
        """True once the load has finished (success or failure)."""
        if self._external:
            return self._finished.is_set()
        return self._thread is not None and not self._thread.is_alive()

    def progress(self) -> LoadProgress:
        """Client-side progress so far (monotone, safely stale)."""
        if self._coordinator is not None:
            workers = self._coordinator._workers
            shipped = sum(w.shipped_records for w in workers)
            chunks = sum(w.shipped_chunks for w in workers)
        elif self._client is not None:
            shipped = self._client.stats.records
            chunks = self._client.stats.chunks
        else:
            shipped = chunks = 0
        if not self.done:
            state = "running"
        else:
            state = "failed" if self._error is not None else "done"
        return LoadProgress(
            state=state, records_shipped=shipped, chunks_shipped=chunks
        )

    def snapshot_query(self, sql: str) -> QueryResult:
        """Answer *sql* against the loaded-so-far snapshot, mid-load.

        Only sharded deployments with streaming enabled can expose a
        consistent mid-load view (sealed shard parts + sideline
        watermarks); serial deployments and ``seal_interval=None`` raise
        ``RuntimeError`` — finalize via :meth:`result` and query then.

        Polling the same aggregate repeatedly is cheap: the engine keeps
        per-part partial aggregates keyed by (sealed part, query
        fingerprint), so each call scans only the parts sealed since the
        previous one plus the sideline delta — see
        ``result.plan_info.snapshot_cache_hits`` — with answers
        identical to a cold scan of the same snapshot.
        """
        if not self.config.streaming_queries:
            raise RuntimeError(
                f"snapshot_query() needs a sharded deployment with "
                f"streaming enabled (n_shards >= 2 and a seal_interval); "
                f"this job runs mode={self.config.mode!r} with "
                f"n_shards={self.config.resolved_n_shards} — call "
                f"result() and query the session instead"
            )
        return self.server.query(sql)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the load finishes; True if it did."""
        if self._external:
            return self._finished.wait(timeout)
        if self._thread is not None:
            self._thread.join(timeout)
            return not self._thread.is_alive()
        return True

    def finish_external(self, timeout: Optional[float] = None
                        ) -> LoadReport:
        """Seal an externally-fed load and return its report.

        The external counterpart of the worker thread's finalize: the
        feeder (e.g. a :class:`repro.service.CiaoService` handling a
        remote COMMIT) calls this once every chunk has been ingested.
        Idempotent — concurrent callers race only on identical writes,
        and the underlying ``finalize_loading`` is itself idempotent.
        """
        if not self._external:
            raise RuntimeError(
                "finish_external() only applies to external loads "
                "(see CiaoSession.external_load)"
            )
        if not self._finished.is_set():
            try:
                self._summary = self.server.finalize_loading()
            except BaseException as exc:  # ciaolint: allow[API006] -- surfaced by result()
                self._error = exc
            finally:
                self._wall = time.perf_counter() - self._started
                self._finished.set()
        return self.result(timeout)

    def result(self, timeout: Optional[float] = None) -> LoadReport:
        """The unified load report (joins the load and finalizes).

        Idempotent: the first call seals the server and builds the
        report, later calls return the same object.  A load that failed
        re-raises its exception here.
        """
        if self._report is not None:
            return self._report
        if not self.wait(timeout):
            raise TimeoutError(
                f"load did not finish within {timeout} s"
            )
        if self._error is not None:
            # Reap shard workers even on failure; the original error
            # stays the one surfaced.
            try:
                self.server.finalize_loading()
            except BaseException:  # ciaolint: allow[API006] -- best-effort reap; the original load error is surfaced
                pass
            raise self._error
        if self._wall is None:
            self._wall = time.perf_counter() - self._started
        self._report = self._build_report()
        return self._report

    # ------------------------------------------------------------------
    def _build_report(self) -> LoadReport:
        if self._fleet_report is not None:
            report = LoadReport.from_fleet(
                self._fleet_report,
                messages_dropped=self._fleet_report.messages_dropped,
            )
            report.wall_seconds = self._wall
            return report
        # The worker thread finalized on success; finalize_loading() is
        # idempotent and covers the failure-cleanup path.
        summary = (self._summary if self._summary is not None
                   else self.server.finalize_loading())
        stats = self._client.stats if self._client is not None else None
        channel = self._channel
        report = LoadReport.from_summary(
            self.config.mode,
            summary,
            records_offered=self.records_offered,
            client_stats=stats,
            bytes_sent=stats.bytes_sent if stats else 0,
            messages_dropped=(
                channel.stats.messages_dropped if channel is not None else 0
            ),
        )
        report.wall_seconds = self._wall
        return report


class CiaoSession:
    """One CIAO deployment: plan, load, and query through a single object.

    Args:
        workload: The prospective workload (needed by :meth:`plan` and
            the server's partial-loading coverage policy).
        source: Default input — anything :func:`repro.api.as_source`
            accepts (dataset name, generator, lines, JSONL/CSV path).
        config: The :class:`DeploymentConfig`; default is a serial
            deployment.
        data_dir: Server storage root.  ``None`` manages a temporary
            directory, cleaned up by :meth:`close` / context-manager
            exit.
        seed: Root seed for source coercion, generated fleet
            populations, and channel loss sequences.
        plan: A pre-built pushdown plan (skips :meth:`plan`).
        metrics: A :class:`repro.obs.Metrics` registry to instrument the
            deployment with (``None`` = no-op instruments everywhere).
        tracer: A :class:`repro.obs.Tracer` for engine-side spans.
        query_log: A :class:`repro.obs.QueryLog` accumulating one record
            per executed query; drain it via :meth:`query_log`.
        compaction: Opt-in background compaction of sealed parts: a
            :class:`repro.compact.CompactionConfig` (or ``True`` for
            the defaults) starts a :class:`repro.compact.Compactor`
            worker per load that merges small sealed parts and
            re-clusters rows by the query log's hot predicate columns.
            Off by default.
        recover_from: Rebuild the session from a crashed (or cleanly
            stopped) durable deployment: a directory holding a
            ``MANIFEST-<table>.json`` — either directly or in its
            newest ``load-*/`` subdirectory (a previous session's
            ``data_dir``).  The recovered server becomes the session's
            latest job: finalized manifests come back queryable
            immediately; mid-load manifests come back as an open
            external load that remote clients can resume into (see
            :meth:`external_load`).  Raises
            :class:`repro.recovery.ManifestError` when no manifest is
            found.

    The session is a facade over — not a fork of — the low-level API:
    :attr:`server`, :attr:`pushdown_plan`, and every constructor the
    session calls remain public and injectable.
    """

    def __init__(self, workload: Optional[Workload] = None,
                 source: Optional[SourceLike] = None,
                 config: Optional[DeploymentConfig] = None,
                 data_dir: Optional[Union[str, Path]] = None,
                 seed: int = DEFAULT_SEED,
                 plan: Optional[PushdownPlan] = None,
                 metrics: Optional[Metrics] = None,
                 tracer: Optional[Tracer] = None,
                 query_log: Optional[QueryLog] = None,
                 compaction=None,
                 recover_from: Optional[Union[str, Path]] = None):
        self.workload = workload
        self.config = config or DeploymentConfig()
        self.seed = seed
        self._metrics = resolve_metrics(metrics)
        self._tracer = resolve_tracer(tracer)
        self._query_log = resolve_query_log(query_log)
        self._compaction = resolve_compaction(compaction)
        self._compactor: Optional[Compactor] = None
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if data_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="ciao-")
            data_dir = self._tmpdir.name
        self.data_dir = Path(data_dir)
        self._source: Optional[DataSource] = (
            as_source(source, seed=seed) if source is not None else None
        )
        self._plan = plan
        self._jobs: List[LoadJob] = []  # guarded-by: _external_lock
        # Serializes external_load's check-and-create: concurrent
        # service routers (one RESUME per reconnecting client) must
        # converge on ONE job, not race two servers into one data_dir.
        # Every _jobs append takes it so the job list stays coherent
        # when a driver-thread load overlaps a router's rejoin.
        self._external_lock = make_lock("CiaoSession._external_lock")
        self._closed = False
        if recover_from is not None:
            self._recover(Path(recover_from))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def source(self) -> Optional[DataSource]:
        """The session's default data source."""
        return self._source

    @property
    def pushdown_plan(self) -> Optional[PushdownPlan]:
        """The current pushdown plan (from :meth:`plan` or injection)."""
        return self._plan

    @property
    def server(self) -> CiaoServer:
        """The latest load's server (the thin inner layer)."""
        if not self._jobs:
            raise RuntimeError(
                "no server yet: call load() first"
            )
        return self._jobs[-1].server

    @property
    def last_job(self) -> Optional[LoadJob]:
        """The most recent :class:`LoadJob`, if any."""
        return self._jobs[-1] if self._jobs else None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def obs_metrics(self) -> Metrics:
        """The live metrics registry this session instruments with."""
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        """The tracer collecting this session's engine spans."""
        return self._tracer

    def metrics(self) -> Dict[str, Dict[str, Any]]:
        """A point-in-time snapshot of every session instrument.

        Empty sections unless the session was constructed with a real
        :class:`repro.obs.Metrics` (observability is opt-in).
        """
        return self._metrics.snapshot()

    @property
    def compactor(self) -> Optional[Compactor]:
        """The live compaction worker, if the session opted in."""
        return self._compactor

    def compaction_stats(self) -> Optional[Dict[str, Any]]:
        """The compactor's operational snapshot, or None when disabled.

        This is what the service layer embeds under the STATS reply's
        ``compaction`` key.
        """
        if self._compactor is None:
            return None
        return self._compactor.stats()

    def query_log(self, drain: bool = False) -> List[QueryLogRecord]:
        """The accumulated per-query records, oldest first.

        With ``drain=True`` the returned records are removed from the
        log (the consuming pattern for layout optimizers); otherwise the
        log keeps them.  Empty unless the session was constructed with a
        real :class:`repro.obs.QueryLog`.
        """
        if drain:
            return self._query_log.drain()
        return self._query_log.records()

    # ------------------------------------------------------------------
    # Plan
    # ------------------------------------------------------------------
    def plan(self, budget: Union[Budget, float], *,
             source: Optional[SourceLike] = None,
             sample_size: int = 2000,
             sample: Optional[List[Dict[str, Any]]] = None,
             selectivities: Optional[Mapping[Any, float]] = None,
             cost_model: Optional[CostModel] = None,
             coefficients=None,
             avg_record_length: Optional[float] = None,
             use_celf: bool = True) -> PushdownPlan:
        """Optimize the pushdown plan for *budget* in one call.

        Runs the full paper pipeline — sample the source, estimate
        selectivities over the workload's candidate pool, build the cost
        model, run the budgeted submodular optimizer — with every stage
        injectable: pass *selectivities* to skip estimation, *sample* to
        skip sampling, *cost_model* (or *coefficients* /
        *avg_record_length*) to replace calibration.  Deterministic for a
        fixed session seed.  The plan is stored on the session and used
        by subsequent :meth:`load` calls.
        """
        if self.workload is None:
            raise RuntimeError(
                "plan() needs a prospective workload; construct the "
                "session with one"
            )
        if not isinstance(budget, Budget):
            budget = Budget(float(budget))
        if selectivities is None:
            if sample is None:
                src = self._require_source(source, "plan")
                sample = src.sample(sample_size)
            selectivities = estimate_selectivities(
                self.workload.candidate_pool, sample
            )
        if cost_model is None:
            if avg_record_length is None:
                src = self._require_source(source, "plan")
                avg_record_length = src.average_record_length()
            cost_model = CostModel(
                coefficients if coefficients is not None
                else DEFAULT_COEFFICIENTS,
                avg_record_length,
            )
        optimizer = CiaoOptimizer(self.workload, selectivities, cost_model)
        self._plan = optimizer.plan(budget, use_celf=use_celf)
        return self._plan

    def use_plan(self, plan: Optional[PushdownPlan]) -> None:
        """Inject a pre-built plan (e.g. deserialized via plan_io)."""
        self._plan = plan

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load(self, source: Optional[SourceLike] = None, *,
             n_records: Optional[int] = None) -> LoadJob:
        """Start loading *source* (default: the session source).

        Returns immediately with a :class:`LoadJob`; the data flows on a
        background thread through whatever the session's config deploys —
        a single client into a serial or sharded server, or a full
        coordinated fleet.  One load runs at a time per session; each
        load gets a fresh server under the session's data directory.
        """
        self._check_open()
        active = self.last_job
        if active is not None and not active.done and \
                active._report is None:
            raise RuntimeError(
                "a load is already running on this session; collect "
                "job.result() first"
            )
        src = self._require_source(source, "load", n_records=n_records)
        server = CiaoServer.from_config(
            self.config.server_config(
                self.data_dir / f"load-{len(self._jobs)}"
            ),
            plan=self._plan,
            workload=self.workload,
            metrics=self._metrics,
            tracer=self._tracer,
            query_log=self._query_log,
        )
        job = LoadJob(server, self.config, src.count())
        if self.config.mode == "fleet":
            self._start_fleet(job, src)
        else:
            self._start_serial(job, src)
        with self._external_lock:
            self._jobs.append(job)
        self._attach_compactor(server)
        return job

    def external_load(self) -> LoadJob:
        """Start (or rejoin) a load whose data arrives from outside.

        The session builds a fresh server exactly as :meth:`load` does,
        but ships nothing itself: the caller feeds chunks through
        ``job.server`` ingest sessions (this is how a
        :class:`repro.service.CiaoService` routes remote clients' data
        in) and seals the load with :meth:`LoadJob.finish_external`.
        Progress/snapshot/query semantics match a thread-driven job.

        If an external load is already open — including one rebuilt by
        ``recover_from=`` — it is returned instead of a fresh one, so a
        service attached after recovery feeds the surviving server
        rather than racing it.  A running thread-driven :meth:`load`
        still refuses.  Safe to call from concurrent service routers:
        check-and-create is serialized, so racing callers share one job.
        """
        self._check_open()
        with self._external_lock:
            active = self.last_job
            if active is not None and not active.done and \
                    active._report is None:
                if active._external:
                    return active
                raise RuntimeError(
                    "a load is already running on this session; collect "
                    "job.result() first"
                )
            server = CiaoServer.from_config(
                self.config.server_config(
                    self.data_dir / f"load-{len(self._jobs)}"
                ),
                plan=self._plan,
                workload=self.workload,
                metrics=self._metrics,
                tracer=self._tracer,
                query_log=self._query_log,
            )
            job = LoadJob(server, self.config, None)
            job._external = True
            job._finished = threading.Event()
            self._jobs.append(job)
            self._attach_compactor(server)
            return job

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self, root: Path) -> None:
        """Rebuild the latest job from a durable manifest under *root*.

        Accepts either the manifest's own directory or a previous
        session's ``data_dir`` (in which case the newest ``load-*/``
        subdirectory holding a manifest wins — later loads supersede
        earlier ones exactly as they do live).
        """
        table = self.config.table_name
        manifest_path = self._find_manifest(root, table)
        server = CiaoServer.recover(
            manifest_path.parent,
            table_name=table,
            workload=self.workload,
            metrics=self._metrics,
            tracer=self._tracer,
            query_log=self._query_log,
        )
        if self._plan is None:
            self._plan = server.plan
        # The manifest's deployment options supersede the session's
        # defaults: future loads and stats reflect what is on disk.
        self.config = self._recovered_config(server)
        job = LoadJob(server, self.config, None)
        job._external = True
        job._finished = threading.Event()
        if server.state == "finalized":
            # Nothing left to feed: the job is born done and queryable.
            job._summary = server.load_summary
            job._wall = 0.0
            job._finished.set()
        with self._external_lock:
            self._jobs.append(job)
        self._attach_compactor(server)

    @staticmethod
    def _find_manifest(root: Path, table: str) -> Path:
        name = f"MANIFEST-{table}.json"
        if (root / name).exists():
            return root / name
        candidates = [
            child for child in root.glob("load-*") if (child / name).exists()
        ]
        if candidates:
            def load_index(child: Path) -> int:
                try:
                    return int(child.name.split("-", 1)[1])
                except ValueError:
                    return -1
            return max(candidates, key=load_index) / name
        raise ManifestError(
            f"no {name} under {root} or its load-*/ subdirectories; "
            f"was the deployment durable?"
        )

    def _recovered_config(self, server: CiaoServer) -> DeploymentConfig:
        """A config matching the *recovered* server's actual shape.

        The manifest records how the crashed deployment really ran
        (shards, dispatch, seal cadence); the session's own config may
        disagree, and mid-load snapshot gating must follow the server
        that exists, not the one the caller imagined.
        """
        options = server.deployment_options
        n_shards = int(options.get("n_shards", 1) or 1)
        seal = options.get("seal_interval")
        return replace(
            self.config,
            mode="sharded" if n_shards > 1 else "serial",
            n_shards=n_shards if n_shards > 1 else None,
            shard_mode=str(options.get("shard_mode", self.config.shard_mode)),
            dispatch=str(options.get("dispatch", self.config.dispatch)),
            seal_interval=int(seal) if seal is not None else None,
            partial_loading=str(
                options.get("partial_loading", self.config.partial_loading)
            ),
            durable=True,
            population=None,
            aggregate_budget=None,
            max_active=None,
            realloc_interval=None,
        )

    def _attach_compactor(self, server: CiaoServer) -> None:
        """Start a compaction worker for *server* (if opted in).

        One worker per live server: a new load retires the previous
        worker (its server is superseded) and starts a fresh one, so
        compaction keeps running across external loads too — including
        under remote serving, where :class:`repro.service.CiaoService`
        creates the jobs.
        """
        if self._compaction is None:
            return
        if self._compactor is not None:
            self._compactor.close()
        self._compactor = Compactor(
            server,
            config=self._compaction,
            metrics=self._metrics,
            tracer=self._tracer,
            query_log=self._query_log,
        )
        self._compactor.start()

    def _start_serial(self, job: LoadJob, src: DataSource) -> None:
        client = SimulatedClient(
            "session-client",
            plan=self._plan,
            chunk_size=self.config.chunk_size,
        )
        channel = make_channel(
            self.config.channel,
            directory=self.data_dir / f"spool-{len(self._jobs)}",
        )
        job._client = client
        job._channel = channel

        def run() -> None:
            try:
                # The documented low-level path, verbatim: ship drains
                # into the server after every flushed message, so memory
                # stays bounded by the batch, and the worker finalizes so
                # wall time covers the merge (as the fleet's does).
                client.ship(
                    src.records(), channel,
                    batch_size=self.config.ship_batch,
                    on_flush=lambda: job.server.ingest_channel(channel),
                )
                job._summary = job.server.finalize_loading()
            except BaseException as exc:  # ciaolint: allow[API006] -- surfaced by result()
                job._error = exc
            finally:
                job._wall = time.perf_counter() - job._started

        job._thread = threading.Thread(target=run, daemon=True)
        job._thread.start()

    def _start_fleet(self, job: LoadJob, src: DataSource) -> None:
        population = self.config.population
        if population is None:
            population = ClientPopulation.generate(
                self.config.n_clients,
                seed=(
                    self.config.population_seed
                    if self.config.population_seed is not None
                    else derive_seed(self.seed, "api:population")
                ),
            )
        coordinator = FleetCoordinator(
            job.server,
            population,
            global_plan=self._plan,
            aggregate_budget=self.config.aggregate_budget,
            chunk_size=self.config.chunk_size,
            batch_size=self.config.ship_batch,
            max_pending=self.config.max_pending,
            max_active=self.config.max_active,
            channel_factory=per_client_channels(
                self.config.channel,
                directory=self.data_dir / f"spool-{len(self._jobs)}",
            ),
            realloc_interval=self.config.realloc_interval,
        )
        job._coordinator = coordinator
        records = list(src.records())
        job.records_offered = len(records)

        def run() -> None:
            try:
                job._fleet_report = coordinator.run(records)
            except BaseException as exc:  # ciaolint: allow[API006] -- surfaced by result()
                job._error = exc
            finally:
                job._wall = time.perf_counter() - job._started

        job._thread = threading.Thread(target=run, daemon=True)
        job._thread.start()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, sql: str) -> QueryResult:
        """Execute *sql* against the loaded table.

        Waits for an in-flight load to finish first (final answers);
        for mid-load answers use :meth:`LoadJob.snapshot_query` on a
        sharded deployment.
        """
        self._check_open()
        job = self.last_job
        if job is None:
            raise RuntimeError(
                "nothing loaded on this session yet: call load() first"
            )
        job.result()
        return job.server.query(sql)

    def snapshot_query(self, sql: str) -> QueryResult:
        """Answer *sql* against the loaded-so-far snapshot, mid-load.

        The session-level convenience over
        :meth:`LoadJob.snapshot_query`: while a streaming-capable load is
        in flight this answers from the consistent loaded-so-far view
        without waiting; once the load is done (or when the deployment
        cannot stream) it behaves exactly like :meth:`query`.
        """
        self._check_open()
        job = self.last_job
        if job is None:
            raise RuntimeError(
                "nothing loaded on this session yet: call load() first"
            )
        if not job.done and self.config.streaming_queries:
            return job.snapshot_query(sql)
        return self.query(sql)

    def run_workload(self, queries: Optional[Iterable[Query]] = None
                     ) -> List[QueryResult]:
        """Run the prospective workload (or *queries*) to completion."""
        if queries is None:
            if self.workload is None:
                raise RuntimeError(
                    "run_workload() needs queries or a session workload"
                )
            queries = self.workload.queries
        table = self.config.table_name
        return [self.query(q.sql(table)) for q in queries]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Finish and finalize every load, then release session storage.

        Uncollected jobs are joined and finalized here — a finalize left
        undone would leak shard workers (and, for process shards, OS
        processes) past the session's lifetime.
        """
        if self._closed:
            return
        if self._compactor is not None:
            # Stop background rewrites before finalizing: a swap racing
            # the teardown would rewrite parts nobody will query.
            self._compactor.close()
            self._compactor = None
        for job in self._jobs:
            if job._report is None:
                try:
                    if job._external and not job.done:
                        # An abandoned external load would wait forever
                        # for a feeder that is gone; seal it instead.
                        job.finish_external()
                    else:
                        job.result()
                except BaseException:  # ciaolint: allow[API006] -- closing must not mask the caller's exception
                    pass
        self._closed = True
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "CiaoSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this session is closed")

    def _require_source(self, source: Optional[SourceLike],
                        operation: str,
                        n_records: Optional[int] = None) -> DataSource:
        if source is not None:
            return as_source(source, seed=self.seed, n_records=n_records)
        if self._source is None:
            raise RuntimeError(
                f"{operation}() needs a data source; pass one here or "
                f"construct the session with source=..."
            )
        if n_records is not None:
            return as_source(self._source, n_records=n_records)
        return self._source
