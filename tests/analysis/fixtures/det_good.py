# ciaolint: module-role=simulate
"""Fixture: deterministic — seeded RNG threaded in, monotonic timing."""

import random
import time


def jitter(rng: random.Random):
    started = time.perf_counter()
    return rng.random(), time.perf_counter() - started
