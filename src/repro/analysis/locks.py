"""Lock-discipline checker: guarded attributes, annotations, ordering.

Rules:

``LCK001``
    A write to a ``# guarded-by: NAME`` attribute outside a ``with
    self.NAME`` block (and outside an ``@guarded_by("NAME")`` method and
    the constructor — construction happens-before publication).
``LCK002``
    The cross-module lock-acquisition graph contains a cycle (see
    :mod:`repro.analysis.lockgraph`) — a potential deadlock order.
``LCK003``
    A write under a lock to an attribute with no ``# guarded-by:``
    annotation: shared state the annotations don't cover.  Annotate it
    (or justify with an ``allow`` marker) so the discipline stays
    complete as the code grows.
``LCK004``
    A ``# guarded-by:`` annotation or ``@guarded_by`` decorator naming a
    lock attribute the class never creates.

Writes are attribute assignments (`self.x = ...`, augmented, annotated,
subscript `self.x[k] = ...`, `del self.x`) and calls to well-known
container mutators (``self.x.append(...)`` etc.).  Reads are not
checked — the convention targets the mutation side, where a missed lock
corrupts state rather than merely observing it stale.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .findings import Finding
from .lockgraph import (
    ClassInfo,
    build_lock_graph,
    collect_classes,
    guarded_by_decorations,
)
from .model import Project, SourceModule
from .registry import Checker, register

#: Method names treated as in-place container mutation.
_MUTATORS = {
    "append", "extend", "extendleft", "appendleft", "insert", "add",
    "update", "setdefault", "pop", "popleft", "popitem", "remove",
    "discard", "clear", "sort", "reverse",
}

#: Methods whose body is construction, exempt from guarded-write checks.
_CONSTRUCTORS = {"__init__", "__new__", "__post_init__"}


def _attribute_writes(stmt: ast.stmt) -> Iterable[Tuple[str, int]]:
    """Yield ``(attr, line)`` for every self-attribute write in *stmt*."""

    def target_attr(node: ast.AST) -> Optional[str]:
        # self.X or self.X[...] as an assignment target.
        if isinstance(node, ast.Subscript):
            node = node.value
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        return None

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            parts = (target.elts if isinstance(target, (ast.Tuple,
                                                        ast.List))
                     else [target])
            for part in parts:
                attr = target_attr(part)
                if attr is not None:
                    yield attr, stmt.lineno
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        attr = target_attr(stmt.target)
        if attr is not None:
            yield attr, stmt.lineno
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            attr = target_attr(target)
            if attr is not None:
                yield attr, stmt.lineno
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"):
            yield func.value.attr, stmt.lineno


class _WriteVisitor(ast.NodeVisitor):
    """Collect self-attribute writes with the held-lock attr set."""

    def __init__(self, lock_attrs: Set[str]):
        self.lock_attrs = lock_attrs
        self.held: List[str] = []
        #: (attr, line, frozenset of held lock attrs)
        self.writes: List[Tuple[str, int, frozenset]] = []

    def _lock_attr_for(self, expr: ast.AST) -> Optional[str]:
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.lock_attrs):
            return expr.attr
        return None

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        pushed = 0
        for item in node.items:
            attr = self._lock_attr_for(item.context_expr)
            if attr is not None:
                self.held.append(attr)
                pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.stmt):
            for attr, line in _attribute_writes(node):
                self.writes.append((attr, line, frozenset(self.held)))
        super().generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # closures run on their own thread/context; not this lock scope

    def visit_AsyncFunctionDef(self, node) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _class_guarded_attrs(
    info: ClassInfo,
) -> Tuple[Dict[str, str], Set[str], List[Tuple[str, int]]]:
    """(verified attr->lock, documented-only attrs, unknown-lock sites)."""
    verified: Dict[str, str] = {}
    documented: Set[str] = set()
    unknown: List[Tuple[str, int]] = []
    module = info.module
    for method in info.methods.values():
        for stmt in ast.walk(method):
            for attr, line in _attribute_writes(stmt):
                guard = module.guard_for_line(line)
                if guard is None:
                    continue
                if guard.lock is not None:
                    if guard.lock not in info.lock_attrs:
                        unknown.append((guard.lock, line))
                    else:
                        verified[attr] = guard.lock
                else:
                    documented.add(attr)
    # Dataclass-style class-body annotations: AnnAssign on plain names.
    for stmt in info.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                          ast.Name):
            guard = module.guard_for_line(stmt.lineno)
            if guard is None:
                continue
            if guard.lock is not None and guard.lock in info.lock_attrs:
                verified[stmt.target.id] = guard.lock
            else:
                documented.add(stmt.target.id)
    return verified, documented, unknown


@register
class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = (
        "guarded-by annotations are complete and respected; the "
        "cross-module lock graph is acyclic"
    )
    rules = {
        "LCK001": "write to a guarded attribute outside its lock",
        "LCK002": "lock-acquisition ordering cycle",
        "LCK003": "write under a lock to an unannotated attribute",
        "LCK004": "guarded-by names a lock the class does not create",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            findings.extend(self._check_module(module))
        graph = build_lock_graph(project)
        for cycle in graph.cycles():
            sites = sorted(
                graph.edges[edge]
                for edge in graph.edges
                if edge[0] in cycle and edge[1] in cycle
            )
            rel_path, line = sites[0]
            findings.append(Finding(
                path=rel_path, line=line, col=0, rule="LCK002",
                checker=self.name,
                message=(
                    "lock-acquisition cycle: "
                    + " -> ".join(cycle + [cycle[0]])
                    + "; a consistent global order is required"
                ),
            ))
        return findings

    def _check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for info in collect_classes(module):
            findings.extend(self._check_class(module, info))
        return findings

    def _check_class(self, module: SourceModule,
                     info: ClassInfo) -> List[Finding]:
        findings: List[Finding] = []
        verified, documented, unknown = _class_guarded_attrs(info)
        for lock_name, line in unknown:
            findings.append(Finding(
                path=module.rel_path, line=line, col=0, rule="LCK004",
                checker=self.name,
                message=(
                    f"guarded-by names {lock_name!r} but class "
                    f"{info.name} creates no such lock"
                ),
            ))
        if not info.lock_attrs:
            return findings
        lock_attr_names = set(info.lock_attrs)
        for method_name, method in info.methods.items():
            if method_name in _CONSTRUCTORS:
                continue
            decorated = [
                attr for attr in guarded_by_decorations(method)
            ]
            for attr in decorated:
                if attr not in lock_attr_names:
                    findings.append(Finding(
                        path=module.rel_path, line=method.lineno, col=0,
                        rule="LCK004", checker=self.name,
                        message=(
                            f"@guarded_by({attr!r}) on "
                            f"{info.name}.{method_name} but the class "
                            f"creates no such lock"
                        ),
                    ))
            assumed = frozenset(
                attr for attr in decorated if attr in lock_attr_names
            )
            visitor = _WriteVisitor(lock_attr_names)
            for stmt in method.body:
                visitor.visit(stmt)
            for attr, line, held in visitor.writes:
                if attr in lock_attr_names:
                    continue  # creating/rebinding the lock itself
                effective = held | assumed
                lock = verified.get(attr)
                if lock is not None and lock not in effective:
                    findings.append(Finding(
                        path=module.rel_path, line=line, col=0,
                        rule="LCK001", checker=self.name,
                        message=(
                            f"{info.name}.{attr} is guarded by "
                            f"{lock!r} but written here without it "
                            f"(wrap in `with self.{lock}:` or mark the "
                            f"method @guarded_by({lock!r}))"
                        ),
                    ))
                elif (lock is None and effective
                        and attr not in documented):
                    findings.append(Finding(
                        path=module.rel_path, line=line, col=0,
                        rule="LCK003", checker=self.name,
                        message=(
                            f"{info.name}.{attr} is written under "
                            f"{sorted(effective)!r} but has no "
                            f"guarded-by annotation; annotate its "
                            f"declaration"
                        ),
                    ))
        return findings
