"""The CIAO server facade: plan registration, ingestion, and querying.

Wires the whole server side together (Fig. 1, right):

* holds the pushdown plan (Fig. 2's predicate hashmap) and decides the
  partial-loading policy;
* ingests encoded chunks from a channel — or :class:`JsonChunk` objects
  directly — through the client-assisted loader;
* registers the loaded table in a catalog and answers SQL through the mini
  engine, with bit-vector skipping planned automatically — for sharded
  servers even *while* loading, against a consistent loaded-so-far
  snapshot of the ingest stream.

Partial-loading policy (``partial_loading='auto'``): enabled iff the plan
covers every query of the prospective workload, i.e. each query has at
least one pushed-down clause.  Then no prospective query ever needs the
sideline (§VI-B), so sidelining records cannot hurt those queries.  With an
uncovered workload the server loads everything — the paper's workload-C
behaviour, where loading shows no win but skipping still helps covered
queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..analysis.annotations import guarded_by
from ..analysis.sanitizer import make_lock, make_rlock
from ..client.protocol import decode_chunk, decode_chunk_stream, split_frames
from ..core.optimizer import PushdownPlan
from ..core.predicates import Query, Workload
from ..engine.catalog import Catalog, TableEntry
from ..engine.executor import Executor, QueryResult
from ..obs.metrics import Metrics
from ..obs.querylog import QueryLog
from ..obs.tracing import Tracer
from ..rawjson.chunks import JsonChunk
from ..transport import Channel
from ..storage.jsonstore import CompositeSidelineView, JsonSideStore
from ..storage.schema import Schema
from .loader import ClientAssistedLoader, LoadSummary
from .pipeline import DEFAULT_SEAL_INTERVAL, ShardedIngestPipeline

_SHARD_MODES = ("process", "thread")
_DISPATCH_MODES = ("work-stealing", "round-robin")
_PARTIAL_LOADING_MODES = ("auto", "on", "off")


def validate_server_options(shard_mode: str = "process",
                            dispatch: str = "work-stealing",
                            partial_loading: str = "auto",
                            n_shards: int = 1) -> None:
    """The single validation path for server deployment knobs.

    Shared by :class:`ServerConfig` (at construction), the
    :class:`CiaoServer` constructor, and the deployment-level
    :class:`repro.api.DeploymentConfig`, so an invalid option produces
    the same error message no matter which layer it entered through —
    the two paths cannot drift apart.
    """
    if shard_mode not in _SHARD_MODES:
        raise ValueError(
            f"shard_mode must be one of {_SHARD_MODES}, "
            f"got {shard_mode!r}"
        )
    if dispatch not in _DISPATCH_MODES:
        raise ValueError(
            f"dispatch must be one of {_DISPATCH_MODES}, "
            f"got {dispatch!r}"
        )
    if partial_loading not in _PARTIAL_LOADING_MODES:
        raise ValueError(
            f"partial_loading must be 'auto', 'on' or 'off', "
            f"got {partial_loading!r}"
        )
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")


@dataclass
class ServerConfig:
    """Construction options for :class:`CiaoServer`.

    Consume with :meth:`CiaoServer.from_config`, which forwards every
    field; the plan and prospective workload stay separate arguments
    because they are produced per session by the optimizer, not part of
    deployment configuration.  Options are validated at construction
    through the same :func:`validate_server_options` path the server
    itself uses.
    """

    data_dir: Path
    table_name: str = "t"
    partial_loading: str = "auto"  # 'auto' | 'on' | 'off'
    schema: Optional[Schema] = None
    n_shards: int = 1
    shard_mode: str = "process"  # 'process' | 'thread'
    dispatch: str = "work-stealing"  # 'work-stealing' | 'round-robin'
    seal_interval: Optional[int] = DEFAULT_SEAL_INTERVAL

    def __post_init__(self) -> None:
        validate_server_options(
            shard_mode=self.shard_mode,
            dispatch=self.dispatch,
            partial_loading=self.partial_loading,
            n_shards=self.n_shards,
        )


class IngestSession:
    """One data source's ingest stream into a loading server.

    Multi-source loads (fleets of clients) open one session per source via
    :meth:`CiaoServer.open_ingest_session`.  A session is a thin tagged
    facade over the server's ingest path: every chunk it forwards is
    accounted to its ``source_id`` (and, on sharded servers, tagged
    through to the pipeline's per-source counters), so reports can
    attribute server-side load to individual clients.  Sessions close
    individually (:meth:`close`, or as a context manager); the server
    closes any still-open sessions at ``finalize_loading``.
    """

    def __init__(self, server: "CiaoServer", source_id: str):
        self._server = server
        self.source_id = source_id
        self.chunks = 0
        self.bytes = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        """True once the session no longer accepts chunks."""
        return self._closed

    def ingest(self, chunk: Union[JsonChunk, bytes]) -> int:
        """Ingest one chunk or encoded message; returns frames ingested.

        Encoded payloads may carry several batched frames; each counts
        separately, exactly like :meth:`CiaoServer.ingest`.
        """
        if self._closed:
            raise RuntimeError(
                f"ingest session {self.source_id!r} is closed"
            )
        self._server._check_loading("ingest")
        frames = self._server._ingest_any(chunk, source=self.source_id)
        self.chunks += frames
        if isinstance(chunk, (bytes, bytearray, memoryview)):
            self.bytes += len(chunk)
        return frames

    def drain_channel(self, channel: Channel) -> int:
        """Drain a channel through this session; returns messages drained."""
        count = 0
        for payload in channel.drain():
            self.ingest(payload)
            count += 1
        return count

    def close(self) -> None:
        """Stop accepting chunks on this session (idempotent)."""
        self._closed = True

    def __enter__(self) -> "IngestSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CiaoServer:
    """One CIAO server instance managing one table.

    With ``n_shards > 1`` ingestion runs through a
    :class:`~repro.server.pipeline.ShardedIngestPipeline`: encoded chunks
    are fanned across shard workers (decode + parse + write each, pulled
    from a shared work-stealing deque by default) and the shard outputs
    are merged into the catalog at :meth:`finalize_loading`.  Query
    results are identical to serial ingest.

    Lifecycle: a server starts in state ``"loading"`` and moves to
    ``"finalized"`` at :meth:`finalize_loading`; ingesting into a
    finalized server raises ``RuntimeError`` (its storage is sealed — a
    new server/session is needed to load more data).  Sharded servers are
    queryable *while* loading: :meth:`query` scans a consistent
    loaded-so-far snapshot (sealed shard parts + sideline watermarks),
    matching serial ingest of exactly the covered chunks.  ``load_summary``
    is only complete once loading has finalized in sharded mode.
    """

    def __init__(self, data_dir: str | Path,
                 plan: Optional[PushdownPlan] = None,
                 workload: Optional[Workload] = None,
                 table_name: str = "t",
                 partial_loading: str = "auto",
                 schema: Optional[Schema] = None,
                 n_shards: int = 1,
                 shard_mode: str = "process",
                 dispatch: str = "work-stealing",
                 seal_interval: Optional[int] = DEFAULT_SEAL_INTERVAL,
                 metrics: Optional[Metrics] = None,
                 tracer: Optional[Tracer] = None,
                 query_log: Optional[QueryLog] = None):
        validate_server_options(
            shard_mode=shard_mode,
            dispatch=dispatch,
            partial_loading=partial_loading,
            n_shards=n_shards,
        )
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.plan = plan
        self.workload = workload
        self.table_name = table_name
        self.partial_loading_enabled = self._decide_partial_loading(
            partial_loading
        )
        self._side_store = JsonSideStore(
            self.data_dir / f"{table_name}.sideline.jsonl"
        )
        self._parquet_path = self.data_dir / f"{table_name}.pql"
        required_ids = plan.predicate_ids if plan is not None else None
        self._loader: Optional[ClientAssistedLoader] = None
        self._pipeline: Optional[ShardedIngestPipeline] = None
        if n_shards > 1:
            self._pipeline = ShardedIngestPipeline(
                self._parquet_path,
                self._side_store,
                n_shards=n_shards,
                partial_loading=self.partial_loading_enabled,
                schema=schema,
                required_predicate_ids=required_ids,
                mode=shard_mode,
                dispatch=dispatch,
                seal_interval=seal_interval,
                metrics=metrics,
            )
        else:
            self._loader = ClientAssistedLoader(
                self._parquet_path,
                self._side_store,
                partial_loading=self.partial_loading_enabled,
                schema=schema,
                required_predicate_ids=required_ids,
                metrics=metrics,
            )
        self._sessions: Dict[str, IngestSession] = {}  # guarded-by: _ingest_lock
        self.catalog = Catalog()
        self._table = TableEntry(
            name=table_name,
            parquet_paths=[],
            side_store=self._side_store,
            pushdown=(
                {e.clause: e.predicate_id for e in plan.entries}
                if plan is not None else {}
            ),
        )
        self.catalog.register(self._table)
        self._executor = Executor(self.catalog, metrics=metrics,
                                  tracer=tracer, query_log=query_log)
        self._loading_finalized = False  # guarded-by: _lifecycle_lock
        #: Compaction view: original sealed-part path → the compacted
        #: part that replaced it.  Kept flat (targets that are
        #: themselves replaced are rewritten in place), so resolving a
        #: path is one lookup, never a chain walk.
        # guarded-by: _lifecycle_lock
        self._compaction_remap: Dict[str, Path] = {}
        #: Bumped on every committed compaction; composed into the
        #: snapshot version token so a swap is never mistaken for an
        #: unchanged snapshot.
        self._compaction_epoch = 0  # guarded-by: _lifecycle_lock
        # Serializes query() against finalize_loading(): a loading
        # server may be queried from one thread while another thread
        # finalizes (session load jobs, fleet coordinators), and the
        # finalize mutates the catalog entry a query scans.  Reentrant
        # because a serial query() auto-finalizes through the same lock.
        self._lifecycle_lock = make_rlock("CiaoServer._lifecycle_lock")
        # Serializes chunk submission: the serial loader buffers rows and
        # the sharded pipeline's submit() assumes one submitting thread,
        # but remote serving (CiaoService) ingests from one router thread
        # per connection.  Also guards _sessions registration.  Ordering:
        # finalize_loading() takes _lifecycle_lock then _ingest_lock;
        # ingest paths take _ingest_lock alone — the graph stays acyclic.
        self._ingest_lock = make_lock("CiaoServer._ingest_lock")

    @classmethod
    def from_config(cls, config: ServerConfig,
                    plan: Optional[PushdownPlan] = None,
                    workload: Optional[Workload] = None,
                    metrics: Optional[Metrics] = None,
                    tracer: Optional[Tracer] = None,
                    query_log: Optional[QueryLog] = None) -> "CiaoServer":
        """Build a server from a :class:`ServerConfig`.

        The optional *plan*/*workload* are the per-session optimizer
        outputs and *metrics*/*tracer*/*query_log* the observability
        sinks; everything else comes from the config.
        """
        return cls(
            config.data_dir,
            plan=plan,
            workload=workload,
            table_name=config.table_name,
            partial_loading=config.partial_loading,
            schema=config.schema,
            n_shards=config.n_shards,
            shard_mode=config.shard_mode,
            dispatch=config.dispatch,
            seal_interval=config.seal_interval,
            metrics=metrics,
            tracer=tracer,
            query_log=query_log,
        )

    @property
    def state(self) -> str:
        """Explicit lifecycle state: ``"loading"`` or ``"finalized"``."""
        return "finalized" if self._loading_finalized else "loading"

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def ingest(self, chunk: Union[JsonChunk, bytes]) -> None:
        """Ingest one chunk (decoded or wire-encoded).

        Sharded servers forward encoded payloads verbatim — the shard
        worker decodes them off the submitting thread.  Encoded payloads
        may carry several batched frames
        (:func:`repro.client.protocol.encode_frame_batch`); each frame is
        ingested as its own chunk.

        Raises ``RuntimeError`` once the server is finalized: storage is
        sealed at that point, so feeding it more data would be silently
        lost — start a new server/session instead.
        """
        self._check_loading("ingest")
        self._ingest_any(chunk, source=None)

    def _ingest_any(self, chunk: Union[JsonChunk, bytes],
                    source: Optional[str] = None) -> int:
        """Shared ingest core; returns the number of frames ingested.

        Safe to call from many threads: remote serving ingests from one
        router thread per connection, while the serial loader and the
        pipeline's ``submit`` both assume a single submitter.
        """
        if not isinstance(chunk, (bytes, bytearray, memoryview)):
            self._ingest_one(chunk, source)
            return 1
        if self._pipeline is not None:
            count = 0
            with self._ingest_lock:
                for frame in split_frames(chunk):
                    self._pipeline.submit(frame, source=source)
                    count += 1
            return count
        count = 0
        with self._ingest_lock:
            for decoded in decode_chunk_stream(chunk):
                self._loader.ingest(decoded)
                count += 1
        return count

    def _ingest_one(self, chunk: JsonChunk,
                    source: Optional[str] = None) -> None:
        with self._ingest_lock:
            if self._pipeline is not None:
                self._pipeline.submit(chunk, source=source)
            else:
                self._loader.ingest(chunk)

    def ingest_channel(self, channel: Channel) -> int:
        """Drain a channel; returns the number of chunk frames ingested.

        Batched messages (``Channel.send_batch``) are split back into
        individual chunk frames, so the count is chunks, not messages.
        Frames coming off ``drain_chunks`` are already split, so they go
        straight to the loader/pipeline without :meth:`ingest`'s re-split
        (each split walks the frame header).
        """
        self._check_loading("ingest_channel")
        count = 0
        for frame in channel.drain_chunks():
            with self._ingest_lock:
                if self._pipeline is not None:
                    self._pipeline.submit(frame)
                else:
                    self._loader.ingest(decode_chunk(frame))
            count += 1
        return count

    def open_ingest_session(self, source_id: str) -> IngestSession:
        """Open a tagged ingest stream for one data source.

        Fleet loads open one session per client so server-side accounting
        (:attr:`ingest_sources`, and the sharded pipeline's
        ``submitted_by_source``) can attribute chunks to their origin.
        Source ids are single-use per server: reusing one — even after
        its session closed — raises ``ValueError``, because per-source
        accounting would conflate the two streams.
        """
        self._check_loading("open_ingest_session")
        with self._ingest_lock:
            existing = self._sessions.get(source_id)
            if existing is not None and not existing.closed:
                raise ValueError(
                    f"ingest session {source_id!r} is already open"
                )
            if existing is not None:
                raise ValueError(
                    f"source {source_id!r} already ingested on this "
                    f"server; per-source accounting would conflate the "
                    f"two streams"
                )
            session = IngestSession(self, source_id)
            self._sessions[source_id] = session
            return session

    @property
    def ingest_sources(self) -> Dict[str, int]:
        """Chunk frames ingested per source id (open + closed sessions)."""
        with self._ingest_lock:
            return {
                source_id: session.chunks
                for source_id, session in self._sessions.items()
            }

    def _check_loading(self, operation: str) -> None:
        if self._loading_finalized:
            raise RuntimeError(
                f"{operation}() on a finalized server: loading sealed at "
                f"finalize_loading(); create a new server/session to load "
                f"more data into table {self.table_name!r}"
            )

    def finalize_loading(self) -> LoadSummary:
        """Seal storage and make the table queryable; idempotent.

        For a sharded server this is the merge point: shard loaders are
        sealed, their Parquet parts registered (shard-major order) and
        their sidelines folded into the table's store.
        """
        with self._lifecycle_lock, self._ingest_lock:
            for session in self._sessions.values():
                session.close()  # ciaolint: allow[LCK002] -- IngestSession.close only flips a flag; `.close()` name union binds wider
            if self._pipeline is not None:
                summary = self._pipeline.finalize()
                parquet_paths = self._pipeline.parquet_paths
            else:
                summary = self._loader.finalize()
                parquet_paths = self._loader.parquet_paths
            if not self._loading_finalized:
                self._table.clear_snapshot()
                self._table.parquet_paths = self._remap_parts(
                    parquet_paths
                )
                self._table.invalidate()
                self._loading_finalized = True
            return summary

    @property
    def load_summary(self) -> LoadSummary:
        """Loading statistics so far.

        Mid-load a sharded-streaming server reports the chunks covered by
        the current snapshot (the same view queries see); once finalized,
        the complete merged summary.  With streaming disabled
        (``seal_interval=None``) the sharded summary stays empty until
        :meth:`finalize_loading` has run.
        """
        if self._pipeline is not None:
            if (not self._loading_finalized
                    and self._pipeline.seal_interval is not None):
                return self._pipeline.snapshot().summary
            return self._pipeline.summary
        return self._loader.summary

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self, sql: str) -> QueryResult:
        """Execute one SQL statement against the loaded table.

        Sharded servers answer queries **while loading**: the statement
        runs against a consistent loaded-so-far snapshot (sealed shard
        parts plus per-shard sideline watermarks), so results equal serial
        ingest of exactly the chunks covered so far — no auto-finalize,
        and ingestion keeps running.  Repeated mid-load *aggregate*
        queries are incremental: sealed parts are immutable, so the
        engine caches per-part partial aggregates by (part, query
        fingerprint) and each successive snapshot query scans only the
        parts sealed since it last ran plus the sideline delta
        (:mod:`repro.engine.snapcache`; answers are identical to a cold
        scan of the same snapshot).  Serial (``n_shards=1``) servers —
        and sharded servers with streaming disabled
        (``seal_interval=None``) — keep the historical convenience
        behavior: the first query finalizes loading, because without
        sealed parts there is nothing consistent to scan mid-load.  Call
        :meth:`finalize_loading` explicitly to seal either kind.

        Queries serialize against a concurrent :meth:`finalize_loading`
        (and against each other): a statement sees either a consistent
        mid-load snapshot or the final table, never the transition.
        """
        with self._lifecycle_lock:
            if not self._loading_finalized:
                if (self._pipeline is not None
                        and self._pipeline.seal_interval is not None):
                    self._refresh_snapshot()
                else:
                    self.finalize_loading()
            return self._executor.execute(sql)

    @guarded_by("_lifecycle_lock")
    def _refresh_snapshot(self) -> None:
        """Point the table at the pipeline's latest loaded-so-far view.

        The pipeline reports its own sealed parts; parts a compactor
        already replaced are remapped to their compacted merge, and the
        compaction epoch rides the version token so the swap registers
        as a change even when the pipeline's counter did not move.
        """
        snap = self._pipeline.snapshot()
        self._table.apply_snapshot(
            (snap.version, self._compaction_epoch),
            self._remap_parts(snap.parquet_paths),
            CompositeSidelineView(self._side_store.path,
                                  snap.sideline_views),
        )

    # ------------------------------------------------------------------
    # Compaction (repro.compact drives these)
    # ------------------------------------------------------------------
    @guarded_by("_lifecycle_lock")
    def _remap_parts(self, parquet_paths: Iterable[Path]) -> List[Path]:
        """Resolve raw sealed-part paths through the compaction remap.

        Several inputs of one merge resolve to the same output; the
        first occurrence keeps its position and later ones drop, so the
        resolved list preserves ingest order with no duplicates.
        """
        resolved: List[Path] = []
        seen: set = set()
        for path in parquet_paths:
            target = self._compaction_remap.get(str(Path(path)))
            if target is None:
                target = Path(path)
            key = str(target)
            if key not in seen:
                seen.add(key)
                resolved.append(target)
        return resolved

    def sealed_parts(self) -> List[Path]:
        """The immutable parts a compactor may rewrite right now.

        Finalized servers expose the table's full part list; streaming
        sharded servers expose the current snapshot's sealed parts
        (through the compaction remap, so already-replaced parts never
        reappear).  A still-loading serial server — or a sharded one
        with streaming disabled — has no sealed immutable parts yet and
        returns an empty list.
        """
        with self._lifecycle_lock:
            if self._loading_finalized:
                return list(self._table.parquet_paths)
            if (self._pipeline is not None
                    and self._pipeline.seal_interval is not None):
                snap = self._pipeline.snapshot()
                return self._remap_parts(snap.parquet_paths)
            return []

    def commit_compaction(self, inputs: Iterable[Path],
                          output: Path | str) -> None:
        """Atomically swap compacted *inputs* for their merged *output*.

        Holding the lifecycle lock makes the swap atomic with respect
        to queries (a statement holds the same lock for its whole
        execution): every query sees either the old parts or the new
        part, never a mix.  The remap is updated first — flattening any
        earlier entries that pointed at a part now being replaced — so
        pipeline snapshots and ``finalize_loading`` keep resolving to
        live parts no matter when they run.
        """
        output = Path(output)
        with self._lifecycle_lock:
            replaced = {str(Path(p)) for p in inputs}
            for key, target in list(self._compaction_remap.items()):
                if str(target) in replaced:
                    self._compaction_remap[key] = output
            for key in replaced:
                self._compaction_remap[key] = output
            self._compaction_epoch += 1
            if self._loading_finalized:
                self._table.swap_parts(
                    [Path(p) for p in inputs], output
                )
            elif (self._pipeline is not None
                    and self._pipeline.seal_interval is not None
                    and self._table.in_snapshot_mode):
                # Re-derive the snapshot view through the updated remap;
                # the bumped epoch forces the apply even when the
                # pipeline's own version counter did not move.
                self._refresh_snapshot()

    def quiesce(self, timeout: float = 30.0) -> None:
        """Wait until every ingested chunk is visible to queries.

        Useful to make "query the prefix ingested so far" deterministic
        in tests and benchmarks.  A serial server is always caught up; a
        sharded server with streaming disabled (``seal_interval=None``)
        cannot expose mid-load state, so quiescing it raises
        ``RuntimeError`` (finalize instead).
        """
        if self._pipeline is not None and not self._loading_finalized:
            self._pipeline.quiesce(timeout)

    def run_workload(self, queries: Iterable[Query]
                     ) -> List[QueryResult]:
        """Execute core-model queries via their SQL renderings."""
        return [self.query(q.sql(self.table_name)) for q in queries]

    @property
    def table(self) -> TableEntry:
        """The managed table's catalog entry."""
        return self._table

    def update_plan(self, plan: PushdownPlan) -> None:
        """Swap in a replanned pushdown registry (adaptive replanning).

        Affects the query path immediately: queries matching the new
        plan's clauses resolve to its predicate ids.  Row groups loaded
        before the new predicates existed have no vectors for them and
        are scanned fully (the engine's missing-vector rule), so answers
        stay exact; data ingested by future sessions carries the new
        annotations.  Retained clauses keep their ids (see
        :mod:`repro.core.adaptive`), so their historical vectors keep
        skipping.
        """
        self.plan = plan
        self._table.pushdown = {
            e.clause: e.predicate_id for e in plan.entries
        }

    # ------------------------------------------------------------------
    def _decide_partial_loading(self, mode: str) -> bool:
        # The mode itself was validated up front by
        # validate_server_options; only policy resolution happens here.
        if mode == "on":
            return True
        if mode == "off":
            return False
        if self.plan is None or len(self.plan) == 0:
            return False
        if self.workload is None:
            # No prospective workload to check coverage against: be
            # conservative, exactly like a baseline server.
            return False
        return all(self.plan.covers_query(q) for q in self.workload)
