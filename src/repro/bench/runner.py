"""End-to-end experiment runner: the engine behind Figs 3–12.

One :class:`EndToEndRunner` owns a generated dataset (shared across runs so
baseline and CIAO see identical records) and executes *runs*: given a
pushdown plan (or a budget to optimize under), it plays the full pipeline —

    client prefilter → ship chunks → partial load → run query workload —

and returns a :class:`RunMetrics` with the three stacked accounts of the
end-to-end figures (prefiltering / data loading / query) in both wall-clock
seconds and deterministic model-based seconds, plus loading ratio, coverage
and skipping statistics.

Every CIAO run is verified against the zero-budget baseline: all query
answers must match exactly.  A reproduction harness that could silently
return wrong counts would be worthless, so verification is on by default.
"""

from __future__ import annotations

import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.budgets import Budget
from ..core.cost_model import DEFAULT_COEFFICIENTS, CostModel
from ..core.optimizer import CiaoOptimizer, PushdownPlan, manual_plan
from ..core.predicates import Clause, Workload
from ..client.device import SimulatedClient
from ..data import make_generator
from ..server.ciao import CiaoServer
from ..server.skipping import estimate_skipping
from ..workload.selectivity import estimate_selectivities


@dataclass
class ExperimentConfig:
    """Scale and determinism knobs shared by all experiments.

    The paper ran multi-GB datasets; the defaults here are laptop-scale
    (see EXPERIMENTS.md).  ``scale`` multiplies record counts so the same
    benches can run larger.
    """

    dataset: str = "winlog"
    n_records: int = 4000
    chunk_size: int = 500
    seed: int = 20210223
    sample_size: int = 2000
    scale: float = 1.0

    @property
    def records(self) -> int:
        """Scaled record count."""
        return max(1, int(self.n_records * self.scale))


@dataclass
class RunMetrics:
    """Everything one run of the pipeline measures."""

    label: str
    budget_us: float
    n_pushed: int
    partial_loading: bool
    covered_queries: int
    total_queries: int
    # Client side
    prefilter_wall_s: float = 0.0
    prefilter_model_s: float = 0.0
    # Server loading
    loading_wall_s: float = 0.0
    loaded_records: int = 0
    received_records: int = 0
    loading_ratio: float = 1.0
    # Query side
    query_wall_s: float = 0.0
    per_query_wall_s: List[float] = field(default_factory=list)
    query_counts: List[int] = field(default_factory=list)
    queries_using_skipping: int = 0
    queries_benefiting: int = 0
    tuples_skipped: int = 0
    # Transfer
    bytes_shipped: int = 0

    @property
    def end_to_end_wall_s(self) -> float:
        """Prefilter + loading + query, wall-clock."""
        return self.prefilter_wall_s + self.loading_wall_s + self.query_wall_s

    @property
    def end_to_end_model_s(self) -> float:
        """Model-based client time + measured server time."""
        return (
            self.prefilter_model_s + self.loading_wall_s + self.query_wall_s
        )


class EndToEndRunner:
    """Run the CIAO pipeline repeatedly over one generated dataset."""

    def __init__(self, config: ExperimentConfig, workdir: str | Path,
                 cost_model: Optional[CostModel] = None):
        self.config = config
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        generator = make_generator(config.dataset, config.seed)
        self._generator = generator
        self.raw_lines: List[str] = list(generator.raw_lines(config.records))
        self.sample = generator.sample(config.sample_size)
        self.cost_model = cost_model or CostModel(
            DEFAULT_COEFFICIENTS, generator.average_record_length()
        )
        self._run_counter = 0
        self._baseline_counts: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def selectivities(self, workload: Workload) -> Dict[Clause, float]:
        """Sample-estimated selectivities for a workload's pool."""
        return estimate_selectivities(workload.candidate_pool, self.sample)

    def optimizer(self, workload: Workload) -> CiaoOptimizer:
        """An optimizer wired to this runner's sample and cost model."""
        return CiaoOptimizer(
            workload, self.selectivities(workload), self.cost_model
        )

    def plan_for_budget(self, workload: Workload,
                        budget_us: float) -> Optional[PushdownPlan]:
        """Optimize a plan, or None for the zero-budget baseline."""
        if budget_us <= 0:
            return None
        return self.optimizer(workload).plan(Budget(budget_us))

    def plan_for_clauses(self, workload: Workload,
                         clauses: Sequence[Clause]) -> PushdownPlan:
        """Fixed-clause plan for the sensitivity micro-benchmarks."""
        sels = estimate_selectivities(clauses, self.sample)
        return manual_plan(list(clauses), sels, self.cost_model)

    # ------------------------------------------------------------------
    def run(self, workload: Workload,
            plan: Optional[PushdownPlan],
            label: str = "",
            partial_loading: str = "auto",
            verify: bool = True) -> RunMetrics:
        """One full pipeline run; verified against the baseline."""
        run_dir = self.workdir / f"run_{self._run_counter:04d}"
        self._run_counter += 1
        try:
            metrics = self._run_once(workload, plan, label,
                                     partial_loading, run_dir)
        finally:
            shutil.rmtree(run_dir, ignore_errors=True)
        if verify:
            self._verify(workload, metrics)
        return metrics

    def run_budget_sweep(self, workload: Workload,
                         budgets_us: Sequence[float],
                         label_prefix: str = "") -> List[RunMetrics]:
        """Runs across a budget grid (the x-axis of Figs 3–5)."""
        out: List[RunMetrics] = []
        for budget in budgets_us:
            plan = self.plan_for_budget(workload, budget)
            out.append(
                self.run(workload, plan,
                         label=f"{label_prefix}B={budget:g}µs")
            )
        return out

    # ------------------------------------------------------------------
    def _run_once(self, workload: Workload, plan: Optional[PushdownPlan],
                  label: str, partial_loading: str,
                  run_dir: Path) -> RunMetrics:
        covered = (
            sum(1 for q in workload if plan.covers_query(q))
            if plan is not None else 0
        )
        server = CiaoServer(
            run_dir, plan=plan, workload=workload,
            partial_loading=partial_loading,
        )
        client = SimulatedClient(
            "client-0", plan=plan, chunk_size=self.config.chunk_size
        )
        load_start = time.perf_counter()
        bytes_shipped = 0
        for chunk in client.process(iter(self.raw_lines)):
            bytes_shipped += chunk.total_bytes()
            server.ingest(chunk)
        summary = server.finalize_loading()
        loading_wall = time.perf_counter() - load_start - \
            client.stats.wall_seconds

        metrics = RunMetrics(
            label=label,
            budget_us=plan.budget.us if plan is not None else 0.0,
            n_pushed=len(plan) if plan is not None else 0,
            partial_loading=server.partial_loading_enabled,
            covered_queries=covered,
            total_queries=len(workload),
            prefilter_wall_s=client.stats.wall_seconds,
            prefilter_model_s=client.stats.modeled_us / 1e6,
            loading_wall_s=max(loading_wall, summary.wall_seconds),
            loaded_records=summary.loaded,
            received_records=summary.received,
            loading_ratio=summary.loading_ratio,
            bytes_shipped=bytes_shipped,
        )

        baseline_examined = metrics.received_records
        for query in workload.queries:
            result = server.query(query.sql(server.table_name))
            metrics.per_query_wall_s.append(result.wall_seconds)
            metrics.query_wall_s += result.wall_seconds
            metrics.query_counts.append(result.scalar())
            if result.plan_info.used_skipping:
                metrics.queries_using_skipping += 1
                if result.stats.rows_examined < baseline_examined:
                    metrics.queries_benefiting += 1
            metrics.tuples_skipped += result.stats.tuples_skipped
        return metrics

    def _verify(self, workload: Workload, metrics: RunMetrics) -> None:
        """Compare query answers with the cached zero-budget baseline."""
        key = id(workload)
        expected = self._baseline_counts.get(key)
        if expected is None:
            expected = self._baseline_answers(workload)
            self._baseline_counts[key] = expected
        if metrics.query_counts != expected:
            mismatches = [
                (q.name, got, want)
                for q, got, want in zip(
                    workload.queries, metrics.query_counts, expected
                )
                if got != want
            ]
            raise AssertionError(
                f"run {metrics.label!r} returned wrong answers for "
                f"{len(mismatches)} queries; first: {mismatches[0]}"
            )

    def _baseline_answers(self, workload: Workload) -> List[int]:
        """Ground-truth counts via direct semantic evaluation.

        Independent of the storage/engine stack on purpose: parses each
        raw record with the from-scratch parser and applies
        :meth:`Query.evaluate` — a genuinely separate oracle.
        """
        from ..rawjson.parser import parse_object

        parsed = [parse_object(raw) for raw in self.raw_lines]
        return [
            sum(1 for record in parsed if query.evaluate(record))
            for query in workload.queries
        ]
