"""Straggler reassignment: client deaths must not lose records.

The invariant under test (fleet-wide, across any single-client death):
``received == loaded + sidelined + malformed`` and ``received`` equals
every record handed to the fleet — the dead client's remaining partition
is absorbed by survivors.
"""

import threading
import time

import pytest

from repro.client import SimulatedClient
from repro.core import (
    Budget,
    CiaoOptimizer,
    CostModel,
    DEFAULT_COEFFICIENTS,
)
from repro.data import make_generator
from repro.fleet import ClientPopulation, FleetCoordinator
from repro.server import CiaoServer
from repro.workload import estimate_selectivities, table3_workload

SEED = 31337
N_RECORDS = 1200
CHUNK = 100


@pytest.fixture(scope="module")
def setup():
    generator = make_generator("winlog", SEED)
    lines = list(generator.raw_lines(N_RECORDS))
    workload = table3_workload("winlog", "A", seed=SEED, n_queries=8)
    sels = estimate_selectivities(
        workload.candidate_pool, generator.sample(600)
    )
    model = CostModel(DEFAULT_COEFFICIENTS, 160)
    plan = CiaoOptimizer(workload, sels, model).plan(Budget(10.0))
    return lines, workload, plan


@pytest.fixture(scope="module")
def reference_answers(setup, tmp_path_factory):
    lines, workload, plan = setup
    server = CiaoServer(
        tmp_path_factory.mktemp("ref"), plan=plan, workload=workload
    )
    client = SimulatedClient("solo", plan=plan, chunk_size=CHUNK)
    for chunk in client.process(lines):
        server.ingest(chunk)
    server.finalize_loading()
    return [server.query(q.sql("t")).scalar() for q in workload.queries]


def fat_client(population):
    """The client with the largest partition — killing it guarantees
    leftover work for the survivors to absorb."""
    return max(population, key=lambda s: s.share).client_id


class TestKillAfterChunks:
    def test_no_record_loss_and_absorption(self, tmp_path, setup,
                                           reference_answers):
        lines, workload, plan = setup
        population = ClientPopulation.generate(5, seed=SEED)
        victim = fat_client(population)
        population = population.with_kill(victim, after_chunks=1)
        server = CiaoServer(
            tmp_path / "kill", plan=plan, workload=workload,
            n_shards=2, shard_mode="thread",
        )
        coordinator = FleetCoordinator(
            server, population, global_plan=plan,
            aggregate_budget=Budget(5.0),
            chunk_size=CHUNK, batch_size=1,
        )
        report = coordinator.run(lines)

        assert report.killed_clients == [victim]
        assert report.no_record_loss
        summary = report.summary
        assert summary.received == N_RECORDS
        assert (summary.loaded + summary.sidelined + summary.malformed
                == summary.received)
        # The victim died after ~1 chunk: survivors absorbed the rest.
        dead = report.client(victim)
        assert dead.shipped_records < dead.assigned_records
        assert report.reassignment_events > 0
        absorbed = sum(c.absorbed_records for c in report.clients
                       if c.client_id != victim)
        assert absorbed > 0
        assert any(src == victim for src, _, _ in report.reassignments)
        # Fleet-wide shipped records still cover every input record.
        assert sum(c.shipped_records for c in report.clients) == N_RECORDS

        got = [server.query(q.sql("t")).scalar()
               for q in workload.queries]
        assert got == reference_answers

    def test_killed_client_drops_from_reallocation(self, tmp_path, setup):
        lines, workload, plan = setup
        population = ClientPopulation.generate(4, seed=SEED)
        victim = fat_client(population)
        population = population.with_kill(victim, after_chunks=1)
        server = CiaoServer(
            tmp_path / "realloc", plan=plan, workload=workload,
            n_shards=2, shard_mode="thread",
        )
        coordinator = FleetCoordinator(
            server, population, global_plan=plan,
            aggregate_budget=Budget(5.0),
            chunk_size=CHUNK, batch_size=1, realloc_interval=3,
        )
        report = coordinator.run(lines)
        assert report.no_record_loss
        assert report.killed_clients == [victim]


class TestKillSignal:
    def test_external_kill_mid_run(self, tmp_path, setup,
                                   reference_answers):
        """kill_client() from another thread, racing the load.

        The kill may land mid-load (records reassigned) or after the
        victim finished (no-op beyond the flag); the accounting
        invariant and query answers must hold either way.
        """
        lines, workload, plan = setup
        population = ClientPopulation.generate(5, seed=SEED)
        victim = fat_client(population)
        server = CiaoServer(
            tmp_path / "sig", plan=plan, workload=workload,
            n_shards=2, shard_mode="thread",
        )
        coordinator = FleetCoordinator(
            server, population, global_plan=plan,
            aggregate_budget=Budget(5.0),
            chunk_size=CHUNK, batch_size=1,
        )
        killer = threading.Timer(0.05, coordinator.kill_client, (victim,))
        killer.start()
        try:
            report = coordinator.run(lines)
        finally:
            killer.cancel()
        assert report.no_record_loss
        got = [server.query(q.sql("t")).scalar()
               for q in workload.queries]
        assert got == reference_answers


class TestSlowStraggler:
    def test_live_straggler_sheds_load(self, tmp_path, setup):
        """A merely slow client's backlog is absorbed by idle peers."""
        lines, workload, plan = setup
        # One client owns (nearly) everything; four idle peers.
        from repro.fleet import FleetClientSpec
        specs = [FleetClientSpec("hog", "alibaba", 0.5, share=0.96)] + [
            FleetClientSpec(f"idle-{i}", "pku", 1.2, share=0.01)
            for i in range(4)
        ]
        server = CiaoServer(
            tmp_path / "slow", plan=plan, workload=workload,
            n_shards=2, shard_mode="thread",
        )
        coordinator = FleetCoordinator(
            server, specs, global_plan=plan,
            aggregate_budget=Budget(5.0), chunk_size=CHUNK,
            batch_size=1,
        )
        report = coordinator.run(lines)
        assert report.no_record_loss
        assert report.reassigned_records > 0
        hog = report.client("hog")
        assert hog.shipped_records < hog.assigned_records
