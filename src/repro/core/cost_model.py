"""The client-side predicate evaluation cost model (paper §V-D).

The expected cost (µs) of evaluating a simple predicate ``p`` against one
JSON object of average serialized length ``len(t)`` is

    T = sel(p) · (k1·len(p) + k2·len(t))
      + (1 − sel(p)) · (k3·len(p) + k4·len(t)) + c

The first term prices a search that *finds* the pattern (it stops early, so
it depends differently on the lengths than a full scan), the second a search
that runs off the end of the record, and ``c`` is per-search startup
overhead.  The five coefficients are hardware-dependent and fitted by
:mod:`repro.core.calibration`.

Disjunction cost is the sum of its simple-predicate costs; a key-value match
performs two searches and is priced as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from .patterns import compile_predicate
from .predicates import Clause, SimplePredicate


@dataclass(frozen=True)
class CostCoefficients:
    """The five hardware-dependent constants of the §V-D model, in µs."""

    k1: float  # pattern-length slope, match found
    k2: float  # record-length slope, match found
    k3: float  # pattern-length slope, no match
    k4: float  # record-length slope, no match
    c: float   # per-search startup cost

    def __post_init__(self) -> None:
        for name in ("k1", "k2", "k3", "k4", "c"):
            if getattr(self, name) < 0:
                raise ValueError(f"coefficient {name} must be non-negative")

    def as_vector(self) -> tuple:
        """(k1, k2, k3, k4, c), the calibration regression's layout."""
        return (self.k1, self.k2, self.k3, self.k4, self.c)


#: A plausible default for a modern CPU running ``str.find``: scanning is a
#: few GB/s (≈ 0.0005 µs/byte misses), hits stop early, and each call has
#: sub-microsecond overhead.  Real experiments should calibrate instead.
DEFAULT_COEFFICIENTS = CostCoefficients(
    k1=0.0004, k2=0.0003, k3=0.0006, k4=0.0005, c=0.15
)


class CostModel:
    """Price predicate evaluation on a (client, dataset) pair.

    Args:
        coefficients: Hardware-calibrated constants.
        avg_record_length: The dataset's mean serialized object length
            ``len(t)``, from historical statistics.
    """

    def __init__(self, coefficients: CostCoefficients,
                 avg_record_length: float):
        if avg_record_length <= 0:
            raise ValueError("average record length must be positive")
        self.coefficients = coefficients
        self.avg_record_length = float(avg_record_length)

    # ------------------------------------------------------------------
    def search_cost(self, pattern_length: int, hit_probability: float) -> float:
        """Expected µs of one substring search (the model's core formula)."""
        if pattern_length <= 0:
            raise ValueError("pattern length must be positive")
        if not 0.0 <= hit_probability <= 1.0:
            raise ValueError("hit probability must lie in [0, 1]")
        k = self.coefficients
        len_t = self.avg_record_length
        hit = k.k1 * pattern_length + k.k2 * len_t
        miss = k.k3 * pattern_length + k.k4 * len_t
        return hit_probability * hit + (1 - hit_probability) * miss + k.c

    def predicate_cost(self, predicate: SimplePredicate,
                       selectivity: float) -> float:
        """Expected µs to evaluate one simple predicate on one record.

        Each pattern string of the compiled form is one search.  The
        predicate's selectivity approximates the hit probability of each
        search (for the two-search key-value form, the key search hits
        almost always; using the predicate's own selectivity for both is the
        paper's simplification and errs toward cheaper estimates for the
        short value pattern — the calibration benches quantify the fit).
        """
        spec = compile_predicate(predicate)
        return sum(
            self.search_cost(len(pattern), selectivity)
            for pattern in spec.searches()
        )

    def clause_cost(self, clause: Clause, selectivity: float) -> float:
        """Expected µs for a disjunctive clause: sum over disjuncts (§V-D)."""
        return sum(
            self.predicate_cost(p, selectivity) for p in clause.predicates
        )

    def cost_table(self, selectivities: Mapping[Clause, float]
                   ) -> Dict[Clause, float]:
        """Price every clause of a candidate pool."""
        return {
            clause: self.clause_cost(clause, sel)
            for clause, sel in selectivities.items()
        }

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable one-liner for logs and reports."""
        k = self.coefficients
        return (
            f"CostModel(len_t={self.avg_record_length:.0f}, "
            f"k1={k.k1:.2e}, k2={k.k2:.2e}, k3={k.k3:.2e}, "
            f"k4={k.k4:.2e}, c={k.c:.2e})"
        )


def total_cost(costs: Mapping[Clause, float],
               selected: Iterable[Clause]) -> float:
    """Σ cost over *selected* — the knapsack constraint's left-hand side."""
    return sum(costs[c] for c in selected)
