"""Real socket transport: TCP channels carrying length-prefixed frames.

The abstraction the channel stack was always for: a
:class:`SocketChannel` is one endpoint of a connected stream socket and
implements the full :class:`~repro.transport.base.Channel` contract —
``send`` writes one ``[u32 length][payload]`` frame, ``receive`` returns
one complete reassembled frame (or ``None``, non-blocking), and the
``Lossy``/``Latency`` decorators compose over it unchanged.  The payload
is whatever the layers above already speak: batched chunk frames
(:func:`repro.client.protocol.encode_frame_batch`), serialized plans
(:mod:`repro.core.plan_io`), or the service wire messages
(:mod:`repro.transport.wire`).

Framing is strict: the 4-byte little-endian length prefix is validated
against :data:`MAX_FRAME_BYTES` before any allocation, so a corrupt or
hostile peer cannot force a multi-gigabyte buffer, and a short read
simply waits for the rest of the frame (TCP gives bytes, not messages).

Blocking model: sends block until the kernel accepts the bytes
(``sendall``); receives never block unless asked
(:meth:`SocketChannel.receive_wait` uses ``select`` with a deadline).
Peer shutdown surfaces as ``closed`` — ``receive`` returns ``None``
forever after the buffered frames drain, exactly like an empty channel.
"""

from __future__ import annotations

import select
import socket as socketlib
import time
from collections import deque
from typing import Deque, Optional, Tuple

from ..analysis.sanitizer import make_lock
from ..obs.metrics import Metrics, resolve_metrics
from .base import Channel, ChannelTimeout, TransportError

#: Hard ceiling on one frame's payload, validated before allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Bytes pulled off the socket per ``recv`` call.
_RECV_CHUNK = 1 << 16

_LEN_BYTES = 4


class SocketChannel(Channel):
    """One endpoint of a connected stream socket, as a channel.

    Args:
        sock: A connected stream socket (TCP or a ``socketpair`` end).
            The channel takes ownership: :meth:`close` closes it.
        max_frame_bytes: Per-frame payload ceiling (strictly validated
            before allocation).
        metrics: Optional :class:`~repro.obs.Metrics` registry; when
            given, the channel reports ``socket.bytes_in/out`` and
            ``socket.frames_in/out``.  Defaults to the no-op registry.
        recv_deadline: Optional liveness bound in seconds.  When set, a
            single :meth:`receive_wait` call that blocks longer than
            this (because the peer is connected but silent) raises
            :class:`~repro.transport.base.ChannelTimeout` instead of
            waiting forever.  A caller-supplied *timeout* shorter than
            the remaining deadline keeps its usual ``None``-on-timeout
            semantics.  ``None`` (the default) never raises.
    """

    def __init__(self, sock: socketlib.socket,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 metrics: Optional[Metrics] = None,
                 recv_deadline: Optional[float] = None):
        super().__init__()
        metrics = resolve_metrics(metrics)
        self._bytes_out = metrics.counter("socket.bytes_out")
        self._bytes_in = metrics.counter("socket.bytes_in")
        self._frames_out = metrics.counter("socket.frames_out")
        self._frames_in = metrics.counter("socket.frames_in")
        if max_frame_bytes < 1:
            raise ValueError(
                f"max_frame_bytes must be >= 1, got {max_frame_bytes}"
            )
        if recv_deadline is not None and recv_deadline <= 0:
            raise ValueError(
                f"recv_deadline must be positive, got {recv_deadline}"
            )
        self._sock = sock
        self._max_frame = max_frame_bytes
        self._recv_deadline = recv_deadline
        self._buffer = bytearray()
        self._frames: Deque[bytes] = deque()
        self._eof = False
        self._shut = False
        # Serializes concurrent senders: a frame must hit the stream as
        # one contiguous [length][payload] unit or the peer desyncs.
        self._send_lock = make_lock("SocketChannel._send_lock")
        try:
            sock.setsockopt(socketlib.IPPROTO_TCP,
                            socketlib.TCP_NODELAY, 1)
        except OSError:
            pass  # not TCP (e.g. a socketpair end); fine without it

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def connect(cls, address: Tuple[str, int],
                timeout: Optional[float] = 30.0,
                max_frame_bytes: int = MAX_FRAME_BYTES,
                metrics: Optional[Metrics] = None,
                recv_deadline: Optional[float] = None
                ) -> "SocketChannel":
        """Dial ``(host, port)`` and return the connected channel."""
        sock = socketlib.create_connection(address, timeout=timeout)
        sock.settimeout(None)
        return cls(sock, max_frame_bytes=max_frame_bytes, metrics=metrics,
                   recv_deadline=recv_deadline)

    # ------------------------------------------------------------------
    # Channel contract
    # ------------------------------------------------------------------
    def send(self, payload: bytes) -> None:
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TypeError("channels carry bytes")
        payload = bytes(payload)
        if len(payload) > self._max_frame:
            raise TransportError(
                f"frame of {len(payload)} bytes exceeds the "
                f"{self._max_frame}-byte frame ceiling"
            )
        header = len(payload).to_bytes(_LEN_BYTES, "little")
        with self._send_lock:
            if self._shut:
                raise TransportError("send on a closed socket channel")
            try:
                self._sock.sendall(header + payload)
            except OSError as exc:
                raise TransportError(
                    f"socket send failed: {exc}"
                ) from exc
        self.stats.record_send(len(payload))
        self._bytes_out.inc(len(payload))
        self._frames_out.inc()

    def receive(self) -> Optional[bytes]:
        self._pump()
        if not self._frames:
            return None
        self.stats.record_receive()
        self._frames_in.inc()
        return self._frames.popleft()

    def receive_wait(self, timeout: Optional[float] = None
                     ) -> Optional[bytes]:
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        hard = (
            None if self._recv_deadline is None
            else time.monotonic() + self._recv_deadline
        )
        while True:
            payload = self.receive()
            if payload is not None:
                return payload
            if self.closed:
                return None
            now = time.monotonic()
            # The caller's own timeout wins over the liveness deadline:
            # a short poll below the deadline keeps returning None.
            if deadline is not None and now >= deadline:
                return None
            if hard is not None and now >= hard:
                raise ChannelTimeout(
                    f"peer sent nothing for {self._recv_deadline}s "
                    f"(recv_deadline); presuming it hung"
                )
            wait = 1.0
            if deadline is not None:
                wait = min(wait, deadline - now)
            if hard is not None:
                wait = min(wait, hard - now)
            try:
                select.select([self._sock], [], [], max(wait, 0.0))
            except (OSError, ValueError):
                # The socket was closed under us; drain what we have.
                self._eof = True
                continue

    def pending(self) -> int:
        self._pump()
        return len(self._frames)

    @property
    def closed(self) -> bool:
        """True once the peer hung up and every buffered frame drained."""
        return (self._eof or self._shut) and not self._frames

    @property
    def eof(self) -> bool:
        """True once the peer's end of the stream has closed."""
        return self._eof

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        if self._shut:
            return
        self._shut = True
        try:
            self._sock.shutdown(socketlib.SHUT_RDWR)
        except OSError:
            pass  # already disconnected
        self._sock.close()

    def __enter__(self) -> "SocketChannel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Stream reassembly
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Slurp every byte the kernel has, then split complete frames."""
        while not self._eof and not self._shut:
            try:
                ready, _, _ = select.select([self._sock], [], [], 0)
            except (OSError, ValueError):
                self._eof = True
                break
            if not ready:
                break
            try:
                data = self._sock.recv(_RECV_CHUNK)
            except BlockingIOError:
                break
            except OSError:
                self._eof = True
                break
            if not data:
                self._eof = True
                break
            self._buffer += data
            self._bytes_in.inc(len(data))
        self._split_frames()

    def _split_frames(self) -> None:
        """Move complete ``[length][payload]`` frames out of the buffer."""
        buf = self._buffer
        while len(buf) >= _LEN_BYTES:
            length = int.from_bytes(buf[:_LEN_BYTES], "little")
            if length > self._max_frame:
                self._eof = True
                raise TransportError(
                    f"peer declared a {length}-byte frame; ceiling is "
                    f"{self._max_frame} bytes"
                )
            end = _LEN_BYTES + length
            if len(buf) < end:
                return  # incomplete frame: wait for more bytes
            self._frames.append(bytes(buf[_LEN_BYTES:end]))
            del buf[:end]


class SocketListener:
    """A listening TCP socket handing out :class:`SocketChannel` peers.

    Binds immediately (``port=0`` asks the kernel for a free port — read
    it back from :attr:`address`); :meth:`accept` blocks up to *timeout*
    for one inbound connection and wraps it.  Context-manager friendly::

        with SocketListener() as listener:
            spec = f"tcp:{listener.address[0]}:{listener.address[1]}"
            ...
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 backlog: int = 16,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 metrics: Optional[Metrics] = None,
                 recv_deadline: Optional[float] = None):
        self._max_frame = max_frame_bytes
        self._metrics = metrics
        self._recv_deadline = recv_deadline
        self._sock = socketlib.socket(socketlib.AF_INET,
                                      socketlib.SOCK_STREAM)
        self._sock.setsockopt(socketlib.SOL_SOCKET,
                              socketlib.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._sock.getsockname()[:2]
        return host, port

    @property
    def closed(self) -> bool:
        return self._closed

    def accept(self, timeout: Optional[float] = None
               ) -> Optional[SocketChannel]:
        """One inbound connection as a channel, or ``None`` on timeout."""
        if self._closed:
            return None
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
        except (OSError, ValueError):
            return None
        if not ready:
            return None
        try:
            sock, _ = self._sock.accept()
        except OSError:
            return None
        return SocketChannel(sock, max_frame_bytes=self._max_frame,
                             metrics=self._metrics,
                             recv_deadline=self._recv_deadline)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._sock.close()

    def __enter__(self) -> "SocketListener":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def socket_pair(max_frame_bytes: int = MAX_FRAME_BYTES
                ) -> Tuple[SocketChannel, SocketChannel]:
    """Two connected :class:`SocketChannel` ends over a real socketpair.

    The loopback harness for tests: bytes genuinely cross the kernel
    (partial reads, buffering, EOF semantics all real) without binding a
    port.  Each end both sends and receives.
    """
    a, b = socketlib.socketpair()
    return (SocketChannel(a, max_frame_bytes=max_frame_bytes),
            SocketChannel(b, max_frame_bytes=max_frame_bytes))
