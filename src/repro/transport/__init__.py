"""Transport layer: channels, decorators, sockets, and the service wire.

The channel stack, lifted out of ``simulate/`` now that it carries real
traffic: :class:`Channel` and its in-process/file implementations,
the composable :class:`LossyChannel`/:class:`LatencyChannel` decorators,
declarative construction (:class:`ChannelSpec`, :func:`make_channel`,
:func:`per_client_channels`), the TCP transport
(:class:`SocketChannel`, :class:`SocketListener`), and the typed
service-message codec (:mod:`repro.transport.wire`).  Decorators compose
over any base transport — a seeded lossy link behaves identically over
an in-memory queue and a live socket.

``repro.simulate.network`` remains as a deprecation shim re-exporting
these names.
"""

from .base import (
    Channel,
    ChannelDecorator,
    ChannelStats,
    ChannelTimeout,
    MemoryChannel,
    TransportError,
)
from .decorators import LatencyChannel, LinkModel, LossyChannel
from .faults import FaultEvent, FaultPlan, FaultyChannel, OpCounter, faulty_dialer
from .file import FileChannel
from .sockets import (
    MAX_FRAME_BYTES,
    SocketChannel,
    SocketListener,
    socket_pair,
)
from .spec import ChannelLike, ChannelSpec, make_channel, per_client_channels
from .wire import Message, WireError, decode_message, encode_message

__all__ = [
    "Channel",
    "ChannelDecorator",
    "ChannelLike",
    "ChannelSpec",
    "ChannelStats",
    "ChannelTimeout",
    "FaultEvent",
    "FaultPlan",
    "FaultyChannel",
    "FileChannel",
    "LatencyChannel",
    "LinkModel",
    "LossyChannel",
    "MAX_FRAME_BYTES",
    "MemoryChannel",
    "Message",
    "OpCounter",
    "SocketChannel",
    "SocketListener",
    "TransportError",
    "WireError",
    "decode_message",
    "encode_message",
    "faulty_dialer",
    "make_channel",
    "per_client_channels",
    "socket_pair",
]
