"""Simulated client→server transport.

The paper's prototype "simulates all communication through file I/O" on a
single machine; :class:`FileChannel` reproduces that literally (one spool
file per chunk), while :class:`MemoryChannel` offers the same interface
without touching disk for tests and fast benchmarks.  Both account bytes
and messages so experiments can report transfer overhead — bit-vectors add
~1 bit per record per pushed predicate, one of CIAO's selling points.
"""

from __future__ import annotations

import os
import random
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)


@dataclass
class ChannelStats:
    """Transfer accounting for one channel."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    #: First transmissions lost on a lossy link (each one was
    #: retransmitted, so drops cost bytes, never data).
    messages_dropped: int = 0

    def record_send(self, size: int) -> None:
        """Account one outgoing message of *size* bytes."""
        self.messages_sent += 1
        self.bytes_sent += size

    def record_receive(self) -> None:
        """Account one delivered message."""
        self.messages_received += 1

    def record_drop(self, size: int) -> None:
        """Account one dropped transmission (its retransmission bytes too)."""
        self.messages_dropped += 1
        self.bytes_sent += size


class Channel(ABC):
    """One-directional ordered message transport."""

    def __init__(self) -> None:
        self.stats = ChannelStats()

    @abstractmethod
    def send(self, payload: bytes) -> None:
        """Enqueue one message."""

    def send_batch(self, payloads: Iterable[bytes]) -> None:
        """Frame several encoded chunks into one message.

        Chunk frames are self-delimiting, so the batch is their plain
        concatenation; one queue put / spool file then carries many
        chunks, amortizing per-message transport overhead.  Receivers
        that care about chunk boundaries use :meth:`drain_chunks`, which
        splits batches back apart; an empty batch sends nothing.
        """
        batch = bytearray()
        for payload in payloads:
            if not isinstance(payload, (bytes, bytearray, memoryview)):
                raise TypeError("channels carry bytes")
            batch += payload
        if batch:
            self.send(bytes(batch))

    def send_frames(self, payloads: Sequence[bytes]) -> None:
        """Send buffered chunk frames as one message.

        The canonical flush for senders that accumulate frames: a single
        frame goes out directly (no copy), several are concatenated via
        :meth:`send_batch`, and an empty buffer sends nothing.
        """
        if len(payloads) == 1:
            self.send(payloads[0])
        elif payloads:
            self.send_batch(payloads)

    @abstractmethod
    def receive(self) -> Optional[bytes]:
        """Dequeue the oldest message, or None if the channel is empty."""

    def drain(self) -> Iterator[bytes]:
        """Receive until empty."""
        while True:
            payload = self.receive()
            if payload is None:
                return
            yield payload

    def drain_chunks(self) -> Iterator[bytes]:
        """Receive until empty, yielding individual chunk frames.

        The inverse of :meth:`send_batch`: each received message is split
        into its chunk frames (a single-chunk message yields itself), so
        consumers see one chunk per iteration regardless of how the
        sender framed them.  Only valid for channels carrying encoded
        chunks.
        """
        # Imported lazily: the protocol module sits above the transport
        # layer in the package graph, and channels stay payload-agnostic
        # except for this one chunk-aware convenience.
        from ..client.protocol import split_frames

        for payload in self.drain():
            for frame in split_frames(payload):
                yield bytes(frame)

    def __len__(self) -> int:
        return self.pending()

    @abstractmethod
    def pending(self) -> int:
        """Number of undelivered messages."""


class MemoryChannel(Channel):
    """In-process FIFO — the fast default for tests and benches."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque[bytes] = deque()

    def send(self, payload: bytes) -> None:
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("channels carry bytes")
        self._queue.append(bytes(payload))
        self.stats.record_send(len(payload))

    def receive(self) -> Optional[bytes]:
        if not self._queue:
            return None
        self.stats.record_receive()
        return self._queue.popleft()

    def pending(self) -> int:
        return len(self._queue)


class FileChannel(Channel):
    """File-spool FIFO, mirroring the paper's file-I/O deployment.

    Messages are numbered spool files under *directory*; receive order is
    send order.  The channel owns the directory's ``.msg`` files; anything
    else in there is left alone.
    """

    def __init__(self, directory: str | Path):
        super().__init__()
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._next_send = 0
        self._next_receive = 0
        # Resume counters from any existing spool (restart tolerance).
        numbers = self._spool_numbers()
        if numbers:
            self._next_receive = min(numbers)
            self._next_send = max(numbers) + 1

    def _path(self, index: int) -> Path:
        return self._dir / f"{index:09d}.msg"

    def send(self, payload: bytes) -> None:
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("channels carry bytes")
        path = self._path(self._next_send)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)  # atomic publish: no torn reads
        self._next_send += 1
        self.stats.record_send(len(payload))

    def receive(self) -> Optional[bytes]:
        path = self._path(self._next_receive)
        if not path.exists():
            # A gap in the spool (e.g. a crashed consumer deleted one
            # file out of order) must not stall the channel forever:
            # skip forward to the oldest spool file that actually
            # exists, if any.
            numbers = self._spool_numbers()
            later = [n for n in numbers if n > self._next_receive]
            if not later:
                return None
            self._next_receive = min(later)
            path = self._path(self._next_receive)
        payload = path.read_bytes()
        path.unlink()
        self._next_receive += 1
        self.stats.record_receive()
        return payload

    def pending(self) -> int:
        # Counted from files actually on disk, not send/receive counters:
        # a resumed spool with gaps would otherwise overcount messages
        # that no longer exist.
        return len(self._spool_numbers())

    def _spool_numbers(self) -> List[int]:
        """Message numbers of the spool files currently on disk."""
        return [
            int(p.stem) for p in self._dir.glob("*.msg")
            if p.stem.isdigit()
        ]


@dataclass
class LinkModel:
    """Optional virtual-time pricing of a link (extension over the paper).

    Attributes:
        bandwidth_mbps: Payload throughput in megabits per second.
        latency_us: Fixed per-message latency.
    """

    bandwidth_mbps: float = 1000.0
    latency_us: float = 50.0

    def transfer_time_us(self, payload_bytes: int) -> float:
        """Virtual µs to move one message across the link."""
        if payload_bytes < 0:
            raise ValueError("payload sizes are non-negative")
        bits = payload_bytes * 8
        return self.latency_us + bits / self.bandwidth_mbps


class ChannelDecorator(Channel):
    """Base for channels that wrap another channel.

    Decorators compose declaratively (see :func:`make_channel`): each one
    adds a transport property — loss, latency pricing — while delegating
    storage to the innermost real channel.  The decorator keeps its own
    :class:`ChannelStats` describing what *it* saw; ``inner.stats`` keeps
    the underlying channel's view.
    """

    def __init__(self, inner: Channel):
        super().__init__()
        self.inner = inner

    def send(self, payload: bytes) -> None:
        self.stats.record_send(len(payload))
        self.inner.send(payload)

    def receive(self) -> Optional[bytes]:
        payload = self.inner.receive()
        if payload is not None:
            self.stats.record_receive()
        return payload

    def pending(self) -> int:
        return self.inner.pending()


class LossyChannel(ChannelDecorator):
    """A lossy link under a reliable transport (flaky-network scenarios).

    Each send's first transmission is dropped with probability
    *drop_rate*; a dropped transmission is retransmitted until one gets
    through, exactly like a reliable protocol over a lossy link.  Drops
    therefore cost duplicate bytes and show up in
    ``stats.messages_dropped`` — they never lose data, which is what lets
    fleet scenarios assert zero record loss under drops (the no-loss
    invariant is the transport's job, not luck).

    Determinism: the drop sequence comes entirely from *seed* (explicit,
    no global RNG), so the same seed replays the same drops.
    """

    def __init__(self, inner: Channel, drop_rate: float, seed: int):
        super().__init__(inner)
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1), got {drop_rate!r}"
            )
        if seed is None:
            raise ValueError(
                "LossyChannel requires an explicit seed: drops must be "
                "replayable"
            )
        self.drop_rate = drop_rate
        self.seed = seed
        self._rng = random.Random(seed)

    def send(self, payload: bytes) -> None:
        while self._rng.random() < self.drop_rate:
            self.stats.record_drop(len(payload))
        self.stats.record_send(len(payload))
        self.inner.send(payload)


class LatencyChannel(ChannelDecorator):
    """Virtual-time pricing of every delivered message over a link.

    Accumulates :meth:`LinkModel.transfer_time_us` per sent message into
    :attr:`modeled_us` without sleeping — experiments report transport
    cost in calibrated virtual µs, the same axis the client cost model
    uses, while tests run at memory speed.
    """

    def __init__(self, inner: Channel, link: Optional[LinkModel] = None):
        super().__init__(inner)
        self.link = link or LinkModel()
        self.modeled_us = 0.0

    def send(self, payload: bytes) -> None:
        self.modeled_us += self.link.transfer_time_us(len(payload))
        super().send(payload)


@dataclass(frozen=True)
class ChannelSpec:
    """Declarative description of one client→server transport.

    The composable form behind :func:`make_channel`: a base channel kind
    plus optional decorator layers.  Fleet scenarios hand a single spec to
    the coordinator and get one independently-seeded channel per client
    (:meth:`for_client`), instead of hand-writing a factory closure.

    Attributes:
        kind: Base transport — ``"memory"`` or ``"file"``.
        directory: Spool directory for ``"file"`` channels (per-client
            subdirectories are derived by :meth:`for_client`).
        drop_rate: > 0 wraps the base in a :class:`LossyChannel`.
        seed: Drop-sequence seed; required when *drop_rate* > 0.
        link: A :class:`LinkModel` wraps the base in a
            :class:`LatencyChannel` (priced inside the lossy layer, so
            retransmissions are not double-charged).
    """

    kind: str = "memory"
    directory: Optional[Path] = None
    drop_rate: float = 0.0
    seed: Optional[int] = None
    link: Optional[LinkModel] = None

    def __post_init__(self) -> None:
        if self.kind not in ("memory", "file"):
            raise ValueError(
                f"channel kind must be 'memory' or 'file', "
                f"got {self.kind!r}"
            )
        if self.kind == "file" and self.directory is None:
            raise ValueError("file channels need a spool directory")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1), got {self.drop_rate!r}"
            )
        if self.drop_rate > 0 and self.seed is None:
            raise ValueError(
                "a lossy channel spec needs an explicit seed "
                "(drops must be replayable)"
            )

    def for_client(self, client_id: str) -> "ChannelSpec":
        """This spec specialized for one fleet client.

        File spools move to a per-client subdirectory and the lossy seed
        is re-derived per client (stable under the same root seed), so
        every client gets an independent but replayable drop sequence.
        """
        directory = self.directory
        if self.kind == "file" and directory is not None:
            directory = Path(directory) / client_id
        seed = self.seed
        if seed is not None:
            # Local import: randomness sits in the data layer, and the
            # transport module must stay importable without it except for
            # this derivation convenience.
            from ..data.randomness import derive_seed

            seed = derive_seed(seed, f"channel:{client_id}")
        return replace(self, directory=directory, seed=seed)


#: Anything :func:`make_channel` accepts.
ChannelLike = Union[Channel, ChannelSpec, str, Callable[[], Channel], None]


def make_channel(spec: ChannelLike = None, *,
                 directory: Optional[Path] = None) -> Channel:
    """Build a channel from a declarative *spec*.

    Accepted forms:

    * ``None`` or ``"memory"`` — a fresh :class:`MemoryChannel`;
    * ``"file"`` (with *directory*) or ``"file:/path/to/spool"`` — a
      :class:`FileChannel`;
    * a :class:`ChannelSpec` — base kind plus decorator layers
      (latency inside, loss outside);
    * a :class:`Channel` instance — returned as-is;
    * a zero-argument callable — called.
    """
    if isinstance(spec, Channel):
        return spec
    if callable(spec):
        return spec()
    if spec is None or spec == "memory":
        spec = ChannelSpec()
    elif isinstance(spec, str):
        if spec == "file":
            spec = ChannelSpec(kind="file", directory=directory)
        elif spec.startswith("file:"):
            spec = ChannelSpec(kind="file", directory=Path(spec[5:]))
        else:
            raise ValueError(
                f"unknown channel spec {spec!r}; expected 'memory', "
                f"'file', 'file:<dir>', a ChannelSpec, a Channel, or a "
                f"factory"
            )
    if not isinstance(spec, ChannelSpec):
        raise TypeError(
            f"cannot build a channel from {type(spec).__name__}"
        )
    if spec.kind == "file":
        channel: Channel = FileChannel(spec.directory)
    else:
        channel = MemoryChannel()
    if spec.link is not None:
        channel = LatencyChannel(channel, spec.link)
    if spec.drop_rate > 0:
        channel = LossyChannel(channel, spec.drop_rate, spec.seed)
    return channel


def per_client_channels(spec: ChannelLike = None, *,
                        directory: Optional[Path] = None
                        ) -> Callable[[str], Channel]:
    """Normalize *spec* into a ``client_id -> Channel`` fleet factory.

    The declarative counterpart of hand-writing a factory closure: a
    :class:`ChannelSpec` is specialized per client
    (:meth:`ChannelSpec.for_client` — per-client spool directories and
    independently derived loss seeds), string forms get per-client
    subdirectories, and an existing callable passes through unchanged.
    A shared :class:`Channel` instance is rejected — fleet clients must
    not interleave on one FIFO.
    """
    if isinstance(spec, Channel):
        raise TypeError(
            "a single Channel instance cannot back a fleet; pass a "
            "ChannelSpec, a spec string, or a client_id -> Channel "
            "factory"
        )
    if spec is None:
        return lambda client_id: MemoryChannel()
    if callable(spec):
        return spec
    if isinstance(spec, str):
        if spec == "file":
            if directory is None:
                raise ValueError(
                    "per-client file channels need a spool directory: "
                    "use 'file:<dir>' or pass directory=..."
                )
            spec = ChannelSpec(kind="file", directory=directory)
        elif spec.startswith("file:"):
            spec = ChannelSpec(kind="file", directory=Path(spec[5:]))
        elif spec == "memory":
            spec = ChannelSpec()
        else:
            raise ValueError(
                f"unknown channel spec {spec!r}; expected 'memory', "
                f"'file', 'file:<dir>', a ChannelSpec, or a factory"
            )
    if not isinstance(spec, ChannelSpec):
        raise TypeError(
            f"cannot build fleet channels from {type(spec).__name__}"
        )
    resolved = spec
    return lambda client_id: make_channel(resolved.for_client(client_id))
