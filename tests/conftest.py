"""Shared fixtures for the CIAO reproduction test suite.

With ``CIAO_LOCKSAN=1`` in the environment the runtime lock sanitizer
is enabled before any production lock is created: the ``make_*`` lock
factories return instrumented wrappers that record real acquisition
orders, and a session-teardown fixture merges the observed edges into
the statically computed lock graph and fails the run on any cycle.
"""

from __future__ import annotations

import os

import pytest

if os.environ.get("CIAO_LOCKSAN"):
    from repro.analysis.sanitizer import enable as _locksan_enable

    _locksan_enable()


@pytest.fixture(scope="session", autouse=True)
def _locksan_session_check():
    """Verify observed lock orders against the static graph at teardown."""
    yield
    if not os.environ.get("CIAO_LOCKSAN"):
        return
    from pathlib import Path

    import repro
    from repro.analysis import build_lock_graph_from_paths, verify_consistent
    from repro.analysis.sanitizer import acquisition_counts

    graph = build_lock_graph_from_paths([Path(repro.__file__).parent])
    observed = verify_consistent(graph.edge_set())  # raises on a cycle
    counts = acquisition_counts()
    print(
        f"\n[locksan] {sum(counts.values())} sanitized acquisitions over "
        f"{len(counts)} lock(s); {len(observed)} observed order edge(s) "
        f"consistent with the static graph"
    )

from repro.core import (
    Budget,
    CiaoOptimizer,
    CostModel,
    DEFAULT_COEFFICIENTS,
    Query,
    Workload,
    clause,
    exact,
    key_present,
    key_value,
    substring,
)
from repro.data import make_generator
from repro.rawjson import dump_record
from repro.workload import estimate_selectivities

TEST_SEED = 1234


@pytest.fixture(scope="session")
def winlog_generator():
    """A deterministic Windows-log generator shared across tests."""
    return make_generator("winlog", TEST_SEED)


@pytest.fixture(scope="session")
def yelp_generator():
    """A deterministic Yelp generator shared across tests."""
    return make_generator("yelp", TEST_SEED)


@pytest.fixture(scope="session")
def ycsb_generator():
    """A deterministic YCSB generator shared across tests."""
    return make_generator("ycsb", TEST_SEED)


@pytest.fixture(scope="session")
def winlog_sample(winlog_generator):
    """Parsed record sample for selectivity estimation."""
    return winlog_generator.sample(1500)


@pytest.fixture(scope="session")
def winlog_raw_lines(winlog_generator):
    """Raw serialized records (2 000) of the winlog dataset."""
    gen = make_generator("winlog", TEST_SEED)
    return list(gen.raw_lines(2000))


@pytest.fixture()
def tiny_workload():
    """A 3-query workload over hand-built clauses with known structure."""
    c_name = clause(exact("name", "Bob"), exact("name", "John"))
    c_age = clause(key_value("age", 20))
    c_text = clause(substring("text", "delicious"))
    c_email = clause(key_present("email"))
    q1 = Query((c_name, c_age), name="q1")
    q2 = Query((c_name, c_text), name="q2")
    q3 = Query((c_text, c_email), name="q3")
    return Workload((q1, q2, q3), dataset="demo")


@pytest.fixture()
def tiny_selectivities(tiny_workload):
    """Hand-fixed selectivities for the tiny workload's pool."""
    pool = tiny_workload.candidate_pool
    return {c: v for c, v in zip(pool, [0.30, 0.10, 0.25, 0.60])}


@pytest.fixture()
def tiny_optimizer(tiny_workload, tiny_selectivities):
    """Optimizer over the tiny workload with the default cost model."""
    model = CostModel(DEFAULT_COEFFICIENTS, avg_record_length=200)
    return CiaoOptimizer(tiny_workload, tiny_selectivities, model)


@pytest.fixture()
def demo_records():
    """Parsed + raw records matching the tiny workload's columns."""
    records = [
        {"name": "Bob", "age": 20, "text": "truly delicious stew",
         "email": "bob@example.test"},
        {"name": "John", "age": 31, "text": "bland", "email": None},
        {"name": "Eve", "age": 20, "text": "delicious crumbs"},
        {"name": "Mallory", "age": 44, "text": "awful"},
        {"name": "Bob", "age": 20, "text": "ok"},
    ]
    return records, [dump_record(r) for r in records]
