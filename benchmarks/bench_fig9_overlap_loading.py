"""Fig. 9 — data loading time and ratio vs predicate overlap.

Paper setup: Windows log, 5-query workloads with 1 / 2 / 4 conjunctive
predicates per query (low / medium / high overlap), two predicates pushed.
Expected shape: low and medium overlap cannot enable partial loading
(loading ratio 1.0, time ≈ baseline); high overlap covers every query and
loading time drops drastically.
"""

from conftest import config_for, run_once

from repro.bench import emit_table, overlap_experiment

PARAMS = config_for("winlog", n_records=4000, n_queries=5)


def test_fig9_overlap_loading(benchmark, tmp_path, results_dir):
    def experiment():
        return overlap_experiment(tmp_path, config=PARAMS["config"])

    results = run_once(benchmark, experiment)
    rows = [
        (r.level, r.loading_time_s, r.loading_ratio,
         "yes" if r.metrics.partial_loading else "no")
        for r in results
    ]
    emit_table(
        "fig9_overlap_loading",
        ["overlap", "loading time (s)", "loading ratio", "partial loading"],
        rows, results_dir, title="Fig 9",
    )

    by_level = {r.level: r for r in results}
    assert by_level["low"].loading_ratio == 1.0
    assert by_level["medium"].loading_ratio == 1.0
    assert by_level["high"].loading_ratio < 0.6
    assert (
        by_level["high"].loading_time_s < by_level["low"].loading_time_s
    )
