"""The predicate model: CIAO's unit of pushdown.

Paper §V-A: each query's WHERE clause is a *conjunction of disjunctive
clauses*.  The disjunctive clause — e.g. ``name IN ('Bob', 'John')`` — is the
atomic unit of pushdown (pushing only ``name = 'Bob'`` could discard tuples
the disjunction keeps), and is what the paper calls "a predicate" from §V on.

Supported simple predicates (Table I):

* exact string match      — ``name = 'Bob'``
* substring match         — ``text LIKE '%delicious%'``
* prefix / suffix match   — ``time LIKE '2016%'`` / ``time LIKE '%:30'``
  (a natural refinement of substring match: anchoring against the JSON
  string delimiters keeps the no-false-negative guarantee)
* key-presence match      — ``email != NULL``
* key-value match         — ``age = 10`` (integers and booleans)

Unsupported by design, because raw matching would produce *false negatives*
(paper §IV-B): range and inequality predicates, and float equality (the same
number can have several textual representations, e.g. ``2.4`` vs ``24e-1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple, Union

PredicateValue = Union[str, int, bool, None]


class PredicateKind(Enum):
    """The matchable predicate families of Table I."""

    EXACT = "exact"
    SUBSTRING = "substring"
    PREFIX = "prefix"
    SUFFIX = "suffix"
    KEY_PRESENCE = "key_presence"
    KEY_VALUE = "key_value"


class UnsupportedPredicateError(ValueError):
    """Raised when a predicate cannot be pushed down without false negatives."""


@dataclass(frozen=True)
class SimplePredicate:
    """One atomic, client-evaluable predicate on a single column.

    Instances are immutable and totally ordered so predicate sets have a
    deterministic iteration order — greedy tie-breaking must not depend on
    hash randomization.  The sort key stringifies the operand because values
    of different types (str / int / bool) may share a column.
    """

    kind: PredicateKind
    column: str
    value: PredicateValue

    def __post_init__(self) -> None:
        self._validate()

    def _sort_key(self) -> Tuple[str, str, str, str]:
        return (
            self.column,
            self.kind.value,
            type(self.value).__name__,
            str(self.value),
        )

    def __lt__(self, other: "SimplePredicate") -> bool:
        if not isinstance(other, SimplePredicate):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def _validate(self) -> None:
        if not self.column:
            raise ValueError("predicates need a column name")
        kind, value = self.kind, self.value
        if kind in (PredicateKind.EXACT, PredicateKind.SUBSTRING,
                    PredicateKind.PREFIX, PredicateKind.SUFFIX):
            if not isinstance(value, str) or not value:
                raise UnsupportedPredicateError(
                    f"{kind.value} match needs a non-empty string operand, "
                    f"got {value!r}"
                )
        elif kind is PredicateKind.KEY_PRESENCE:
            if value is not None:
                raise UnsupportedPredicateError(
                    "key-presence match takes no operand"
                )
        elif kind is PredicateKind.KEY_VALUE:
            if isinstance(value, bool):
                return
            if isinstance(value, int):
                return
            if isinstance(value, float):
                raise UnsupportedPredicateError(
                    "float equality is not pushdown-safe: the same number "
                    "has multiple textual representations (2.4 vs 24e-1)"
                )
            raise UnsupportedPredicateError(
                f"key-value match needs an int or bool, got {value!r}"
            )

    # ------------------------------------------------------------------
    def evaluate(self, record: Mapping[str, Any]) -> bool:
        """Ground-truth semantics on a *parsed* record (top-level keys).

        This is what queries ultimately verify after data skipping; the raw
        matchers in :mod:`repro.rawjson.raw_matcher` approximate it with
        one-sided (false-positive-only) error.
        """
        kind = self.kind
        if kind is PredicateKind.KEY_PRESENCE:
            return record.get(self.column) is not None
        actual = record.get(self.column)
        if kind is PredicateKind.EXACT:
            return isinstance(actual, str) and actual == self.value
        if kind is PredicateKind.SUBSTRING:
            return isinstance(actual, str) and self.value in actual
        if kind is PredicateKind.PREFIX:
            return isinstance(actual, str) and actual.startswith(self.value)
        if kind is PredicateKind.SUFFIX:
            return isinstance(actual, str) and actual.endswith(self.value)
        if kind is PredicateKind.KEY_VALUE:
            if isinstance(self.value, bool):
                return isinstance(actual, bool) and actual is self.value
            return (
                isinstance(actual, int)
                and not isinstance(actual, bool)
                and actual == self.value
            )
        raise AssertionError(f"unhandled kind {kind}")

    def sql(self) -> str:
        """Render as the SQL fragment the engine's parser accepts."""
        kind = self.kind
        if kind is PredicateKind.EXACT:
            return f"{self.column} = '{self.value}'"
        if kind is PredicateKind.SUBSTRING:
            return f"{self.column} LIKE '%{self.value}%'"
        if kind is PredicateKind.PREFIX:
            return f"{self.column} LIKE '{self.value}%'"
        if kind is PredicateKind.SUFFIX:
            return f"{self.column} LIKE '%{self.value}'"
        if kind is PredicateKind.KEY_PRESENCE:
            return f"{self.column} != NULL"
        if kind is PredicateKind.KEY_VALUE:
            if isinstance(self.value, bool):
                return f"{self.column} = {'true' if self.value else 'false'}"
            return f"{self.column} = {self.value}"
        raise AssertionError(f"unhandled kind {kind}")

    def __str__(self) -> str:
        return self.sql()


# Convenience constructors -------------------------------------------------
def exact(column: str, value: str) -> SimplePredicate:
    """``column = 'value'`` (string equality)."""
    return SimplePredicate(PredicateKind.EXACT, column, value)


def substring(column: str, value: str) -> SimplePredicate:
    """``column LIKE '%value%'``."""
    return SimplePredicate(PredicateKind.SUBSTRING, column, value)


def prefix(column: str, value: str) -> SimplePredicate:
    """``column LIKE 'value%'``."""
    return SimplePredicate(PredicateKind.PREFIX, column, value)


def suffix(column: str, value: str) -> SimplePredicate:
    """``column LIKE '%value'``."""
    return SimplePredicate(PredicateKind.SUFFIX, column, value)


def key_present(column: str) -> SimplePredicate:
    """``column != NULL``."""
    return SimplePredicate(PredicateKind.KEY_PRESENCE, column, None)


def key_value(column: str, value: Union[int, bool]) -> SimplePredicate:
    """``column = value`` for integers and booleans."""
    return SimplePredicate(PredicateKind.KEY_VALUE, column, value)


@dataclass(frozen=True)
class Clause:
    """A disjunction of simple predicates: the atomic pushdown unit.

    A single simple predicate is represented as a one-element clause.  The
    paper refers to these as "predicates" from §V onward; we keep the name
    ``Clause`` to avoid ambiguity with :class:`SimplePredicate`.
    """

    predicates: Tuple[SimplePredicate, ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError("a clause needs at least one simple predicate")
        # Canonical order makes logically-equal clauses compare equal, which
        # matters because predicate *overlap across queries* drives the
        # optimization: the same clause in two queries must be one set item.
        object.__setattr__(
            self, "predicates", tuple(sorted(set(self.predicates)))
        )

    def __lt__(self, other: "Clause") -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        mine = tuple(p._sort_key() for p in self.predicates)
        theirs = tuple(p._sort_key() for p in other.predicates)
        return mine < theirs

    def evaluate(self, record: Mapping[str, Any]) -> bool:
        """True if any disjunct holds on the parsed record."""
        return any(p.evaluate(record) for p in self.predicates)

    def sql(self) -> str:
        """SQL fragment, parenthesized when disjunctive."""
        if len(self.predicates) == 1:
            return self.predicates[0].sql()
        return "(" + " OR ".join(p.sql() for p in self.predicates) + ")"

    @property
    def columns(self) -> Tuple[str, ...]:
        """Distinct columns referenced, sorted."""
        return tuple(sorted({p.column for p in self.predicates}))

    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self) -> Iterator[SimplePredicate]:
        return iter(self.predicates)

    def __str__(self) -> str:
        return self.sql()


def clause(*predicates: SimplePredicate) -> Clause:
    """Build a :class:`Clause` from simple predicates."""
    return Clause(tuple(predicates))


@dataclass(frozen=True)
class Query:
    """A workload query: a conjunction of clauses plus a relative frequency.

    The evaluation uses the paper's single template
    ``SELECT COUNT(*) FROM <dataset> WHERE <conjunctive predicates>``;
    richer queries are supported by the engine but the optimizer only needs
    the WHERE structure and the frequency estimate.
    """

    clauses: Tuple[Clause, ...]
    frequency: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if not self.clauses:
            raise ValueError("a query needs at least one clause")
        if self.frequency <= 0:
            raise ValueError("query frequency must be positive")
        # Duplicate clauses in one conjunction are redundant; drop them so
        # P_i is a set, as in the paper.
        object.__setattr__(
            self, "clauses", tuple(sorted(set(self.clauses)))
        )

    def evaluate(self, record: Mapping[str, Any]) -> bool:
        """True if the record satisfies every clause."""
        return all(c.evaluate(record) for c in self.clauses)

    def sql(self, table: str = "t") -> str:
        """Full SQL text in the paper's query-template shape."""
        where = " AND ".join(c.sql() for c in self.clauses)
        return f"SELECT COUNT(*) FROM {table} WHERE {where}"

    @property
    def clause_set(self) -> frozenset:
        """The set P_i of candidate clauses of this query."""
        return frozenset(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __str__(self) -> str:
        return self.sql()


@dataclass(frozen=True)
class Workload:
    """A set of prospective queries with frequencies (paper's Q).

    Provides the aggregate views the optimizer and the experiment harness
    need: the candidate pool ``P`` (union of all clause sets), per-clause
    query membership, and the Table III summary statistics.
    """

    queries: Tuple[Query, ...]
    dataset: str = ""

    def __post_init__(self) -> None:
        if not self.queries:
            raise ValueError("a workload needs at least one query")

    @property
    def candidate_pool(self) -> Tuple[Clause, ...]:
        """All distinct clauses across queries, in canonical order."""
        pool = set()
        for query in self.queries:
            pool.update(query.clauses)
        return tuple(sorted(pool))

    def queries_containing(self, clause_: Clause) -> List[Query]:
        """Queries whose conjunction includes *clause_*."""
        return [q for q in self.queries if clause_ in q.clause_set]

    def clause_query_counts(self) -> Dict[Clause, int]:
        """For each distinct clause, in how many queries it appears (X_i)."""
        counts: Dict[Clause, int] = {}
        for query in self.queries:
            for c in query.clauses:
                counts[c] = counts.get(c, 0) + 1
        return counts

    def total_predicates(self) -> int:
        """Σ over queries of #clauses — Table III's ``#Predicates``."""
        return sum(len(q) for q in self.queries)

    def min_max_predicates(self) -> Tuple[int, int]:
        """Smallest / largest #clauses in a query — Table III's Min/Max."""
        sizes = [len(q) for q in self.queries]
        return min(sizes), max(sizes)

    def normalized_frequencies(self) -> Dict[Query, float]:
        """Frequencies rescaled to sum to 1."""
        total = sum(q.frequency for q in self.queries)
        return {q: q.frequency / total for q in self.queries}

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def summary(self) -> Dict[str, Any]:
        """Table III-style summary row."""
        lo, hi = self.min_max_predicates()
        return {
            "dataset": self.dataset,
            "queries": len(self.queries),
            "total_predicates": self.total_predicates(),
            "min_predicates": lo,
            "max_predicates": hi,
            "distinct_clauses": len(self.candidate_pool),
        }
