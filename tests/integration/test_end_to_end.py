"""Integration tests: the full pipeline on realistic synthetic data."""

import pytest

from repro.client import SimulatedClient
from repro.core import Budget, CostModel, DEFAULT_COEFFICIENTS
from repro.core.optimizer import CiaoOptimizer
from repro.data import make_generator
from repro.rawjson import parse_object
from repro.server import CiaoServer
from repro.simulate import FileChannel, MemoryChannel
from repro.workload import estimate_selectivities, selectivity_workload

SEED = 777
N_RECORDS = 1200


@pytest.fixture(scope="module")
def dataset():
    gen = make_generator("winlog", SEED)
    lines = list(gen.raw_lines(N_RECORDS))
    sample = gen.sample(800)
    return lines, sample


@pytest.fixture(scope="module")
def workload_and_plan(dataset):
    _, sample = dataset
    workload, pushed = selectivity_workload(0.15)
    sels = estimate_selectivities(workload.candidate_pool, sample)
    model = CostModel(DEFAULT_COEFFICIENTS, 160)
    opt = CiaoOptimizer(workload, sels, model)
    return workload, opt.plan(Budget(2.0))


def oracle_counts(lines, workload):
    parsed = [parse_object(line) for line in lines]
    return [
        sum(1 for r in parsed if q.evaluate(r)) for q in workload.queries
    ]


class TestFullPipeline:
    def test_ciao_equals_baseline_and_oracle(self, tmp_path, dataset,
                                             workload_and_plan):
        lines, _ = dataset
        workload, plan = workload_and_plan

        ciao = CiaoServer(tmp_path / "ciao", plan=plan, workload=workload)
        ciao_client = SimulatedClient("c0", plan=plan, chunk_size=300)
        for chunk in ciao_client.process(lines):
            ciao.ingest(chunk)
        ciao_summary = ciao.finalize_loading()

        base = CiaoServer(tmp_path / "base", plan=None, workload=workload)
        base_client = SimulatedClient("c1", plan=None, chunk_size=300)
        for chunk in base_client.process(lines):
            base.ingest(chunk)
        base_summary = base.finalize_loading()

        expected = oracle_counts(lines, workload)
        ciao_counts = [
            ciao.query(q.sql("t")).scalar() for q in workload.queries
        ]
        base_counts = [
            base.query(q.sql("t")).scalar() for q in workload.queries
        ]
        assert ciao_counts == expected
        assert base_counts == expected

        # CIAO actually engaged its mechanisms.
        assert ciao.partial_loading_enabled
        assert ciao_summary.loading_ratio < 1.0
        assert base_summary.loading_ratio == 1.0
        assert ciao_client.budget_respected()

    def test_skipping_reduces_rows_examined(self, tmp_path, dataset,
                                            workload_and_plan):
        lines, _ = dataset
        workload, plan = workload_and_plan
        server = CiaoServer(tmp_path / "s", plan=plan, workload=workload)
        client = SimulatedClient("c", plan=plan, chunk_size=300)
        for chunk in client.process(lines):
            server.ingest(chunk)
        server.finalize_loading()
        for query in workload.queries:
            result = server.query(query.sql("t"))
            assert result.plan_info.used_skipping
            assert result.stats.rows_examined < N_RECORDS / 2

    def test_file_channel_transport(self, tmp_path, dataset,
                                    workload_and_plan):
        lines, _ = dataset
        workload, plan = workload_and_plan
        channel = FileChannel(tmp_path / "spool")
        client = SimulatedClient("c", plan=plan, chunk_size=400)
        client.ship(lines, channel)
        server = CiaoServer(tmp_path / "srv", plan=plan, workload=workload)
        assert server.ingest_channel(channel) == 3
        counts = [
            server.query(q.sql("t")).scalar() for q in workload.queries
        ]
        assert counts == oracle_counts(lines, workload)

    def test_multi_client_ingestion(self, tmp_path, dataset,
                                    workload_and_plan):
        lines, _ = dataset
        workload, plan = workload_and_plan
        half = len(lines) // 2
        server = CiaoServer(tmp_path / "m", plan=plan, workload=workload)
        channel = MemoryChannel()
        SimulatedClient("c0", plan=plan, chunk_size=200).ship(
            lines[:half], channel
        )
        SimulatedClient("c1", plan=plan, chunk_size=200).ship(
            lines[half:], channel
        )
        server.ingest_channel(channel)
        counts = [
            server.query(q.sql("t")).scalar() for q in workload.queries
        ]
        assert counts == oracle_counts(lines, workload)


class TestUncoveredQueries:
    def test_uncovered_query_scans_sideline_and_is_exact(
            self, tmp_path, dataset, workload_and_plan):
        from repro.core import Query, clause, substring
        from repro.data.winlog import INFO_KEYWORDS

        lines, _ = dataset
        workload, plan = workload_and_plan
        server = CiaoServer(tmp_path / "u", plan=plan, workload=workload)
        client = SimulatedClient("c", plan=plan, chunk_size=300)
        for chunk in client.process(lines):
            server.ingest(chunk)
        server.finalize_loading()

        uncovered = Query(
            (clause(substring("info", INFO_KEYWORDS[50])),), name="u"
        )
        result = server.query(uncovered.sql("t"))
        parsed = [parse_object(line) for line in lines]
        assert result.scalar() == sum(
            1 for r in parsed if uncovered.evaluate(r)
        )
        assert result.plan_info.scans_sideline
