"""Protocol bounds-safety checker for wire/storage decode modules.

The protocol layer's contract (PR 1) is that *every* length field is
validated before the bytes it describes are touched: truncation raises
``ProtocolError``/``EncodingError``, never a silent short slice (Python
slicing clamps out-of-range bounds, so ``buf[pos:pos + n]`` on a
truncated buffer quietly returns fewer than *n* bytes) and never a
stray ``struct.error``.

Scope: modules with the ``protocol`` role — ``client/protocol.py``,
``rawjson/``/``rawcsv/``, ``storage/encodings.py``, ``storage/pages.py``,
``core/plan_io.py``, the ``transport/`` frame- and message-decode paths,
or any file declaring ``# ciaolint: module-role=protocol``.

Rules:

``PRO001``
    Cursor-arithmetic slicing ``buf[i:i + n]`` (the upper bound repeats
    the lower plus an offset).  Route it through a bounds-checked cursor
    primitive instead: compute ``end = i + n``, raise the module's decode
    error if ``end`` overruns, then slice ``buf[i:end]``.
``PRO002``
    ``struct.unpack``/``unpack_from`` on a buffer whose length was not
    established first — a short buffer raises ``struct.error``, which the
    decode error contract does not cover.

Both rules are heuristics over the syntactic pattern; genuinely-checked
sites (the cursor primitives themselves) carry an
``# ciaolint: allow[...] -- reason`` justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .findings import Finding
from .model import Project, SourceModule
from .registry import Checker, register


def _same_expr(a: ast.AST, b: ast.AST) -> bool:
    return ast.dump(a) == ast.dump(b)


def _is_cursor_slice(node: ast.Subscript) -> bool:
    """True for ``buf[i:i + n]`` / ``buf[i:n + i]`` shaped slices."""
    sl = node.slice
    if not isinstance(sl, ast.Slice):
        return False
    if sl.lower is None or sl.upper is None:
        return False
    upper = sl.upper
    if not (isinstance(upper, ast.BinOp)
            and isinstance(upper.op, ast.Add)):
        return False
    return (_same_expr(upper.left, sl.lower)
            or _same_expr(upper.right, sl.lower))


@register
class ProtocolBoundsChecker(Checker):
    name = "protocol-bounds"
    description = (
        "decode paths validate lengths before slicing or unpacking"
    )
    rules = {
        "PRO001": "raw cursor slice buf[i:i+n] outside the checked cursor",
        "PRO002": "struct.unpack without an established buffer length",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in project.by_role("protocol"):
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Subscript) and _is_cursor_slice(node):
                findings.append(Finding(
                    path=module.rel_path, line=node.lineno,
                    col=node.col_offset, rule="PRO001",
                    checker=self.name,
                    message=(
                        "cursor-arithmetic slice: a truncated buffer "
                        "yields a silent short slice — bounds-check the "
                        "end offset first (raise the decode error), "
                        "then slice to the checked end"
                    ),
                ))
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "struct"
                        and func.attr.startswith("unpack")):
                    findings.append(Finding(
                        path=module.rel_path, line=node.lineno,
                        col=node.col_offset, rule="PRO002",
                        checker=self.name,
                        message=(
                            "struct.unpack on the decode path: a short "
                            "buffer raises struct.error instead of the "
                            "decode error — check the required length "
                            "first and justify with an allow marker"
                        ),
                    ))
        return findings
