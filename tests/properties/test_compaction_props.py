"""Property: compaction never changes an answer, wherever it lands.

For a random streaming ingest, compacting at **any** mid-stream point
must be invisible to queries: answers immediately after the swap equal
the answers immediately before it, the finished table equals a serial
ingest of the same chunks byte-for-byte, and a warm snapshot-agg cache
survives the swap with the same answers a cold one computes.  Below the
server, :func:`repro.compact.rewrite_parts` must preserve the exact row
multiset for any split of random (ragged, nullable) rows into parts and
row groups, sorted or not.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compact import CompactionConfig, Compactor, rewrite_parts
from repro.obs import QueryLog
from repro.rawjson import JsonChunk, dump_record
from repro.server import CiaoServer
from repro.storage import ParquetLiteReader, ParquetLiteWriter
from repro.storage.schema import infer_schema

QUERIES = [
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(*) FROM t WHERE k = 1",
    "SELECT SUM(v), MIN(v), MAX(v) FROM t WHERE k >= 2",
    "SELECT k, COUNT(*) FROM t GROUP BY k",
]


def answers(server):
    # GROUP BY output follows row-encounter order, which a merge is
    # allowed to change; answers are row *sets* per query.
    return [sorted(server.query(sql).rows, key=repr) for sql in QUERIES]


@st.composite
def ingest_scenario(draw):
    n_chunks = draw(st.integers(min_value=2, max_value=6))
    rows_each = draw(st.integers(min_value=2, max_value=10))
    modulus = draw(st.integers(min_value=2, max_value=5))
    compact_at = draw(st.integers(min_value=1, max_value=n_chunks))
    heat_log = draw(st.booleans())
    chunks = []
    for cid in range(n_chunks):
        records = [
            dump_record({
                "k": (cid * rows_each + i) % modulus,
                "v": cid * rows_each + i,
            })
            for i in range(rows_each)
        ]
        chunks.append(JsonChunk(cid, records))
    return chunks, compact_at, heat_log


@settings(max_examples=20, deadline=None)
@given(scenario=ingest_scenario())
def test_compaction_at_any_point_is_invisible(tmp_path_factory, scenario):
    chunks, compact_at, heat_log = scenario
    base = tmp_path_factory.mktemp("compact-prop")
    qlog = QueryLog()
    server = CiaoServer(base / "stream", n_shards=2, shard_mode="thread",
                        seal_interval=1, query_log=qlog)
    for chunk in chunks[:compact_at]:
        server.ingest(chunk)
    server.quiesce()
    if heat_log:
        for sql in QUERIES:
            server.query(sql)
    warm = answers(server)  # also populates the snapshot-agg cache
    comp = Compactor(server, config=CompactionConfig(min_observations=1),
                     query_log=qlog)
    comp.run_once()  # may be None for tiny draws; the invariant holds
    assert answers(server) == warm  # warm partials survived the swap
    server.table.clear_snapshot_cache()
    assert answers(server) == warm  # and equal a cold recompute
    for chunk in chunks[compact_at:]:
        server.ingest(chunk)
    server.finalize_loading()

    reference = CiaoServer(base / "ref")
    for chunk in chunks:
        reference.ingest(chunk)
    reference.finalize_loading()
    assert answers(server) == answers(reference)


@st.composite
def parts_scenario(draw):
    values = st.one_of(st.none(), st.integers(-5, 5), st.booleans(),
                       st.sampled_from(["a", "bb", ""]))
    rows = draw(st.lists(
        st.fixed_dictionaries({"k": values, "v": st.integers(0, 99)}),
        min_size=1, max_size=24,
    ))
    n_parts = draw(st.integers(min_value=1, max_value=4))
    cuts = sorted(draw(st.lists(
        st.integers(0, len(rows)), min_size=n_parts - 1,
        max_size=n_parts - 1,
    )))
    group_size = draw(st.integers(min_value=1, max_value=8))
    cluster = draw(st.sampled_from([None, "k", "v"]))
    bounds = [0] + cuts + [len(rows)]
    parts = [rows[bounds[i]:bounds[i + 1]] for i in range(n_parts)]
    return [p for p in parts if p], group_size, cluster


def freeze(row):
    return tuple(sorted(row.items(), key=lambda kv: kv[0]))


@settings(max_examples=50, deadline=None)
@given(scenario=parts_scenario())
def test_rewrite_preserves_the_row_multiset(tmp_path_factory, scenario):
    parts, group_size, cluster = scenario
    base = tmp_path_factory.mktemp("rewrite-prop")
    # One shared schema across the parts, like sealed parts of one
    # table (the policy never merges differing schema signatures).
    schema = infer_schema([row for rows in parts for row in rows])
    paths = []
    expected = []
    for index, rows in enumerate(parts):
        path = base / f"p{index}.pql"
        with ParquetLiteWriter(path, schema) as writer:
            for start in range(0, len(rows), group_size):
                writer.write_row_group(rows[start:start + group_size])
        with ParquetLiteReader(path) as reader:
            expected.extend(reader.read_all())  # post-coercion truth
        paths.append(path)
    out = base / "merged.pql"
    stats = rewrite_parts(paths, out, cluster_by=cluster)
    with ParquetLiteReader(out) as reader:
        merged = reader.read_all()
    assert (sorted(map(freeze, merged), key=repr)
            == sorted(map(freeze, expected), key=repr))
    assert stats.rows == len(expected)
    if cluster is None:
        assert merged == expected  # input order preserved exactly
