"""API-hygiene checker: ``__all__`` contracts, defaults, broad excepts.

This is the static promotion of ``tests/test_public_api.py``: the
``__all__`` completeness/sortedness contract that used to live as a
runtime import test is enforced here from the AST alone, so one source
of truth covers both the CLI gate and the test suite (which now just
asserts this checker is clean).

Rules:

``API001``  a package ``__init__.py`` has no literal ``__all__``.
``API002``  ``__all__`` is unsorted or has duplicates.
``API003``  a public name bound at top level (import, def, class,
            assignment) of a package ``__init__.py`` is missing from
            ``__all__``.
``API004``  an ``__all__`` entry is never bound in the module.
``API005``  a mutable default argument (literal list/dict/set or a bare
            ``list()``/``dict()``/``set()`` call).
``API006``  a bare/broad ``except`` (``except:``, ``except Exception``,
            ``except BaseException``) without an
            ``# ciaolint: allow[...] -- reason`` justification.

``from . import submodule`` bindings are ignored for API003 — they bind
modules, which the public-surface contract has never covered.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from .findings import Finding
from .model import Project, SourceModule
from .registry import Checker, register

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _literal_all(tree: ast.Module) -> Optional[Tuple[List[str], int]]:
    """The module's literal ``__all__`` (entries, line), if present."""
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in targets):
            continue
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None
        entries: List[str] = []
        for elt in value.elts:
            if (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                entries.append(elt.value)
            else:
                return None
        return entries, stmt.lineno
    return None


def _top_level_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (symbols, not submodules)."""
    bound: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.ImportFrom):
            if stmt.module is None:
                continue  # `from . import x` binds submodules
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                parts = (target.elts
                         if isinstance(target, (ast.Tuple, ast.List))
                         else [target])
                for part in parts:
                    if isinstance(part, ast.Name):
                        bound.add(part.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                bound.add(stmt.target.id)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # Conditional imports/definitions still bind names.
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.ImportFrom) and sub.module:
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name)
    return bound


@register
class ApiHygieneChecker(Checker):
    name = "api-hygiene"
    description = (
        "__all__ is complete, sorted, and importable; no mutable "
        "defaults; broad excepts carry a justification"
    )
    rules = {
        "API001": "package __init__ has no literal __all__",
        "API002": "__all__ unsorted or duplicated",
        "API003": "public top-level name missing from __all__",
        "API004": "__all__ entry never bound",
        "API005": "mutable default argument",
        "API006": "broad except without justification",
    }

    def check(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in project.modules:
            if module.path.name == "__init__.py":
                findings.extend(self._check_all_contract(module))
            findings.extend(self._check_defaults(module))
            findings.extend(self._check_excepts(module))
        return findings

    # -- __all__ contract (packages only) ------------------------------
    def _check_all_contract(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        parsed = _literal_all(module.tree)
        if parsed is None:
            findings.append(Finding(
                path=module.rel_path, line=1, col=0, rule="API001",
                checker=self.name,
                message=(
                    "package __init__ must declare its public surface "
                    "in a literal __all__ list of strings"
                ),
            ))
            return findings
        entries, line = parsed
        if entries != sorted(entries):
            findings.append(Finding(
                path=module.rel_path, line=line, col=0, rule="API002",
                checker=self.name,
                message="__all__ is not sorted",
            ))
        if len(entries) != len(set(entries)):
            dupes = sorted({e for e in entries if entries.count(e) > 1})
            findings.append(Finding(
                path=module.rel_path, line=line, col=0, rule="API002",
                checker=self.name,
                message=f"__all__ has duplicates: {dupes}",
            ))
        bound = _top_level_bindings(module.tree)
        public = {name for name in bound if not name.startswith("_")}
        missing = sorted(public - set(entries))
        if missing:
            findings.append(Finding(
                path=module.rel_path, line=line, col=0, rule="API003",
                checker=self.name,
                message=(
                    f"public names missing from __all__: {missing}"
                ),
            ))
        unbound = sorted(set(entries) - bound)
        if unbound:
            findings.append(Finding(
                path=module.rel_path, line=line, col=0, rule="API004",
                checker=self.name,
                message=f"__all__ lists unbound names: {unbound}",
            ))
        return findings

    # -- mutable defaults ----------------------------------------------
    def _check_defaults(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default, (ast.List, ast.Dict, ast.Set)
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                    and not default.args and not default.keywords
                )
                if mutable:
                    findings.append(Finding(
                        path=module.rel_path, line=default.lineno,
                        col=default.col_offset, rule="API005",
                        checker=self.name,
                        message=(
                            f"mutable default argument in "
                            f"{node.name}(): defaults are evaluated "
                            f"once and shared across calls — default "
                            f"to None and construct inside"
                        ),
                    ))
        return findings

    # -- broad excepts -------------------------------------------------
    def _check_excepts(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                broad = "bare except"
            elif (isinstance(node.type, ast.Name)
                    and node.type.id in _BROAD_EXCEPTIONS):
                broad = f"except {node.type.id}"
            else:
                continue
            findings.append(Finding(
                path=module.rel_path, line=node.lineno,
                col=node.col_offset, rule="API006",
                checker=self.name,
                message=(
                    f"{broad} swallows arbitrary failures; narrow the "
                    f"exception type or justify with "
                    f"`# ciaolint: allow[API006] -- reason`"
                ),
            ))
        return findings
