"""Unit tests for deterministic fleet population generation."""

import pytest

from repro.fleet import ClientPopulation, FleetClientSpec
from repro.simulate import PLATFORMS


class TestGenerate:
    def test_same_seed_identical_population(self):
        a = ClientPopulation.generate(8, seed=42)
        b = ClientPopulation.generate(8, seed=42)
        assert a.specs == b.specs

    def test_different_seed_differs(self):
        a = ClientPopulation.generate(8, seed=42)
        b = ClientPopulation.generate(8, seed=43)
        assert a.specs != b.specs

    def test_platforms_come_from_table_iv(self):
        population = ClientPopulation.generate(12, seed=7)
        assert {s.platform for s in population} <= set(PLATFORMS)

    def test_speed_factors_derive_from_hardware(self):
        population = ClientPopulation.generate(
            40, seed=7, speed_jitter=0.0, zipf_s=0.0
        )
        reference = PLATFORMS["local"]
        for spec in population:
            expected = PLATFORMS[spec.platform].relative_speed(reference)
            assert spec.speed_factor == pytest.approx(expected)

    def test_shares_are_normalized(self):
        population = ClientPopulation.generate(9, seed=3, zipf_s=1.2)
        assert sum(s.share for s in population) == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        population = ClientPopulation.generate(5, seed=3, zipf_s=0.0)
        for spec in population:
            assert spec.share == pytest.approx(0.2)

    def test_skewed_shares_spread(self):
        population = ClientPopulation.generate(6, seed=11, zipf_s=1.5)
        shares = sorted(s.share for s in population)
        assert shares[-1] > 2 * shares[0]

    def test_slack_fraction_bounds(self):
        never = ClientPopulation.generate(10, seed=5, slack_fraction=0.0)
        assert all(s.slack_us_per_record == float("inf") for s in never)
        always = ClientPopulation.generate(10, seed=5, slack_fraction=1.0)
        assert all(s.slack_us_per_record < float("inf") for s in always)

    def test_needs_at_least_one_client(self):
        with pytest.raises(ValueError):
            ClientPopulation.generate(0, seed=1)


class TestValidation:
    def test_duplicate_ids_rejected(self):
        spec = FleetClientSpec("dup", "local", 1.0, share=0.5)
        with pytest.raises(ValueError):
            ClientPopulation([spec, spec])

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            FleetClientSpec("c", "quantum", 1.0, share=1.0)

    def test_zero_total_share_rejected(self):
        with pytest.raises(ValueError):
            ClientPopulation(
                [FleetClientSpec("c", "local", 1.0, share=0.0)]
            )

    def test_shares_renormalized(self):
        population = ClientPopulation(
            [
                FleetClientSpec("a", "local", 1.0, share=3.0),
                FleetClientSpec("b", "pku", 1.0, share=1.0),
            ]
        )
        assert population["a"].share == pytest.approx(0.75)
        assert population["b"].share == pytest.approx(0.25)


class TestPartition:
    def test_partition_is_exact_and_deterministic(self):
        population = ClientPopulation.generate(7, seed=9, zipf_s=1.0)
        records = [f"r{i}" for i in range(1003)]
        first = population.partition(records)
        second = population.partition(records)
        assert first == second
        assert sum(len(part) for part in first.values()) == len(records)
        flattened = [
            r for spec in population for r in first[spec.client_id]
        ]
        assert flattened == records  # contiguous slices, no loss, no dup

    def test_partition_sizes_track_shares(self):
        population = ClientPopulation(
            [
                FleetClientSpec("big", "local", 1.0, share=0.75),
                FleetClientSpec("small", "local", 1.0, share=0.25),
            ]
        )
        parts = population.partition([str(i) for i in range(100)])
        assert len(parts["big"]) == 75
        assert len(parts["small"]) == 25

    def test_empty_input(self):
        population = ClientPopulation.generate(3, seed=1)
        parts = population.partition([])
        assert all(part == [] for part in parts.values())


class TestHelpers:
    def test_with_kill(self):
        population = ClientPopulation.generate(4, seed=2)
        victim = population.specs[2].client_id
        killed = population.with_kill(victim, after_chunks=3)
        assert killed[victim].kill_after_chunks == 3
        others = [s for s in killed if s.client_id != victim]
        assert all(s.kill_after_chunks is None for s in others)
        with pytest.raises(KeyError):
            population.with_kill("nobody", 1)

    def test_profiles_match_specs(self):
        population = ClientPopulation.generate(5, seed=8)
        for spec, profile in zip(population, population.profiles()):
            assert profile.client_id == spec.client_id
            assert profile.speed_factor == spec.speed_factor
            assert profile.slack_us_per_record == spec.slack_us_per_record

    def test_getitem_unknown(self):
        population = ClientPopulation.generate(2, seed=1)
        with pytest.raises(KeyError):
            population["ghost"]
