"""A heterogeneous sensor fleet with per-client budget allocation.

The paper's introduction promises to "address the trade-off between client
cost and server savings by setting different budgets for different
clients".  This example runs three customer-data producers of very
different capabilities — a beefy gateway, a mid-range box, and a weak
battery-powered sensor with a hard slack cap — as an explicit
`ClientPopulation` behind the `CiaoSession` front door: the session plans
one global pushdown, the fleet allocator water-fills the aggregate budget
across the declared speed factors and slack caps, and every client ships
its budget-restricted plan prefix over a file-backed channel (the paper's
deployment) into one server.

Run:  python examples/sensor_fleet.py
"""

from repro.api import (
    Budget,
    CiaoSession,
    ClientPopulation,
    DeploymentConfig,
    FleetClientSpec,
)
from repro.workload import table3_workload

N_RECORDS = 12_000
AGGREGATE_BUDGET = Budget(20.0)  # µs/record, calibrated-machine units

#: Three producers; platforms are Table IV machines, capabilities declared.
FLEET = ClientPopulation([
    FleetClientSpec("gateway", platform="local", speed_factor=2.0,
                    share=1 / 3),
    FleetClientSpec("midbox", platform="alibaba", speed_factor=1.0,
                    share=1 / 3),
    FleetClientSpec("sensor", platform="pku", speed_factor=0.4,
                    slack_us_per_record=4.0, share=1 / 3),
])

CONFIG = DeploymentConfig(
    mode="fleet",
    population=FLEET,
    aggregate_budget=AGGREGATE_BUDGET,
    chunk_size=1000,
    channel="file",  # one file-spool per client, the paper's deployment
)


def main() -> None:
    workload = table3_workload("ycsb", "A", seed=99, n_queries=25)
    with CiaoSession(workload, source="ycsb", seed=99,
                     config=CONFIG) as session:
        # One global plan (generous budget); each client executes the
        # prefix its allocated budget affords, so predicate ids stay
        # globally consistent and mixed-depth chunks stay exact.
        session.plan(AGGREGATE_BUDGET.scaled(2.0))
        report = session.load(n_records=N_RECORDS).result()

        print(f"Aggregate budget {AGGREGATE_BUDGET} across "
              f"{len(FLEET)} clients:")
        for c in report.fleet.clients:
            print(
                f"  {c.client_id:<8} speed={c.speed_factor:<4} "
                f"→ budget {c.budget_us:6.2f} µs, pushed {c.n_pushed:>3} "
                f"predicates, spent {c.modeled_us_per_record:6.2f} µs/rec "
                f"(utilization {c.budget_utilization:.2f})"
            )
        print(
            f"\nServer loaded {report.loaded}/{report.received} records "
            f"(ratio {report.loading_ratio:.2f})"
        )

        covered = sum(
            1 for q in workload
            if session.query(q.sql("t")).plan_info.used_skipping
        )
        print(f"{covered}/{len(workload)} queries answered with skipping")


if __name__ == "__main__":
    main()
