"""Quickstart: the CIAO pipeline in ~60 lines.

Generates a synthetic Yelp-style review stream, optimizes a pushdown plan
for a small prospective workload under a 1 µs/record client budget, ships
annotated chunks from a simulated client, partially loads them on the
server, and runs the workload with bit-vector data skipping.

Run:  python examples/quickstart.py
"""

import tempfile

from repro import (
    Budget,
    CiaoOptimizer,
    CiaoServer,
    CostModel,
    DEFAULT_COEFFICIENTS,
    Query,
    SimulatedClient,
    Workload,
    clause,
    exact,
    key_value,
    substring,
)
from repro.data import make_generator
from repro.workload import estimate_selectivities


def main() -> None:
    generator = make_generator("yelp", seed=7)

    # 1. Prospective queries: what analysts are expected to ask.
    five_stars = clause(key_value("stars", 5))
    tasty = clause(substring("text", "tasty000"))
    power_user = clause(exact("user_id", "user_00000"))
    workload = Workload(
        (
            Query((five_stars, tasty), name="rave-reviews"),
            Query((five_stars, power_user), name="influencer-raves"),
            Query((tasty,), name="keyword-mentions"),
        ),
        dataset="yelp",
    )

    # 2. Optimize the pushdown plan under a client budget.
    sample = generator.sample(2000)
    selectivities = estimate_selectivities(
        workload.candidate_pool, sample
    )
    cost_model = CostModel(
        DEFAULT_COEFFICIENTS, generator.average_record_length()
    )
    optimizer = CiaoOptimizer(workload, selectivities, cost_model)
    plan = optimizer.plan(Budget(1.0))
    print("Pushdown plan:")
    print(plan.describe())

    # 3. Client annotates raw JSON without parsing; server partially loads.
    with tempfile.TemporaryDirectory() as workdir:
        server = CiaoServer(workdir, plan=plan, workload=workload)
        client = SimulatedClient("edge-0", plan=plan, chunk_size=1000)
        for chunk in client.process(generator.raw_lines(10_000)):
            server.ingest(chunk)
        summary = server.finalize_loading()
        print(
            f"\nLoaded {summary.loaded} of {summary.received} records "
            f"(ratio {summary.loading_ratio:.2f}); "
            f"{summary.sidelined} left as raw JSON."
        )
        print(
            f"Client spent {client.stats.modeled_us_per_record():.3f} µs "
            f"per record of its {plan.budget} budget."
        )

        # 4. Query with data skipping; answers are exact.
        print("\nQuery results:")
        for query in workload.queries:
            result = server.query(query.sql("t"))
            print(
                f"  {query.name:<18} count={result.scalar():<6} "
                f"rows examined={result.stats.rows_examined:<6} "
                f"(skipping={'on' if result.plan_info.used_skipping else 'off'})"
            )


if __name__ == "__main__":
    main()
