"""Unit tests for the from-scratch JSON tokenizer."""

import pytest

from repro.rawjson import JsonTokenError, TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)]


class TestPunctuation:
    def test_object_tokens(self):
        assert kinds('{"a": 1}') == [
            TokenType.LBRACE, TokenType.STRING, TokenType.COLON,
            TokenType.NUMBER, TokenType.RBRACE, TokenType.EOF,
        ]

    def test_array_tokens(self):
        assert kinds("[1, 2]") == [
            TokenType.LBRACKET, TokenType.NUMBER, TokenType.COMMA,
            TokenType.NUMBER, TokenType.RBRACKET, TokenType.EOF,
        ]

    def test_whitespace_is_skipped(self):
        assert kinds(" \t\r\n{ }\n") == [
            TokenType.LBRACE, TokenType.RBRACE, TokenType.EOF,
        ]


class TestLiterals:
    def test_true_false_null(self):
        tokens = tokenize("[true, false, null]")
        values = [t.value for t in tokens if t.type in (
            TokenType.TRUE, TokenType.FALSE, TokenType.NULL)]
        assert values == [True, False, None]

    def test_misspelled_literal_rejected(self):
        with pytest.raises(JsonTokenError):
            tokenize("tru")
        with pytest.raises(JsonTokenError):
            tokenize("nul")


class TestNumbers:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("0", 0),
            ("-0", 0),
            ("42", 42),
            ("-17", -17),
            ("3.5", 3.5),
            ("-0.25", -0.25),
            ("1e3", 1000.0),
            ("1E+2", 100.0),
            ("25e-1", 2.5),
            ("1.5e2", 150.0),
        ],
    )
    def test_valid_numbers(self, text, value):
        token = tokenize(text)[0]
        assert token.type is TokenType.NUMBER
        assert token.value == value
        assert isinstance(token.value, type(value))

    @pytest.mark.parametrize(
        "text", ["1.", ".5", "-", "1e", "1e+", "+1"]
    )
    def test_invalid_numbers(self, text):
        with pytest.raises(JsonTokenError):
            tokenize(text)

    def test_leading_zero_splits_into_two_tokens(self):
        tokens = tokenize("01")
        assert [t.type for t in tokens[:2]] == [
            TokenType.NUMBER, TokenType.NUMBER
        ]


class TestStrings:
    def test_plain_string(self):
        assert tokenize('"hello"')[0].value == "hello"

    def test_escapes(self):
        assert tokenize(r'"a\"b\\c\/d\be\ff\ng\rh\ti"')[0].value == (
            'a"b\\c/d\be\ff\ng\rh\ti'
        )

    def test_unicode_escape(self):
        assert tokenize(r'"é"')[0].value == "é"

    def test_surrogate_pair(self):
        assert tokenize(r'"😀"')[0].value == "😀"

    def test_lone_surrogate_replaced(self):
        assert tokenize(r'"\ud83d"')[0].value == "�"
        assert tokenize(r'"\ude00"')[0].value == "�"

    def test_unterminated_string(self):
        with pytest.raises(JsonTokenError):
            tokenize('"abc')

    def test_control_character_rejected(self):
        with pytest.raises(JsonTokenError):
            tokenize('"a\nb"')

    def test_bad_escape_rejected(self):
        with pytest.raises(JsonTokenError):
            tokenize(r'"\x41"')

    def test_truncated_unicode_escape(self):
        with pytest.raises(JsonTokenError):
            tokenize(r'"\u00"')


class TestPositions:
    def test_token_positions_point_at_start(self):
        tokens = tokenize('{"ab": 12}')
        string_token = tokens[1]
        number_token = tokens[3]
        assert string_token.position == 1
        assert number_token.position == 7

    def test_error_position_reported(self):
        with pytest.raises(JsonTokenError) as info:
            tokenize("{@}")
        assert info.value.position == 1


def test_unexpected_character():
    with pytest.raises(JsonTokenError):
        tokenize("#")
