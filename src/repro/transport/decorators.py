"""Composable channel decorators: loss and latency over any transport.

Each decorator adds one transport property while delegating storage to
the innermost real channel, so they compose over a memory queue, a file
spool, or a live TCP socket identically — seeded
:class:`LossyChannel` fault injection works against a real wire.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .base import Channel, ChannelDecorator


@dataclass
class LinkModel:
    """Optional virtual-time pricing of a link (extension over the paper).

    Attributes:
        bandwidth_mbps: Payload throughput in megabits per second.
        latency_us: Fixed per-message latency.
    """

    bandwidth_mbps: float = 1000.0
    latency_us: float = 50.0

    def transfer_time_us(self, payload_bytes: int) -> float:
        """Virtual µs to move one message across the link."""
        if payload_bytes < 0:
            raise ValueError("payload sizes are non-negative")
        bits = payload_bytes * 8
        return self.latency_us + bits / self.bandwidth_mbps


class LossyChannel(ChannelDecorator):
    """A lossy link under a reliable transport (flaky-network scenarios).

    Each send's first transmission is dropped with probability
    *drop_rate*; a dropped transmission is retransmitted until one gets
    through, exactly like a reliable protocol over a lossy link.  Drops
    therefore cost duplicate bytes and show up in
    ``stats.messages_dropped`` — they never lose data, which is what lets
    fleet scenarios assert zero record loss under drops (the no-loss
    invariant is the transport's job, not luck).

    Determinism: the drop sequence comes entirely from *seed* (explicit,
    no global RNG), so the same seed replays the same drops.
    """

    def __init__(self, inner: Channel, drop_rate: float, seed: int):
        super().__init__(inner)
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1), got {drop_rate!r}"
            )
        if seed is None:
            raise ValueError(
                "LossyChannel requires an explicit seed: drops must be "
                "replayable"
            )
        self.drop_rate = drop_rate
        self.seed = seed
        self._rng = random.Random(seed)

    def send(self, payload: bytes) -> None:
        while self._rng.random() < self.drop_rate:
            self.stats.record_drop(len(payload))
        self.stats.record_send(len(payload))
        self.inner.send(payload)


class LatencyChannel(ChannelDecorator):
    """Virtual-time pricing of every delivered message over a link.

    Accumulates :meth:`LinkModel.transfer_time_us` per sent message into
    :attr:`modeled_us` without sleeping — experiments report transport
    cost in calibrated virtual µs, the same axis the client cost model
    uses, while tests run at memory speed.
    """

    def __init__(self, inner: Channel, link: Optional[LinkModel] = None):
        super().__init__(inner)
        self.link = link or LinkModel()
        self.modeled_us = 0.0

    def send(self, payload: bytes) -> None:
        self.modeled_us += self.link.transfer_time_us(len(payload))
        super().send(payload)
