"""Coordinated fleet loading: many heterogeneous clients, one server.

Generates a seeded 8-client population from the Table IV hardware
profiles (Zipf-skewed data shares, a few slack-capped devices), allocates
an aggregate budget across it, and runs the whole fleet concurrently
against a sharded CIAO server with bounded backpressure and online
budget re-allocation.  A second run kills the fattest client mid-load to
show straggler reassignment: survivors absorb its partition and the
fleet still loses no records.

Run:  python examples/fleet_loading.py
"""

import tempfile
from pathlib import Path

from repro import (
    Budget,
    CiaoOptimizer,
    ClientPopulation,
    CostModel,
    DEFAULT_COEFFICIENTS,
    FleetCoordinator,
)
from repro.data import make_generator
from repro.server import CiaoServer
from repro.workload import estimate_selectivities, table3_workload

N_RECORDS = 12_000
N_CLIENTS = 8
SEED = 7
AGGREGATE_BUDGET = Budget(8.0)  # mean µs/record across the fleet


def run_fleet(workdir: Path, tag: str, population, lines, workload,
              plan):
    server = CiaoServer(
        workdir / tag, plan=plan, workload=workload,
        n_shards=2, shard_mode="thread",
    )
    coordinator = FleetCoordinator(
        server, population,
        global_plan=plan,
        aggregate_budget=AGGREGATE_BUDGET,
        chunk_size=500,
        realloc_interval=8,
    )
    report = coordinator.run(lines)
    return server, report


def main() -> None:
    generator = make_generator("yelp", seed=SEED)
    lines = list(generator.raw_lines(N_RECORDS))
    workload = table3_workload("yelp", "A", seed=SEED, n_queries=20)
    selectivities = estimate_selectivities(
        workload.candidate_pool, generator.sample(2000)
    )
    cost_model = CostModel(
        DEFAULT_COEFFICIENTS, generator.average_record_length()
    )
    plan = CiaoOptimizer(workload, selectivities, cost_model).plan(
        Budget(20.0)
    )
    population = ClientPopulation.generate(N_CLIENTS, seed=SEED)

    with tempfile.TemporaryDirectory() as workdir:
        workdir = Path(workdir)

        print(f"== healthy fleet: {N_CLIENTS} clients, "
              f"{N_RECORDS} records ==")
        server, report = run_fleet(
            workdir, "healthy", population, lines, workload, plan
        )
        print(report.describe())

        count = server.query("SELECT COUNT(*) FROM t").scalar()
        print(f"\nCOUNT(*) = {count} (all {N_RECORDS} records visible)")

        fat = max(population, key=lambda s: s.share).client_id
        print(f"\n== straggler fleet: {fat} dies after 1 chunk ==")
        _, kill_report = run_fleet(
            workdir, "straggler",
            population.with_kill(fat, after_chunks=1),
            lines, workload, plan,
        )
        print(kill_report.describe())
        print(
            f"\nkilled={kill_report.killed_clients} "
            f"reassigned {kill_report.reassigned_records} records in "
            f"{kill_report.reassignment_events} events; "
            f"no record loss: {kill_report.no_record_loss}"
        )


if __name__ == "__main__":
    main()
