"""Unit tests for the raw-JSON sideline store."""

import pytest

from repro.rawjson import dump_record
from repro.storage import JsonSideStore


@pytest.fixture()
def store(tmp_path):
    return JsonSideStore(tmp_path / "side.jsonl")


LINES = [dump_record({"i": i, "s": f"v{i}"}) for i in range(6)]


class TestAppendAndIterate:
    def test_append_counts(self, store):
        assert store.append(0, LINES[:4]) == 4
        assert store.append(1, LINES[4:]) == 2
        assert store.record_count == 6
        assert store.byte_size > 0

    def test_iter_raw_preserves_chunk_ids_and_order(self, store):
        store.append(3, LINES[:2])
        store.append(9, LINES[2:3])
        got = list(store.iter_raw())
        assert got == [(3, LINES[0]), (3, LINES[1]), (9, LINES[2])]

    def test_iter_parsed(self, store):
        store.append(0, LINES)
        parsed = list(store.iter_parsed())
        assert parsed[2] == {"i": 2, "s": "v2"}

    def test_multiline_records_rejected(self, store):
        with pytest.raises(ValueError):
            store.append(0, ['{"a":\n1}'])


class TestMalformedHandling:
    def test_malformed_lines_skipped_in_iteration(self, store):
        store.append(0, [LINES[0], "{broken", LINES[1]])
        assert len(list(store.iter_parsed())) == 2

    def test_scan_with_errors_counts(self, store):
        store.append(0, [LINES[0], "{broken", "[1]", LINES[1]])
        records, errors = store.scan_with_errors()
        assert len(records) == 2
        assert errors == 2  # malformed + non-object


class TestPersistence:
    def test_counts_recovered_on_reopen(self, tmp_path):
        path = tmp_path / "side.jsonl"
        store = JsonSideStore(path)
        store.append(0, LINES)
        reopened = JsonSideStore(path)
        assert reopened.record_count == 6
        assert list(reopened.iter_parsed()) == list(store.iter_parsed())

    def test_clear(self, store):
        store.append(0, LINES)
        store.clear()
        assert store.record_count == 0
        assert list(store.iter_raw()) == []
