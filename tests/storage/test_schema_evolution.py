"""Unit tests for schema widening and loader file rotation."""

import pytest

from repro.bitvec import BitVector
from repro.rawjson import JsonChunk, dump_record
from repro.server import ClientAssistedLoader
from repro.storage import (
    ColumnType,
    Field,
    JsonSideStore,
    ParquetLiteReader,
    Schema,
)
from repro.storage.schema import merge_schemas, schema_covers


def schema(**fields):
    return Schema([Field(n, t) for n, t in fields.items()])


class TestSchemaCovers:
    def test_identical_schemas_cover(self):
        a = schema(x=ColumnType.INT64)
        assert schema_covers(a, a)

    def test_missing_field_not_covered(self):
        assert not schema_covers(
            schema(x=ColumnType.INT64),
            schema(x=ColumnType.INT64, y=ColumnType.STRING),
        )

    def test_extra_fields_are_fine(self):
        assert schema_covers(
            schema(x=ColumnType.INT64, y=ColumnType.STRING),
            schema(x=ColumnType.INT64),
        )

    def test_float_covers_int(self):
        assert schema_covers(
            schema(x=ColumnType.FLOAT64), schema(x=ColumnType.INT64)
        )
        assert not schema_covers(
            schema(x=ColumnType.INT64), schema(x=ColumnType.FLOAT64)
        )

    def test_json_covers_everything(self):
        for t in ColumnType:
            assert schema_covers(schema(x=ColumnType.JSON), schema(x=t))

    def test_string_does_not_cover_int(self):
        assert not schema_covers(
            schema(x=ColumnType.STRING), schema(x=ColumnType.INT64)
        )


class TestMergeSchemas:
    def test_union_preserves_current_order(self):
        merged = merge_schemas(
            schema(a=ColumnType.INT64, b=ColumnType.STRING),
            schema(c=ColumnType.BOOL, a=ColumnType.INT64),
        )
        assert merged.names == ["a", "b", "c"]

    def test_numeric_promotion(self):
        merged = merge_schemas(
            schema(x=ColumnType.INT64), schema(x=ColumnType.FLOAT64)
        )
        assert merged.field("x").type is ColumnType.FLOAT64

    def test_conflict_falls_back_to_json(self):
        merged = merge_schemas(
            schema(x=ColumnType.STRING), schema(x=ColumnType.INT64)
        )
        assert merged.field("x").type is ColumnType.JSON

    def test_merged_covers_both(self):
        a = schema(x=ColumnType.INT64, y=ColumnType.STRING)
        b = schema(x=ColumnType.FLOAT64, z=ColumnType.BOOL)
        merged = merge_schemas(a, b)
        assert schema_covers(merged, a)
        assert schema_covers(merged, b)


class TestLoaderRotation:
    def make_chunk(self, records, chunk_id=0):
        chunk = JsonChunk(chunk_id, [dump_record(r) for r in records])
        chunk.attach(0, BitVector.ones(len(records)))
        return chunk

    def test_new_key_rotates_to_wider_file(self, tmp_path):
        loader = ClientAssistedLoader(
            tmp_path / "t.pql", JsonSideStore(tmp_path / "s.jsonl"),
            partial_loading=True,
        )
        loader.ingest(self.make_chunk([{"a": 1}], 0))
        loader.ingest(self.make_chunk([{"a": 2, "b": "new"}], 1))
        loader.finalize()
        assert len(loader.parquet_paths) == 2
        with ParquetLiteReader(loader.parquet_paths[1]) as reader:
            assert "b" in reader.schema

    def test_compatible_chunks_share_one_file(self, tmp_path):
        loader = ClientAssistedLoader(
            tmp_path / "t.pql", JsonSideStore(tmp_path / "s.jsonl"),
            partial_loading=True,
        )
        loader.ingest(self.make_chunk([{"a": 1, "b": "x"}], 0))
        loader.ingest(self.make_chunk([{"a": 2}], 1))  # subset is fine
        loader.finalize()
        assert len(loader.parquet_paths) == 1
        with ParquetLiteReader(loader.parquet_paths[0]) as reader:
            rows = reader.read_all()
        assert rows[1]["b"] is None

    def test_queries_span_rotated_files(self, tmp_path):
        from repro.server import CiaoServer

        server = CiaoServer(tmp_path)
        server.ingest(JsonChunk(0, [dump_record({"a": 1})]))
        server.ingest(JsonChunk(1, [dump_record({"a": 2, "b": "x"})]))
        assert server.query("SELECT COUNT(*) FROM t").scalar() == 2
        assert server.query(
            "SELECT COUNT(*) FROM t WHERE b = 'x'"
        ).scalar() == 1
        # Column absent from the first file reads as null there.
        assert server.query(
            "SELECT COUNT(*) FROM t WHERE b IS NULL"
        ).scalar() == 1

    def test_query_on_never_seen_column(self, tmp_path):
        from repro.server import CiaoServer

        server = CiaoServer(tmp_path)
        server.ingest(JsonChunk(0, [dump_record({"a": 1})]))
        assert server.query(
            "SELECT COUNT(*) FROM t WHERE ghost = 'x'"
        ).scalar() == 0
