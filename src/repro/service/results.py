"""Query results over the wire: encode, decode, canonical bytes.

A :class:`~repro.engine.executor.QueryResult` crosses the service wire
as one JSON document — rows, execution stats, planner info, and the
server-side wall time — and is reconstructed on the client into the same
dataclasses local execution returns, so remote callers read
``result.stats.rows_examined`` exactly like in-process ones.

:func:`canonical_result_bytes` is the identity yardstick: a rows-only,
key-sorted serialization that excludes execution accounting (wall time,
snapshot-cache hit counts), because two executions of the same query
over the same data legitimately differ in *how* they ran but must never
differ in *what* they answered.  The concurrent-serving benchmark
asserts remote results byte-identical to in-process ones through it.
"""

from __future__ import annotations

import json
from dataclasses import asdict

from ..engine.executor import QueryResult
from ..engine.operators import ExecutionStats
from ..engine.planner import PlanInfo

#: Format marker embedded in every encoded result document.
RESULT_FORMAT = "ciao-result/1"


class ResultFormatError(ValueError):
    """An encoded result payload this decoder cannot interpret."""


def result_to_payload(result: QueryResult) -> bytes:
    """Serialize one query result into a wire message body."""
    doc = {
        "format": RESULT_FORMAT,
        "rows": result.rows,
        "stats": asdict(result.stats),
        "plan_info": asdict(result.plan_info),
        "wall_seconds": result.wall_seconds,
    }
    return json.dumps(
        doc, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def result_from_payload(payload: bytes) -> QueryResult:
    """Reconstruct a :class:`QueryResult` from a wire message body."""
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ResultFormatError(
            f"result payload is not valid JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict) or doc.get("format") != RESULT_FORMAT:
        raise ResultFormatError(
            f"unsupported result format "
            f"{doc.get('format') if isinstance(doc, dict) else doc!r}; "
            f"expected {RESULT_FORMAT!r}"
        )
    try:
        stats = ExecutionStats(**doc["stats"])
        plan_info = PlanInfo(**doc["plan_info"])
        return QueryResult(
            rows=doc["rows"],
            stats=stats,
            plan_info=plan_info,
            wall_seconds=float(doc["wall_seconds"]),
        )
    except (KeyError, TypeError) as exc:
        raise ResultFormatError(
            f"result document is missing or misdeclares fields: {exc}"
        ) from exc


def canonical_result_bytes(result: QueryResult) -> bytes:
    """The answer-identity serialization of a result: rows only.

    Key-sorted and whitespace-free, so two results are byte-identical
    exactly when they answered with the same rows — execution accounting
    (wall time, cache hits, rows examined) is deliberately excluded.
    """
    return json.dumps(
        result.rows, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
