"""Incremental snapshot-scan cache: reuse partial aggregates across
mid-load snapshots.

Sealed Parquet parts are immutable (footer-written before they are ever
published), so during a streaming load the answer an aggregate query gets
from one part can never change — only the *set* of parts (and the
sideline watermark) grows between snapshots.  This module exploits that:
per-part partial aggregates are cached under ``(part identity, query
fingerprint)``, and a repeated mid-load aggregate query scans **only the
parts sealed since it last ran** plus the live sideline delta, then
merges cached and fresh partials.

Soundness does not depend on the plan: the residual WHERE filter runs
inside every per-part scan, so a cached partial is the *exact* aggregate
of the part's qualifying rows regardless of which predicates were pushed
down when it was computed (bit-vector skipping and zone maps only ever
skip non-qualifying rows).  The fingerprint therefore covers just the
query semantics — select items, WHERE text, GROUP BY — not the pushdown
state, and survives mid-load ``update_plan`` replans.

Determinism: parts are always folded in catalog part order (then the
sideline), exactly the order a cold ``ChainScan`` visits them, so merged
group ordering — and float accumulation per part — is identical whether
a partial came from the cache or a fresh scan.  A cold run through this
module (every part a miss) and a warm one are byte-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .operators import (
    Aggregate,
    ExecutionStats,
    Filter,
    Operator,
    ParquetScan,
    SidelineScan,
    SkippingScan,
    _AggState,
    accumulate_grouped,
    accumulate_simple,
    finalize_grouped,
    merge_states,
)
from .planner import plan_query, scan_columns_for, zone_prune_hook
from .sql import ParsedQuery

__all__ = ["SnapshotAggCache", "execute_snapshot_aggregate",
           "query_fingerprint"]


def query_fingerprint(parsed: ParsedQuery) -> str:
    """Canonical key for a query's aggregate semantics.

    LIMIT is excluded on purpose: aggregation consumes the whole input
    either way, so the limit is applied to the merged output and partials
    stay reusable across differently-limited renderings.
    """
    select = ",".join(
        f"{item.aggregate or ''}:{item.column}" for item in parsed.select
    )
    where = parsed.where.sql() if parsed.where is not None else ""
    group = ",".join(parsed.group_by)
    return f"{parsed.table}|{select}|{where}|{group}"


@dataclass
class _PartPartial:
    """One sealed part's contribution to one query fingerprint.

    ``simple`` for global aggregates; ``order``/``groups`` for GROUP BY.
    States are owned by the cache and must never be mutated by merges.
    """

    simple: Optional[List[_AggState]] = None
    order: List[tuple] = field(default_factory=list)
    groups: Dict[tuple, List[_AggState]] = field(default_factory=dict)


class SnapshotAggCache:
    """(part path, query fingerprint) → partial aggregate."""

    def __init__(self) -> None:
        self._partials: Dict[Tuple[str, str], _PartPartial] = {}
        #: Cumulative accounting across the cache's lifetime.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._partials)

    def get(self, part: str, fingerprint: str) -> Optional[_PartPartial]:
        return self._partials.get((part, fingerprint))

    def put(self, part: str, fingerprint: str,
            partial: _PartPartial) -> None:
        self._partials[(part, fingerprint)] = partial

    def clear(self) -> None:
        """Drop every cached partial (cold-scan baseline for benches)."""
        self._partials.clear()

    def retain_parts(self, parts: Iterable[str]) -> None:
        """Drop partials for parts no longer in the snapshot's part list
        (normally a no-op — sealed parts only accumulate — but it bounds
        memory if a snapshot provider replaces its part set)."""
        keep = set(parts)
        stale = [key for key in self._partials if key[0] not in keep]
        for key in stale:
            del self._partials[key]


# ----------------------------------------------------------------------
# Incremental execution
# ----------------------------------------------------------------------
def execute_snapshot_aggregate(parsed: ParsedQuery, table,
                               cache: SnapshotAggCache) -> "QueryResult":
    """Answer an aggregate query against a snapshot-mode table, scanning
    only parts whose partials are not yet cached (plus the sideline).

    The table must be in snapshot-scan mode and *parsed* must aggregate
    (``parsed.is_aggregate``); the executor routes accordingly.
    """
    from .executor import QueryResult  # deferred: executor imports us

    # plan_query validates the select shape and produces the same
    # PlanInfo a cold plan would carry; its operator tree is discarded in
    # favour of per-part sub-scans.
    _plan, info = plan_query(parsed, table)
    fingerprint = query_fingerprint(parsed)
    matched_ids = info.matched_predicate_ids
    scan_columns = scan_columns_for(parsed)
    prune = zone_prune_hook(parsed.where)

    agg_items = [i for i in parsed.select if i.aggregate is not None]
    grouped = bool(parsed.group_by)

    stats = ExecutionStats()
    start = time.perf_counter()
    partials: List[_PartPartial] = []
    for reader in table.open_readers():
        key = str(reader.path)
        partial = cache.get(key, fingerprint)
        if partial is None:
            scan: Operator = (
                SkippingScan(reader, matched_ids, columns=scan_columns,
                             prune=prune)
                if matched_ids
                else ParquetScan(reader, columns=scan_columns, prune=prune)
            )
            partial = _accumulate_partial(scan, parsed, agg_items,
                                          grouped, stats)
            cache.put(key, fingerprint, partial)
            cache.misses += 1
            info.snapshot_cache_misses += 1
        else:
            cache.hits += 1
            info.snapshot_cache_hits += 1
        partials.append(partial)

    # The sideline delta is never cached: its watermark moves with every
    # snapshot.  Pushdown-matched queries skip it entirely (a sidelined
    # record is invalid for the matched predicate).
    if not matched_ids and table.has_sideline:
        partials.append(
            _accumulate_partial(SidelineScan(table.scan_side_store),
                                parsed, agg_items, grouped, stats)
        )

    rows = _merge_partials(parsed, agg_items, grouped, partials)
    if parsed.limit is not None:
        rows = rows[:parsed.limit]
    elapsed = time.perf_counter() - start
    stats.rows_emitted = len(rows)
    info.description = (
        f"SnapshotAggCache(hits={info.snapshot_cache_hits}, "
        f"misses={info.snapshot_cache_misses}) <- {info.description}"
    )
    return QueryResult(rows=rows, stats=stats, plan_info=info,
                       wall_seconds=elapsed)


def _accumulate_partial(scan: Operator, parsed: ParsedQuery,
                        agg_items, grouped: bool,
                        stats: ExecutionStats) -> _PartPartial:
    plan: Operator = scan
    if parsed.where is not None:
        plan = Filter(plan, parsed.where)
    batches = plan.batches(stats)
    if grouped:
        order, groups = accumulate_grouped(parsed.group_by, agg_items,
                                           batches)
        return _PartPartial(order=order, groups=groups)
    return _PartPartial(simple=accumulate_simple(agg_items, batches))


def _merge_partials(parsed: ParsedQuery, agg_items, grouped: bool,
                    partials: List[_PartPartial]) -> List[Dict[str, Any]]:
    if grouped:
        order: List[tuple] = []
        groups: Dict[tuple, List[_AggState]] = {}
        for partial in partials:
            for key in partial.order:
                into = groups.get(key)
                if into is None:
                    into = [_AggState() for _ in agg_items]
                    groups[key] = into
                    order.append(key)
                for dst, src in zip(into, partial.groups[key]):
                    merge_states(dst, src)
        return finalize_grouped(parsed.select, list(parsed.group_by),
                                order, groups)
    merged = [_AggState() for _ in agg_items]
    for partial in partials:
        for dst, src in zip(merged, partial.simple):
            merge_states(dst, src)
    row: Dict[str, Any] = {}
    for item, state in zip(agg_items, merged):
        row[item.label] = Aggregate._finalize(item.aggregate, state)
    return [row]
