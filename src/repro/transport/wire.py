"""Typed service messages over a channel: the remote-session wire format.

Chunk frames (:mod:`repro.client.protocol`) carry data; this module
carries *conversation* — the handshake, plan shipping, ingest control,
and query traffic between a :class:`~repro.service.remote.RemoteSession`
and a :class:`~repro.service.service.CiaoService`.  One message is one
channel payload::

        [MAGIC "CIAW"] [u8 tag] [u32 header_len] [header JSON]
        [u32 body_len] [body bytes]

The header is small structured metadata (source ids, SQL text, error
strings) as UTF-8 JSON; the body is an opaque byte blob for the payloads
that already have their own serialization — batched chunk frames, a
:mod:`repro.core.plan_io` plan document, an encoded query result.  All
integers are little-endian, and every length is bounds-checked before
the slice so truncated or corrupt messages surface as :class:`WireError`
rather than silent misparses (same discipline as the chunk protocol).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: Service message magic ("CIAO wire"); chunk frames use ``CIA1``.
MAGIC = b"CIAW"

#: Conversation protocol version, checked in the HELLO/WELCOME handshake.
PROTOCOL_VERSION = 1

_U32_BYTES = 4
_HEADER_OFFSET = len(MAGIC) + 1  # magic + tag byte

#: Ceiling on the JSON header — headers are metadata, not payload.
MAX_HEADER_BYTES = 1 << 20

#: Message tags, in conversation order.
HELLO = 1          # client → server: {"client_id", "protocol"}
WELCOME = 2        # server → client: {"server", "mode", "protocol"}
GET_PLAN = 3       # client → server: {}
PLAN = 4           # server → client: {"present"}; body = plan_io text
OPEN_INGEST = 5    # client → server: {"source_id"}
CHUNKS = 6         # client → server: {"frames"}; body = chunk frames
INGEST_ACK = 7     # server → client: {"frames_accepted"}
END_INGEST = 8     # client → server: {"source_id"}
COMMIT = 9         # client → server: {}
COMMITTED = 10     # server → client: {"summary"}
QUERY = 11         # client → server: {"sql", "snapshot"}
RESULT = 12        # server → client: {"spans"?}; body = encoded result
ERROR = 13         # server → client: {"error"}
BUSY = 14          # server → client: {"error"} (admission saturated)
BYE = 15           # client → server: {}
STATS = 16         # both ways: request {}, reply {}; body = stats JSON
RESUME = 17        # client → server: {"source_id"}; reply RESUME:
                   # {"source_id", "last_seq", "finalized"?}
PING = 18          # client → server: {} (liveness probe)
PONG = 19          # server → client: {}

_TAG_NAMES = {
    HELLO: "HELLO", WELCOME: "WELCOME", GET_PLAN: "GET_PLAN",
    PLAN: "PLAN", OPEN_INGEST: "OPEN_INGEST", CHUNKS: "CHUNKS",
    INGEST_ACK: "INGEST_ACK", END_INGEST: "END_INGEST",
    COMMIT: "COMMIT", COMMITTED: "COMMITTED", QUERY: "QUERY",
    RESULT: "RESULT", ERROR: "ERROR", BUSY: "BUSY", BYE: "BYE",
    STATS: "STATS", RESUME: "RESUME", PING: "PING", PONG: "PONG",
}

#: Header field carrying trace context.  Headers are read with ``.get``
#: on both ends, so an old peer simply ignores the field — trace
#: propagation is backward/forward compatible by construction.
TRACE_FIELD = "trace"

#: Header field carrying a CRC-32 of the message body.  Same tolerant
#: ``.get`` discipline as :data:`TRACE_FIELD`: an absent field means
#: "unchecked", so old peers interoperate unchanged.
CRC_FIELD = "crc"


class WireError(ValueError):
    """A malformed, truncated, or unknown service message."""


def attach_trace(header: Dict[str, Any], trace_id: str,
                 parent_id: str) -> Dict[str, Any]:
    """Add trace context to a message header (mutates and returns it).

    The receiving side re-roots its spans under this context so one
    trace id covers both halves of a remote query.
    """
    header[TRACE_FIELD] = {"trace_id": trace_id, "parent_id": parent_id}
    return header


def extract_trace(header: Dict[str, Any]) -> Tuple[str, str] | None:
    """The ``(trace_id, parent_id)`` in *header*, if well-formed.

    Tolerant by design: an absent field (old client), a non-dict value,
    or missing ids all return ``None`` rather than raising, so trace
    context can never break message handling.
    """
    value = header.get(TRACE_FIELD)
    if not isinstance(value, dict):
        return None
    trace_id = value.get("trace_id")
    parent_id = value.get("parent_id")
    if not isinstance(trace_id, str) or not isinstance(parent_id, str):
        return None
    if not trace_id or not parent_id:
        return None
    return trace_id, parent_id


def attach_crc(header: Dict[str, Any], body: bytes) -> Dict[str, Any]:
    """Stamp *header* with a CRC-32 of *body* (mutates and returns it).

    The wire codec already rejects truncated *messages*; the CRC closes
    the remaining gap — a body whose bytes were flipped in flight but
    whose framing survived.  Ingest payloads are the case that matters:
    a corrupted chunk frame must bounce back to the sender as a
    retryable error, never reach a shard worker.
    """
    header[CRC_FIELD] = zlib.crc32(bytes(body)) & 0xFFFFFFFF
    return header


def verify_crc(header: Dict[str, Any], body: bytes) -> bool:
    """True iff *header* carries no CRC or the CRC matches *body*.

    Tolerant like :func:`extract_trace`: a missing or non-integer field
    passes (old peers never stamp one), only a present-and-mismatched
    CRC fails.
    """
    value = header.get(CRC_FIELD)
    if not isinstance(value, int) or isinstance(value, bool):
        return True
    return (zlib.crc32(bytes(body)) & 0xFFFFFFFF) == (value & 0xFFFFFFFF)


def tag_name(tag: int) -> str:
    """Human-readable name of a message tag (for errors and logs)."""
    return _TAG_NAMES.get(tag, f"tag#{tag}")


@dataclass
class Message:
    """One decoded service message."""

    tag: int
    header: Dict[str, Any] = field(default_factory=dict)
    body: bytes = b""

    @property
    def name(self) -> str:
        """The tag's symbolic name."""
        return tag_name(self.tag)


def encode_message(tag: int, header: Dict[str, Any] = None,
                   body: bytes = b"") -> bytes:
    """Serialize one service message into a channel payload."""
    if tag not in _TAG_NAMES:
        raise WireError(f"unknown message tag {tag}")
    header_bytes = json.dumps(
        header or {}, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise WireError(
            f"{tag_name(tag)} header of {len(header_bytes)} bytes "
            f"exceeds the {MAX_HEADER_BYTES}-byte ceiling"
        )
    if not isinstance(body, (bytes, bytearray, memoryview)):
        raise WireError("message bodies are bytes")
    body = bytes(body)
    return b"".join((
        MAGIC,
        bytes((tag,)),
        len(header_bytes).to_bytes(_U32_BYTES, "little"),
        header_bytes,
        len(body).to_bytes(_U32_BYTES, "little"),
        body,
    ))


def _read_u32(buf: bytes, offset: int) -> Tuple[int, int]:
    """Bounds-checked little-endian u32 read; returns (value, new offset)."""
    end = offset + _U32_BYTES
    if end > len(buf):
        raise WireError(
            f"truncated message: u32 at offset {offset} needs {end} "
            f"bytes, have {len(buf)}"
        )
    return int.from_bytes(buf[offset:end], "little"), end


def _take(buf: bytes, offset: int, length: int) -> Tuple[bytes, int]:
    """Bounds-checked slice of *length* bytes; returns (bytes, new offset)."""
    end = offset + length
    if end > len(buf):
        raise WireError(
            f"truncated message: field at offset {offset} declares "
            f"{length} bytes, have {len(buf) - offset}"
        )
    return buf[offset:end], end


def decode_message(payload: bytes) -> Message:
    """Parse one channel payload back into a :class:`Message`.

    Strict: bad magic, unknown tags, truncation anywhere, undecodable
    header JSON, and trailing garbage all raise :class:`WireError`.
    """
    if len(payload) < _HEADER_OFFSET:
        raise WireError(
            f"message of {len(payload)} bytes is shorter than the "
            f"{_HEADER_OFFSET}-byte preamble"
        )
    if payload[:len(MAGIC)] != MAGIC:
        raise WireError(
            f"bad message magic {bytes(payload[:len(MAGIC)])!r}; "
            f"expected {MAGIC!r}"
        )
    tag = payload[len(MAGIC)]
    if tag not in _TAG_NAMES:
        raise WireError(f"unknown message tag {tag}")
    header_len, offset = _read_u32(payload, _HEADER_OFFSET)
    if header_len > MAX_HEADER_BYTES:
        raise WireError(
            f"{tag_name(tag)} header declares {header_len} bytes; "
            f"ceiling is {MAX_HEADER_BYTES}"
        )
    header_bytes, offset = _take(payload, offset, header_len)
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(
            f"{tag_name(tag)} header is not valid JSON: {exc}"
        ) from exc
    if not isinstance(header, dict):
        raise WireError(
            f"{tag_name(tag)} header must be a JSON object, got "
            f"{type(header).__name__}"
        )
    body_len, offset = _read_u32(payload, offset)
    body, offset = _take(payload, offset, body_len)
    if offset != len(payload):
        raise WireError(
            f"{tag_name(tag)} message has {len(payload) - offset} "
            f"trailing bytes"
        )
    return Message(tag=tag, header=header, body=bytes(body))
