"""CIAO: an optimization framework for client-assisted data loading.

A from-scratch Python reproduction of Ding et al., ICDE 2021
(arXiv:2102.11793).  Clients evaluate pushed-down string predicates on raw
JSON without parsing it, ship per-predicate bit-vectors with each chunk,
and the server uses them for partial loading and query-time data skipping.
Which predicates to push is a budgeted submodular maximization solved with
the paper's paired greedy algorithms.

Quickstart — the :mod:`repro.api` front door runs the whole pipeline
(sampling, selectivity estimation, cost model, optimizer, client, server)
in three calls::

    from repro.api import Budget, CiaoSession, Query, Workload, clause, key_value

    workload = Workload((Query((clause(key_value("stars", 5)),)),), dataset="yelp")
    with CiaoSession(workload, source="yelp", seed=7) as session:
        session.plan(Budget(1.0))
        report = session.load(n_records=10_000).result()
        count = session.query("SELECT COUNT(*) FROM t").scalar()

Swap the session's :class:`~repro.api.DeploymentConfig` to go sharded
(``mode="sharded"`` — query *while* loading via
``job.snapshot_query(...)``) or to a coordinated heterogeneous fleet
(``mode="fleet"`` — per-client budgets, backpressure, straggler
reassignment, declarative — optionally lossy — channels).  To serve a
session over a real socket to concurrent remote clients, wrap it in a
:class:`~repro.service.CiaoService` and dial in with
:class:`~repro.service.RemoteSession` (see :mod:`repro.service`).

The low-level layer the session composes (``CiaoOptimizer``,
``CiaoServer``, ``SimulatedClient``, ``FleetCoordinator``, channels)
stays public below it — see ROADMAP.md — and is what this package
re-exports alongside the facade.  See README.md for the architecture
overview and EXPERIMENTS.md for the paper-versus-measured record of every
table and figure.
"""

from .api import (
    AsyncSession,
    CiaoSession,
    DataSource,
    DeploymentConfig,
    LoadJob,
    LoadProgress,
    LoadReport,
    as_source,
)
from .core import (
    APPROXIMATION_GUARANTEE,
    Budget,
    CiaoOptimizer,
    Clause,
    ClientProfile,
    CostCoefficients,
    CostModel,
    DEFAULT_COEFFICIENTS,
    PredicateKind,
    PushdownEntry,
    PushdownPlan,
    Query,
    SelectionObjective,
    SelectionResult,
    SimplePredicate,
    UnsupportedPredicateError,
    Workload,
    allocate_budgets,
    clause,
    exact,
    key_present,
    key_value,
    prefix,
    select_predicates,
    substring,
    suffix,
)
from .client import ClientEvaluator, SimulatedClient
from .fleet import (
    ClientPopulation,
    ClientRunReport,
    FleetClientSpec,
    FleetCoordinator,
    FleetReport,
)
from .obs import Metrics, QueryLog, Tracer
from .server import (
    CiaoServer,
    ClientAssistedLoader,
    EagerLoader,
    IngestSession,
    LoadSummary,
    ServerConfig,
)
from .service import CiaoService, RemoteSession
from .transport import (
    Channel,
    ChannelSpec,
    FileChannel,
    LatencyChannel,
    LinkModel,
    LossyChannel,
    MemoryChannel,
    SocketChannel,
    SocketListener,
    make_channel,
)

__version__ = "1.2.0"

__all__ = [
    "APPROXIMATION_GUARANTEE",
    "AsyncSession",
    "Budget",
    "Channel",
    "ChannelSpec",
    "CiaoOptimizer",
    "CiaoServer",
    "CiaoService",
    "CiaoSession",
    "Clause",
    "ClientAssistedLoader",
    "ClientEvaluator",
    "ClientPopulation",
    "ClientProfile",
    "ClientRunReport",
    "CostCoefficients",
    "CostModel",
    "DEFAULT_COEFFICIENTS",
    "DataSource",
    "DeploymentConfig",
    "EagerLoader",
    "FileChannel",
    "FleetClientSpec",
    "FleetCoordinator",
    "FleetReport",
    "IngestSession",
    "LatencyChannel",
    "LinkModel",
    "LoadJob",
    "LoadProgress",
    "LoadReport",
    "LoadSummary",
    "LossyChannel",
    "MemoryChannel",
    "Metrics",
    "PredicateKind",
    "PushdownEntry",
    "PushdownPlan",
    "Query",
    "QueryLog",
    "RemoteSession",
    "SelectionObjective",
    "SelectionResult",
    "ServerConfig",
    "SimplePredicate",
    "SimulatedClient",
    "SocketChannel",
    "SocketListener",
    "Tracer",
    "UnsupportedPredicateError",
    "Workload",
    "__version__",
    "allocate_budgets",
    "as_source",
    "clause",
    "exact",
    "key_present",
    "key_value",
    "make_channel",
    "prefix",
    "select_predicates",
    "substring",
    "suffix",
]
