"""Fixture: api-hygiene violations (API002-API006)."""

from .helpers import thing


def fetch(into={}):
    try:
        return into["k"]
    except Exception:
        return None


__all__ = ["zeta", "thing", "zeta"]
