"""Unit tests for the chunk wire protocol."""

import pytest

from repro.bitvec import BitVector
from repro.client import (
    ProtocolError,
    bitvector_overhead,
    decode_chunk,
    encode_chunk,
)
from repro.rawjson import JsonChunk, dump_record


def sample_chunk(n=10, with_vectors=True):
    records = [dump_record({"i": i, "text": f"record {i}"})
               for i in range(n)]
    chunk = JsonChunk(chunk_id=3, records=records)
    if with_vectors:
        chunk.attach(0, BitVector.from_bits([i % 2 == 0 for i in range(n)]))
        chunk.attach(2, BitVector.from_indices(n, [1]))
    return chunk


class TestRoundtrip:
    def test_full_roundtrip(self):
        chunk = sample_chunk()
        decoded = decode_chunk(encode_chunk(chunk))
        assert decoded.chunk_id == chunk.chunk_id
        assert decoded.records == chunk.records
        assert decoded.bitvectors == chunk.bitvectors

    def test_chunk_without_vectors(self):
        chunk = sample_chunk(with_vectors=False)
        decoded = decode_chunk(encode_chunk(chunk))
        assert decoded.bitvectors == {}
        assert decoded.records == chunk.records

    def test_empty_chunk(self):
        chunk = JsonChunk(chunk_id=0, records=[])
        decoded = decode_chunk(encode_chunk(chunk))
        assert decoded.records == []

    def test_sparse_vector_roundtrips_via_rle(self):
        # A 1-in-5000 vector ships as RLE; decoding must restore it.
        chunk = JsonChunk(
            chunk_id=1,
            records=[dump_record({"i": i}) for i in range(5000)],
        )
        chunk.attach(0, BitVector.from_indices(5000, [4321]))
        decoded = decode_chunk(encode_chunk(chunk))
        assert list(decoded.bitvectors[0].iter_set()) == [4321]


class TestValidation:
    def test_bad_magic(self):
        payload = encode_chunk(sample_chunk())
        with pytest.raises(ProtocolError):
            decode_chunk(b"XXXX" + payload[4:])

    def test_truncated_payload(self):
        payload = encode_chunk(sample_chunk())
        with pytest.raises((ProtocolError, ValueError)):
            decode_chunk(payload[: len(payload) // 2])

    def test_trailing_garbage(self):
        payload = encode_chunk(sample_chunk())
        with pytest.raises(ProtocolError):
            decode_chunk(payload + b"zz")


class TestOverhead:
    def test_bitvector_overhead_is_small(self):
        chunk = sample_chunk(n=1000)
        record_bytes, vector_bytes = bitvector_overhead(chunk)
        # Two bit-vectors over 1000 records: ≤ ~260 bytes vs ~20 KB of
        # records — well under 2%.
        assert vector_bytes < record_bytes * 0.02

    def test_overhead_zero_without_vectors(self):
        chunk = sample_chunk(with_vectors=False)
        _, vector_bytes = bitvector_overhead(chunk)
        assert vector_bytes == 0


class TestFrameBatching:
    """encode_frame_batch / split_frames: self-delimiting frame batches."""

    def payloads(self, n=4):
        return [encode_chunk(sample_chunk(n=3 + i)) for i in range(n)]

    def test_split_inverts_batch(self):
        from repro.client import encode_frame_batch, split_frames

        payloads = self.payloads()
        batch = encode_frame_batch(payloads)
        assert [bytes(f) for f in split_frames(batch)] == payloads

    def test_batch_accepts_chunks_and_bytes(self):
        from repro.client import encode_frame_batch, split_frames

        chunk = sample_chunk()
        batch = encode_frame_batch([chunk, encode_chunk(chunk)])
        frames = list(split_frames(batch))
        assert len(frames) == 2
        assert bytes(frames[0]) == bytes(frames[1])

    def test_batch_rejects_other_types(self):
        from repro.client import encode_frame_batch

        with pytest.raises(TypeError):
            encode_frame_batch([42])

    def test_single_frame_yields_itself(self):
        from repro.client import split_frames

        payload = encode_chunk(sample_chunk())
        assert [bytes(f) for f in split_frames(payload)] == [payload]

    def test_split_does_not_decode_records(self):
        # split_frames must bound-check structure but not parse records:
        # a frame whose records are not valid JSON still splits fine.
        from repro.client import encode_frame_batch, split_frames

        broken = JsonChunk(chunk_id=1, records=["{not json", "also not"])
        batch = encode_frame_batch([broken, sample_chunk()])
        assert len(list(split_frames(batch))) == 2

    def test_split_raises_on_truncation(self):
        from repro.client import encode_frame_batch, split_frames

        batch = encode_frame_batch(self.payloads(2))
        with pytest.raises(ProtocolError):
            list(split_frames(batch[:-3]))

    def test_split_raises_on_bad_magic(self):
        from repro.client import split_frames

        payload = encode_chunk(sample_chunk())
        with pytest.raises(ProtocolError):
            list(split_frames(payload + b"JUNK" + payload))

    def test_stream_decode_matches_split_then_decode(self):
        from repro.client import (
            decode_chunk_stream,
            encode_frame_batch,
            split_frames,
        )

        payloads = self.payloads(3)
        batch = encode_frame_batch(payloads)
        streamed = [c.records for c in decode_chunk_stream(batch)]
        split = [decode_chunk(f).records for f in split_frames(batch)]
        assert streamed == split
