"""Tests for the sharded ingest pipeline (serial-equivalence above all)."""

import pytest

from repro.bitvec import BitVector
from repro.client import SimulatedClient, encode_chunk
from repro.core import (
    Budget,
    CiaoOptimizer,
    CostModel,
    DEFAULT_COEFFICIENTS,
)
from repro.data import make_generator
from repro.rawjson import JsonChunk, dump_record
from repro.server import (
    CiaoServer,
    IngestPipelineError,
    ShardedIngestPipeline,
)
from repro.simulate.network import MemoryChannel
from repro.storage import JsonSideStore
from repro.workload import estimate_selectivities, table3_workload

SEED = 777


@pytest.fixture(scope="module")
def workload_setup():
    generator = make_generator("winlog", SEED)
    lines = list(generator.raw_lines(900))
    workload = table3_workload("winlog", "A", seed=SEED, n_queries=10)
    sels = estimate_selectivities(
        workload.candidate_pool, generator.sample(600)
    )
    model = CostModel(DEFAULT_COEFFICIENTS, 160)
    plan = CiaoOptimizer(workload, sels, model).plan(Budget(6.0))
    client = SimulatedClient("c", plan=plan, chunk_size=150)
    payloads = [encode_chunk(c) for c in client.process(lines)]
    return plan, workload, payloads


def run_server(tmp_path, plan, workload, payloads, n_shards, mode="thread"):
    server = CiaoServer(
        tmp_path, plan=plan, workload=workload,
        n_shards=n_shards, shard_mode=mode,
    )
    for payload in payloads:
        server.ingest(payload)
    summary = server.finalize_loading()
    results = [server.query(q.sql("t")).scalar() for q in workload.queries]
    return server, summary, results


class TestShardEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_query_results_identical_to_serial(self, tmp_path,
                                               workload_setup, n_shards):
        plan, workload, payloads = workload_setup
        _, serial_summary, serial_results = run_server(
            tmp_path / "serial", plan, workload, payloads, n_shards=1
        )
        _, summary, results = run_server(
            tmp_path / f"shards{n_shards}", plan, workload, payloads,
            n_shards=n_shards,
        )
        assert results == serial_results
        assert summary.received == serial_summary.received
        assert summary.loaded == serial_summary.loaded
        assert summary.sidelined == serial_summary.sidelined
        assert summary.malformed == serial_summary.malformed

    def test_merged_reports_in_submission_order(self, tmp_path,
                                                workload_setup):
        plan, workload, payloads = workload_setup
        server, summary, _ = run_server(
            tmp_path, plan, workload, payloads, n_shards=3
        )
        assert [r.chunk_id for r in summary.reports] == [
            r.chunk_id for r in
            run_server(tmp_path / "s", plan, workload, payloads, 1)[1].reports
        ]

    def test_sideline_contents_match_serial(self, tmp_path, workload_setup):
        plan, workload, payloads = workload_setup
        serial_server, _, _ = run_server(
            tmp_path / "serial", plan, workload, payloads, n_shards=1
        )
        sharded_server, _, _ = run_server(
            tmp_path / "sharded", plan, workload, payloads, n_shards=4
        )
        serial_lines = sorted(serial_server.table.side_store.iter_raw())
        sharded_lines = sorted(sharded_server.table.side_store.iter_raw())
        assert sharded_lines == serial_lines

    def test_process_mode_matches_serial(self, tmp_path, workload_setup):
        plan, workload, payloads = workload_setup
        _, serial_summary, serial_results = run_server(
            tmp_path / "serial", plan, workload, payloads, n_shards=1
        )
        _, summary, results = run_server(
            tmp_path / "proc", plan, workload, payloads,
            n_shards=2, mode="process",
        )
        assert results == serial_results
        assert summary.loaded == serial_summary.loaded

    def test_shard_sideline_files_cleaned_up(self, tmp_path, workload_setup):
        plan, workload, payloads = workload_setup
        run_server(tmp_path, plan, workload, payloads, n_shards=4)
        leftovers = list(tmp_path.glob("*.sideline.shard*"))
        assert leftovers == []


class TestPipelineBehavior:
    def simple_chunks(self, n_chunks=6, n_records=20):
        chunks = []
        for cid in range(n_chunks):
            records = [
                dump_record({"i": cid * n_records + i, "k": f"v{i}"})
                for i in range(n_records)
            ]
            chunk = JsonChunk(cid, records)
            chunk.attach(
                0, BitVector.from_bits([i % 2 == 0 for i in range(n_records)])
            )
            chunks.append(chunk)
        return chunks

    def make_pipeline(self, tmp_path, n_shards=2, mode="thread", **kwargs):
        side = JsonSideStore(tmp_path / "t.sideline.jsonl")
        return ShardedIngestPipeline(
            tmp_path / "t.pql", side, n_shards=n_shards,
            partial_loading=True, mode=mode, **kwargs
        ), side

    def test_accepts_decoded_and_encoded_payloads(self, tmp_path):
        pipeline, _ = self.make_pipeline(tmp_path)
        chunks = self.simple_chunks()
        for i, chunk in enumerate(chunks):
            pipeline.submit(encode_chunk(chunk) if i % 2 else chunk)
        summary = pipeline.finalize()
        assert summary.chunks == len(chunks)
        assert summary.received == 120
        assert summary.loaded == 60
        assert summary.sidelined == 60

    def test_round_robin_assignment_is_deterministic(self, tmp_path):
        # Round-robin dispatch (with streaming seals off) still promises
        # reproducible shard files; work-stealing trades that for load
        # balance, so the layout contract is opt-in now.
        pipeline, _ = self.make_pipeline(
            tmp_path, n_shards=2, dispatch="round-robin", seal_interval=None
        )
        for chunk in self.simple_chunks(n_chunks=4):
            pipeline.submit(chunk)
        pipeline.finalize()
        names = [p.name for p in pipeline.parquet_paths]
        assert names == ["t.shard0.part0.pql", "t.shard1.part0.pql"]

    def test_work_stealing_covers_every_chunk_once(self, tmp_path):
        pipeline, _ = self.make_pipeline(tmp_path, n_shards=2)
        chunks = self.simple_chunks(n_chunks=8)
        for chunk in chunks:
            pipeline.submit(chunk)
        summary = pipeline.finalize()
        assert sorted(r.chunk_id for r in summary.reports) == [
            c.chunk_id for c in chunks
        ]
        assert summary.received == sum(len(c.records) for c in chunks)

    def test_invalid_dispatch_and_seal_interval(self, tmp_path):
        side = JsonSideStore(tmp_path / "s.jsonl")
        with pytest.raises(ValueError, match="dispatch"):
            ShardedIngestPipeline(tmp_path / "t.pql", side, n_shards=2,
                                  partial_loading=True, mode="thread",
                                  dispatch="lottery")
        with pytest.raises(ValueError, match="seal_interval"):
            ShardedIngestPipeline(tmp_path / "t.pql", side, n_shards=2,
                                  partial_loading=True, mode="thread",
                                  seal_interval=0)

    def test_drain_channel(self, tmp_path):
        pipeline, _ = self.make_pipeline(tmp_path)
        channel = MemoryChannel()
        for chunk in self.simple_chunks(n_chunks=3):
            channel.send(encode_chunk(chunk))
        assert pipeline.drain_channel(channel) == 3
        assert pipeline.finalize().chunks == 3

    def test_submit_after_finalize_rejected(self, tmp_path):
        pipeline, _ = self.make_pipeline(tmp_path)
        pipeline.submit(self.simple_chunks(n_chunks=1)[0])
        pipeline.finalize()
        with pytest.raises(RuntimeError):
            pipeline.submit(self.simple_chunks(n_chunks=1)[0])

    def test_finalize_idempotent(self, tmp_path):
        pipeline, _ = self.make_pipeline(tmp_path)
        for chunk in self.simple_chunks(n_chunks=2):
            pipeline.submit(chunk)
        first = pipeline.finalize()
        second = pipeline.finalize()
        assert first is second

    def test_corrupt_payload_surfaces_at_finalize(self, tmp_path):
        pipeline, _ = self.make_pipeline(tmp_path)
        good = self.simple_chunks(n_chunks=2)
        pipeline.submit(good[0])
        pipeline.submit(b"CIA1 this is not a chunk")
        pipeline.submit(good[1])
        with pytest.raises(IngestPipelineError, match="shard"):
            pipeline.finalize()
        # And stays failed on repeat finalize.
        with pytest.raises(IngestPipelineError):
            pipeline.finalize()

    def test_shard_error_surfaces_in_snapshot_fast(self, tmp_path):
        # A corrupt payload must fail snapshot()/quiesce() promptly with
        # the real cause, not burn the quiesce timeout.
        import time as time_module

        pipeline, _ = self.make_pipeline(tmp_path)
        pipeline.submit(self.simple_chunks(n_chunks=1)[0])
        pipeline.submit(b"CIA1 this is not a chunk")
        start = time_module.monotonic()
        with pytest.raises(IngestPipelineError, match="failed on chunk"):
            pipeline.quiesce(timeout=30)
        assert time_module.monotonic() - start < 10
        with pytest.raises(IngestPipelineError):
            pipeline.finalize()

    def test_malformed_records_quarantined_across_shards(self, tmp_path):
        pipeline, side = self.make_pipeline(tmp_path, n_shards=2)
        records = [dump_record({"i": 0}), "{broken", dump_record({"i": 2})]
        for cid in range(2):
            chunk = JsonChunk(cid, list(records))
            chunk.attach(0, BitVector.from_bits([1, 1, 0]))
            pipeline.submit(chunk)
        summary = pipeline.finalize()
        assert summary.received == 6
        assert summary.loaded == 2
        assert summary.sidelined == 2
        assert summary.malformed == 2
        assert side.record_count == 4  # sidelined + malformed, both shards

    def test_shard_init_failure_does_not_deadlock(self, tmp_path,
                                                  monkeypatch):
        # If a shard loader fails to construct, the worker must still
        # drain its (bounded) queue or submit() blocks forever.
        from repro.server import pipeline as pipeline_module

        class ExplodingLoader:
            def __init__(self, *args, **kwargs):
                raise OSError("disk on fire")

        monkeypatch.setattr(
            pipeline_module, "ClientAssistedLoader", ExplodingLoader
        )
        side = JsonSideStore(tmp_path / "t.sideline.jsonl")
        pipeline = ShardedIngestPipeline(
            tmp_path / "t.pql", side, n_shards=1, partial_loading=True,
            mode="thread", queue_depth=2,
        )
        # Far more submissions than the queue depth: only passes if the
        # failed worker keeps consuming.
        for chunk in self.simple_chunks(n_chunks=10):
            pipeline.submit(chunk)
        with pytest.raises(IngestPipelineError, match="failed to init"):
            pipeline.finalize()

    def test_killed_worker_does_not_hang_finalize(self, tmp_path):
        pipeline, _ = self.make_pipeline(tmp_path, n_shards=2,
                                         mode="process")
        pipeline.submit(self.simple_chunks(n_chunks=1)[0])
        pipeline._workers[1].terminate()
        pipeline._workers[1].join()
        with pytest.raises(IngestPipelineError,
                           match="terminated without reporting"):
            pipeline.finalize()

    def test_invalid_construction(self, tmp_path):
        side = JsonSideStore(tmp_path / "s.jsonl")
        with pytest.raises(ValueError):
            ShardedIngestPipeline(tmp_path / "t.pql", side, n_shards=0,
                                  partial_loading=True)
        with pytest.raises(ValueError):
            ShardedIngestPipeline(tmp_path / "t.pql", side, n_shards=2,
                                  partial_loading=True, mode="coroutine")
