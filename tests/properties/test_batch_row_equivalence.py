"""Property: the batch engine ≡ the row-at-a-time interpreter, always.

Random records (nulls, bools, ragged keys), random row-group splits,
optional predicate bit-vectors with injected false positives, and a pool
of query shapes covering ParquetScan / SkippingScan / aggregates /
GROUP BY / LIKE / LIMIT.  For every draw:

* ``run_plan`` (batch) and ``run_plan_rows`` (row oracle) return
  identical rows — values **and** ordering;
* the stats invariants agree (identical counters without LIMIT; the
  row path never examines more than the batch path under LIMIT);
* snapshot-cache answers equal a cold scan of the same snapshot.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitvec import BitVector
from repro.core.predicates import Clause, exact, key_value
from repro.engine import (
    Catalog,
    Executor,
    TableEntry,
    parse_sql,
    plan_query,
    run_plan,
)
from repro.engine.rowpath import run_plan_rows
from repro.storage import ParquetLiteWriter, infer_schema

NAMES = ["Ann", "Bob", "Cat", ""]
TEXTS = ["kw", "has kw inside", "plain", ""]

#: Pushed-down clauses available to SkippingScan draws: predicate 0
#: matches ``name = 'Ann'``, predicate 1 matches ``age = 2``.
PUSHDOWN = {
    Clause((exact("name", "Ann"),)): 0,
    Clause((key_value("age", 2),)): 1,
}

QUERY_POOL = [
    "SELECT * FROM t",
    "SELECT * FROM t WHERE name = 'Ann'",
    "SELECT * FROM t WHERE age = 2",
    "SELECT * FROM t WHERE name = 'Ann' AND age = 2",
    "SELECT COUNT(*) FROM t WHERE name = 'Ann'",
    "SELECT COUNT(*) FROM t WHERE age > 1 AND age <= 3",
    "SELECT COUNT(*), SUM(age), MIN(age), MAX(age), AVG(age) FROM t "
    "WHERE text LIKE '%kw%'",
    "SELECT COUNT(*) FROM t WHERE text LIKE 'has%'",
    "SELECT COUNT(*) FROM t WHERE email IS NULL",
    "SELECT COUNT(email) FROM t WHERE email IS NOT NULL",
    "SELECT COUNT(*) FROM t WHERE flag = true",
    "SELECT COUNT(*) FROM t WHERE NOT name = 'Bob'",
    "SELECT COUNT(*) FROM t WHERE name IN ('Ann', 'Cat') OR age = 0",
    "SELECT name, age FROM t WHERE age >= 1",
    "SELECT name, age FROM t WHERE age >= 1 LIMIT 3",
    "SELECT * FROM t LIMIT 5",
    "SELECT name, COUNT(*), SUM(age) FROM t GROUP BY name",
    "SELECT name, age, COUNT(*) FROM t WHERE text LIKE '%kw%' "
    "GROUP BY name, age",
]


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    records = []
    for _ in range(n):
        record = {
            "name": draw(st.sampled_from(NAMES)),
            "age": draw(st.integers(min_value=0, max_value=4)),
            "text": draw(st.sampled_from(TEXTS)),
            "flag": draw(st.booleans()),
        }
        if draw(st.booleans()):
            record["email"] = draw(st.sampled_from(["e@x", None]))
        records.append(record)
    group_rows = draw(st.sampled_from([3, 7, 25]))
    annotate = draw(st.booleans())
    false_positive_rate = draw(st.sampled_from([0.0, 0.3]))
    return records, group_rows, annotate, false_positive_rate


def _build_table(tmp_path, records, group_rows, annotate, fp_rate, seed):
    import random

    rng = random.Random(seed)
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = tmp_path / "t.pql"
    schema = infer_schema(records)
    with ParquetLiteWriter(path, schema) as writer:
        for start in range(0, len(records), group_rows):
            group = records[start:start + group_rows]
            bitvectors = None
            if annotate:
                # Sound vectors: never a false negative; false positives
                # injected at fp_rate exercise the residual filter.
                bitvectors = {
                    0: BitVector.from_bits([
                        r["name"] == "Ann" or rng.random() < fp_rate
                        for r in group
                    ]),
                    1: BitVector.from_bits([
                        r["age"] == 2 or rng.random() < fp_rate
                        for r in group
                    ]),
                }
            writer.write_row_group(group, bitvectors=bitvectors)
    return TableEntry(
        name="t", parquet_paths=[path],
        pushdown=dict(PUSHDOWN) if annotate else {},
    )


@given(table=tables(), data=st.data())
@settings(max_examples=50, deadline=None)
def test_batch_equals_row_engine(table, data, tmp_path_factory):
    records, group_rows, annotate, fp_rate = table
    workdir = tmp_path_factory.mktemp("eq")
    entry = _build_table(workdir, records, group_rows, annotate, fp_rate,
                         seed=len(records))
    sql = data.draw(st.sampled_from(QUERY_POOL))
    parsed = parse_sql(sql)

    batch = run_plan(*plan_query(parsed, entry))
    row = run_plan_rows(*plan_query(parsed, entry))

    assert batch.rows == row.rows, (
        f"{sql}: batch != row (annotate={annotate}, fp={fp_rate})"
    )
    assert batch.stats.rows_emitted == row.stats.rows_emitted
    if parsed.limit is None:
        # Without LIMIT the two engines do identical work.
        assert batch.stats.rows_examined == row.stats.rows_examined
        assert batch.stats.row_groups_total == row.stats.row_groups_total
        assert batch.stats.tuples_skipped == row.stats.tuples_skipped
        assert batch.stats.row_groups_skipped == \
            row.stats.row_groups_skipped
    else:
        # The row oracle is maximally lazy; the batch engine decodes at
        # row-group granularity but never more groups than the oracle.
        assert row.stats.rows_examined <= batch.stats.rows_examined
        assert batch.stats.row_groups_total <= \
            len(entry.open_readers()[0].meta.row_groups)


AGG_POOL = [
    "SELECT COUNT(*) FROM t WHERE name = 'Ann'",
    "SELECT COUNT(*), SUM(age), MIN(age), MAX(age), AVG(age) FROM t "
    "WHERE text LIKE '%kw%'",
    "SELECT name, COUNT(*), SUM(age) FROM t GROUP BY name",
    "SELECT COUNT(*) FROM t WHERE flag = true AND age > 0",
]


@given(table=tables(), data=st.data())
@settings(max_examples=25, deadline=None)
def test_snapshot_cache_equals_cold_scan(table, data, tmp_path_factory):
    records, group_rows, annotate, fp_rate = table
    workdir = tmp_path_factory.mktemp("snap")

    # Split the stream into two sealed parts + apply as a snapshot.
    cut = data.draw(st.integers(min_value=0, max_value=len(records)))
    parts = []
    for index, span in enumerate((records[:cut], records[cut:])):
        if not span:
            continue
        part = _build_table(workdir / f"p{index}", span, group_rows,
                            annotate, fp_rate, seed=index)
        parts.append(part.parquet_paths[0])
    entry = TableEntry(name="t",
                       pushdown=dict(PUSHDOWN) if annotate else {})
    entry.apply_snapshot(1, parts, None)
    catalog = Catalog()
    catalog.register(entry)
    executor = Executor(catalog)

    sql = data.draw(st.sampled_from(AGG_POOL))
    first = executor.execute(sql)
    warm = executor.execute(sql)  # all partials cached
    entry.clear_snapshot_cache()
    cold = executor.execute(sql)

    assert json.dumps(first.rows) == json.dumps(warm.rows)
    assert json.dumps(warm.rows) == json.dumps(cold.rows)
    assert warm.stats.row_groups_total == 0 or not parts
    assert warm.plan_info.snapshot_cache_hits == len(parts)
