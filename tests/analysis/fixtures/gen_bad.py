"""Fixture: GEN001 — a generator that suspends while holding a lock."""

import threading

_lock = threading.Lock()
_items = ["a", "b"]


def stream():
    with _lock:
        for item in _items:
            yield item
