"""Unit tests for the canonical experiment workloads."""

import pytest

from repro.data import winlog
from repro.workload import (
    OVERLAP_LEVELS,
    SELECTIVITY_LEVELS,
    SKEWNESS_LEVELS,
    TABLE3_SPECS,
    overlap_statistics,
    overlap_workload,
    selectivity_workload,
    skewness_workload,
    table3_workload,
    workload_skewness,
)

SEED = 99


class TestTable3:
    def test_specs_present(self):
        assert set(TABLE3_SPECS) == {"A", "B", "C"}
        assert TABLE3_SPECS["C"].distribution.exponent == 0.0

    @pytest.mark.parametrize("label", ["A", "B", "C"])
    def test_workload_shape(self, label):
        wl = table3_workload("winlog", label, SEED, n_queries=50)
        assert len(wl) == 50
        lo, hi = wl.min_max_predicates()
        assert lo >= 1
        assert wl.dataset == "winlog"

    def test_overlap_ordering_a_b_c(self):
        # The behavioural contract of Table III: A overlaps most, C least.
        overlaps = {}
        for label in ("A", "B", "C"):
            wl = table3_workload("winlog", label, SEED, n_queries=100)
            overlaps[label] = overlap_statistics(wl)[0]
        assert overlaps["A"] > overlaps["B"] > overlaps["C"]

    def test_determinism(self):
        a = table3_workload("yelp", "A", SEED, n_queries=20)
        b = table3_workload("yelp", "A", SEED, n_queries=20)
        assert a.queries == b.queries

    def test_unknown_label_rejected(self):
        with pytest.raises(KeyError):
            table3_workload("yelp", "D", SEED)


class TestSelectivityWorkloads:
    @pytest.mark.parametrize("level", SELECTIVITY_LEVELS)
    def test_structure(self, level):
        wl, pushed = selectivity_workload(level)
        assert len(wl) == 5
        assert all(len(q) == 3 for q in wl)
        assert len(pushed) == 2

    @pytest.mark.parametrize("level", SELECTIVITY_LEVELS)
    def test_pushed_cover_all_queries(self, level):
        wl, pushed = selectivity_workload(level)
        for q in wl:
            assert any(c in q.clause_set for c in pushed)

    @pytest.mark.parametrize("level", SELECTIVITY_LEVELS)
    def test_predicates_come_from_the_level_plateau(self, level):
        wl, pushed = selectivity_workload(level)
        plateau_keywords = {
            winlog.INFO_KEYWORDS[r]
            for r in winlog.plateau_keyword_ranks(level)
        }
        for q in wl:
            for c in q.clauses:
                assert c.predicates[0].value in plateau_keywords


class TestOverlapWorkloads:
    def test_levels_and_sizes(self):
        for level, preds in OVERLAP_LEVELS.items():
            wl, pushed = overlap_workload(level)
            assert len(wl) == 5
            assert all(len(q) == preds for q in wl)
            assert len(pushed) == 2

    def test_coverage_progression(self):
        covered = {}
        for level in OVERLAP_LEVELS:
            wl, pushed = overlap_workload(level)
            covered[level] = sum(
                1 for q in wl if any(c in q.clause_set for c in pushed)
            )
        assert covered["low"] == 2
        assert covered["medium"] == 4
        assert covered["high"] == 5

    def test_unknown_level_rejected(self):
        with pytest.raises(KeyError):
            overlap_workload("extreme")


class TestSkewnessWorkloads:
    def test_levels(self):
        assert SKEWNESS_LEVELS == (0.0, 0.5, 2.0)

    def test_coverage_progression(self):
        coverage = []
        for level in SKEWNESS_LEVELS:
            wl, pushed = skewness_workload(level, SEED)
            coverage.append(
                sum(1 for q in wl if pushed[0] in q.clause_set)
            )
        assert coverage[0] == 1
        assert coverage == sorted(coverage)
        assert coverage[-1] == 5

    def test_achieved_skew_ordering(self):
        achieved = [
            workload_skewness(skewness_workload(level, SEED)[0])
            for level in SKEWNESS_LEVELS
        ]
        assert achieved == sorted(achieved)

    def test_pushed_is_single_hottest_clause(self):
        wl, pushed = skewness_workload(2.0, SEED)
        counts = wl.clause_query_counts()
        assert len(pushed) == 1
        assert counts[pushed[0]] == max(counts.values())
