"""Unit tests for run-length encoded bit-vectors."""

import pytest

from repro.bitvec import BitVector, RleBitVector, best_encoding


class TestRleRoundtrip:
    def test_simple_roundtrip(self):
        bv = BitVector.from_bits([1, 1, 0, 1])
        rle = RleBitVector.from_bitvector(bv)
        assert rle.to_bitvector() == bv

    def test_canonical_runs_start_with_zero_run(self):
        rle = RleBitVector.from_bitvector(BitVector.from_bits([1, 1, 0, 1]))
        assert rle.runs == (0, 2, 1, 1)

    def test_all_zeros(self):
        bv = BitVector.zeros(40)
        rle = RleBitVector.from_bitvector(bv)
        assert rle.runs == (40,)
        assert rle.count() == 0
        assert rle.to_bitvector() == bv

    def test_all_ones(self):
        bv = BitVector.ones(40)
        rle = RleBitVector.from_bitvector(bv)
        assert rle.runs == (0, 40)
        assert rle.count() == 40

    def test_empty_vector(self):
        bv = BitVector(0)
        rle = RleBitVector.from_bitvector(bv)
        assert len(rle) == 0
        assert rle.to_bitvector() == bv

    def test_count_matches_packed(self):
        bv = BitVector.from_indices(200, range(0, 200, 7))
        assert RleBitVector.from_bitvector(bv).count() == bv.count()

    def test_iter_set_matches_packed(self):
        bv = BitVector.from_indices(64, [0, 1, 10, 63])
        rle = RleBitVector.from_bitvector(bv)
        assert list(rle.iter_set()) == list(bv.iter_set())


class TestRleValidation:
    def test_runs_must_sum_to_length(self):
        with pytest.raises(ValueError):
            RleBitVector(10, [3, 3])

    def test_negative_runs_rejected(self):
        with pytest.raises(ValueError):
            RleBitVector(2, [3, -1])

    def test_canonicalization_merges_empty_interior_runs(self):
        # [0, 2, 0, 1] means: two ones, zero zeros, one one == three ones.
        a = RleBitVector(3, [0, 2, 0, 1])
        b = RleBitVector(3, [0, 3])
        assert a == b
        assert hash(a) == hash(b)


class TestRleSerialization:
    def test_bytes_roundtrip(self):
        bv = BitVector.from_indices(500, [3, 4, 5, 6, 400])
        rle = RleBitVector.from_bitvector(bv)
        assert RleBitVector.from_bytes(rle.to_bytes()) == rle

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            RleBitVector.from_bytes(b"\x00\x00")

    def test_trailing_garbage_rejected(self):
        rle = RleBitVector.from_bitvector(BitVector.from_bits([0, 0, 1, 1]))
        with pytest.raises(ValueError, match="trailing bytes"):
            RleBitVector.from_bytes(rle.to_bytes() + b"GARBAGE")

    def test_sparse_vector_compresses(self):
        bv = BitVector.from_indices(8000, [17])
        rle = RleBitVector.from_bitvector(bv)
        assert rle.serialized_size() < bv.serialized_size() / 10


class TestBestEncoding:
    def test_sparse_prefers_rle(self):
        bv = BitVector.from_indices(8000, [17])
        assert isinstance(best_encoding(bv), RleBitVector)

    def test_dense_random_prefers_packed(self):
        bits = [(i * 7919) % 3 == 0 for i in range(512)]
        bv = BitVector.from_bits(bits)
        assert isinstance(best_encoding(bv), BitVector)
