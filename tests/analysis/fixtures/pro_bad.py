# ciaolint: module-role=protocol
"""Fixture: PRO001/PRO002 — unchecked slicing and unpacking."""

import struct


def decode(buf, pos, n):
    head = buf[pos:pos + n]  # silent short slice on truncated input
    (value,) = struct.unpack("<q", head[:8])
    return value
