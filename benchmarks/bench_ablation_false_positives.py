"""Ablation — false-positive rates of the raw pattern matchers.

Raw matching is allowed one-sided error (§IV-B); the cost is that false
positives inflate partial loading and survive until residual filtering.
This bench quantifies the rate per predicate family on the YCSB dataset —
short numeric patterns (``age = 1``) are the worst case, quoted string
patterns the best.
"""

from conftest import run_once

from repro.bench import emit_table
from repro.core import clause, exact, key_present, key_value, substring
from repro.data import make_generator
from repro.rawjson import dump_record
from repro.workload import false_positive_rates, measure_raw_hit_rates
from repro.workload.selectivity import estimate_selectivities

CLAUSES = [
    ("exact string", clause(exact("age_group", "18-25"))),
    ("substring", clause(substring("email", "@mailbox.example"))),
    ("key presence", clause(key_present("email"))),
    ("key-value, 1-digit", clause(key_value("age_by_group", 7))),
    ("key-value, 2-digit", clause(key_value("age_by_group", 42))),
    ("key-value, bool", clause(key_value("isActive", True))),
]


def test_ablation_false_positive_rates(benchmark, results_dir):
    gen = make_generator("ycsb", 20210223)
    sample = gen.sample(2500)
    raw = [dump_record(r) for r in sample]

    def experiment():
        clauses = [c for _, c in CLAUSES]
        sels = estimate_selectivities(clauses, sample)
        hits = measure_raw_hit_rates(clauses, raw)
        fps = false_positive_rates(clauses, sample, raw)
        return [
            (
                family,
                c.sql(),
                sels[c],
                hits[c],
                fps[c],
            )
            for family, c in CLAUSES
        ]

    rows = run_once(benchmark, experiment)
    emit_table(
        "ablation_false_positives",
        ["family", "clause", "selectivity", "raw hit rate",
         "false-positive rate"],
        rows, results_dir, title="False-positive ablation",
    )

    by_family = {family: row for family, *row in rows}
    # No false negatives anywhere: hit rate ≥ selectivity.
    for family, (sql, sel, hit, fp) in by_family.items():
        assert hit >= sel - 1e-9, family
    # Quoted string patterns are precise; 1-digit numeric patterns are
    # the sloppy end (the digit appears inside other numbers).
    assert by_family["exact string"][3] < 0.01
    assert (
        by_family["key-value, 1-digit"][3]
        > by_family["key-value, 2-digit"][3]
    )
