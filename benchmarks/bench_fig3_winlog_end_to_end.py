"""Fig. 3 — end-to-end experiments on the Windows System Log dataset.

Paper setup: workloads A/B/C (Table III), budgets 0–9 µs/record, stacked
prefiltering / data loading / query time.  Expected shape: workload A
partially loads even at tiny budgets and gains the most; B needs a larger
budget before partial loading engages; C never partially loads but still
gains query time on covered queries.
"""

from conftest import config_for, run_once

from repro.bench import (
    BUDGET_GRIDS,
    emit,
    emit_json,
    end_to_end_sweep,
    headline_speedups,
    metrics_table,
    speedup_summary,
    sweep_payload,
)

PARAMS = config_for("winlog", n_records=4000, n_queries=60)


def test_fig3_winlog_end_to_end(benchmark, tmp_path, results_dir):
    def experiment():
        return end_to_end_sweep(
            "winlog",
            tmp_path,
            config=PARAMS["config"],
            n_queries=PARAMS["n_queries"],
            budgets=BUDGET_GRIDS["winlog"],
        )

    sweep = run_once(benchmark, experiment)
    sections = []
    for label, runs in sweep.items():
        sections.append(metrics_table(runs, f"Fig 3 — workload {label}"))
        sections.append(speedup_summary(runs[0], runs[1:]))
    best = headline_speedups(sweep)
    sections.append(
        "best speedups across Fig 3: "
        f"loading {best['loading']:.1f}x, query {best['query']:.1f}x, "
        f"end-to-end {best['end_to_end']:.1f}x"
    )
    emit("fig3_winlog_end_to_end", "\n\n".join(sections), results_dir)
    emit_json("fig3_winlog_end_to_end", {
        "sweep": sweep_payload(sweep),
        "headline_speedups": best,
    }, results_dir)

    runs_a = sweep["A"]
    baseline = runs_a[0]
    assert baseline.loading_ratio == 1.0
    # Workload A partially loads at small budgets and beats the baseline.
    engaged = [m for m in runs_a[1:] if m.partial_loading]
    assert engaged, "workload A should enable partial loading"
    assert min(m.loading_ratio for m in engaged) < 1.0
    assert any(m.query_wall_s < baseline.query_wall_s for m in runs_a[1:])
