"""Volcano-style operators over dict rows.

The operator set covers the paper's query template (scan → filter →
COUNT(*)) plus projections, general aggregates, and LIMIT so the examples
can run realistic analytics.  The CIAO-specific operator is
:class:`SkippingScan`: it resolves the query's pushed-down predicate ids to
per-row-group bit-vectors, ANDs them (§VI-B), skips whole row groups whose
intersection is empty, and materializes only surviving row positions.

Every operator reports into a shared :class:`ExecutionStats`, which is how
the experiment harness measures tuples skipped, groups skipped, and
sideline parsing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from ..bitvec.bitvector import BitVector, intersect_all
from ..storage.columnar import ParquetLiteReader
from ..storage.jsonstore import JsonSideStore
from .expressions import Expr


@dataclass
class ExecutionStats:
    """Counters accumulated during one query execution."""

    rows_examined: int = 0
    rows_emitted: int = 0
    row_groups_total: int = 0
    row_groups_skipped: int = 0
    row_groups_pruned_by_zonemap: int = 0
    tuples_skipped: int = 0
    tuples_pruned_by_zonemap: int = 0
    sideline_records_parsed: int = 0
    used_data_skipping: bool = False
    scanned_sideline: bool = False

    def merge(self, other: "ExecutionStats") -> None:
        """Fold another stats object into this one."""
        self.rows_examined += other.rows_examined
        self.rows_emitted += other.rows_emitted
        self.row_groups_total += other.row_groups_total
        self.row_groups_skipped += other.row_groups_skipped
        self.row_groups_pruned_by_zonemap += \
            other.row_groups_pruned_by_zonemap
        self.tuples_skipped += other.tuples_skipped
        self.tuples_pruned_by_zonemap += other.tuples_pruned_by_zonemap
        self.sideline_records_parsed += other.sideline_records_parsed
        self.used_data_skipping |= other.used_data_skipping
        self.scanned_sideline |= other.scanned_sideline


class Operator(ABC):
    """An iterator node producing dict rows."""

    @abstractmethod
    def execute(self, stats: ExecutionStats) -> Iterator[Dict[str, Any]]:
        """Yield result rows, accounting into *stats*."""

    @abstractmethod
    def describe(self) -> str:
        """One-line plan description."""


class ParquetScan(Operator):
    """Full scan of a Parquet-lite file, optionally projected.

    ``prune`` is the zone-map hook: a callable deciding from row-group
    metadata (min/max/null statistics) that a group cannot contain
    qualifying rows and may be skipped without decoding anything.
    """

    def __init__(self, reader: ParquetLiteReader,
                 columns: Optional[Sequence[str]] = None,
                 prune: Optional[Callable] = None):
        self._reader = reader
        self._columns = list(columns) if columns is not None else None
        self._prune = prune

    def execute(self, stats: ExecutionStats) -> Iterator[Dict[str, Any]]:
        for group in self._reader.row_groups():
            stats.row_groups_total += 1
            if self._prune is not None and self._prune(group.meta):
                stats.row_groups_pruned_by_zonemap += 1
                stats.tuples_pruned_by_zonemap += group.row_count
                continue
            for row in group.rows(columns=self._columns):
                stats.rows_examined += 1
                yield row
            group.clear_cache()

    def describe(self) -> str:
        cols = ", ".join(self._columns) if self._columns else "*"
        zone = ", zonemap" if self._prune is not None else ""
        return f"ParquetScan({self._reader.path.name}, columns=[{cols}]{zone})"


class SkippingScan(Operator):
    """Bit-vector data-skipping scan (paper §VI-B).

    For each row group: fetch the bit-vectors of the query's pushed-down
    predicate ids, AND them, and

    * if a predicate id has no stored vector in this group (it was pushed
      after this data was loaded), fall back to scanning the group fully —
      soundness first;
    * if the intersection is empty, skip the group without decoding a
      single column;
    * otherwise materialize only the surviving row positions.
    """

    def __init__(self, reader: ParquetLiteReader,
                 predicate_ids: Sequence[int],
                 columns: Optional[Sequence[str]] = None,
                 prune: Optional[Callable] = None):
        if not predicate_ids:
            raise ValueError("SkippingScan needs at least one predicate id")
        self._reader = reader
        self._ids = list(predicate_ids)
        self._columns = list(columns) if columns is not None else None
        self._prune = prune

    def execute(self, stats: ExecutionStats) -> Iterator[Dict[str, Any]]:
        stats.used_data_skipping = True
        for index, group in enumerate(self._reader.row_groups()):
            stats.row_groups_total += 1
            if self._prune is not None and self._prune(group.meta):
                stats.row_groups_pruned_by_zonemap += 1
                stats.tuples_pruned_by_zonemap += group.row_count
                continue
            vectors: List[BitVector] = []
            missing = False
            for pid in self._ids:
                bv = group.meta.bitvectors.get(pid)
                if bv is None:
                    missing = True
                    break
                vectors.append(bv)
            if missing:
                for row in group.rows(columns=self._columns):
                    stats.rows_examined += 1
                    yield row
                group.clear_cache()
                continue
            mask = intersect_all(vectors)
            indices = list(mask.iter_set())
            stats.tuples_skipped += group.row_count - len(indices)
            if not indices:
                stats.row_groups_skipped += 1
                continue
            for row in group.rows(columns=self._columns, indices=indices):
                stats.rows_examined += 1
                yield row
            group.clear_cache()

    def describe(self) -> str:
        return (
            f"SkippingScan({self._reader.path.name}, "
            f"predicates={self._ids})"
        )


class SidelineScan(Operator):
    """Just-in-time parse-and-scan of the raw JSON sideline store.

    Accepts anything with the store's read interface (``iter_parsed`` +
    ``path``) — in particular the bounded loaded-so-far views snapshot
    queries scan during a streaming ingest.
    """

    def __init__(self, store: JsonSideStore):
        self._store = store

    def execute(self, stats: ExecutionStats) -> Iterator[Dict[str, Any]]:
        stats.scanned_sideline = True
        for record in self._store.iter_parsed():
            stats.sideline_records_parsed += 1
            stats.rows_examined += 1
            yield record

    def describe(self) -> str:
        return f"SidelineScan({self._store.path.name})"


class ChainScan(Operator):
    """Concatenate child scans (Parquet files + sideline)."""

    def __init__(self, children: Sequence[Operator]):
        if not children:
            raise ValueError("ChainScan needs at least one child")
        self._children = list(children)

    def execute(self, stats: ExecutionStats) -> Iterator[Dict[str, Any]]:
        for child in self._children:
            yield from child.execute(stats)

    def describe(self) -> str:
        return " + ".join(child.describe() for child in self._children)


class Filter(Operator):
    """Residual predicate evaluation.

    Always present above CIAO scans: bit-vectors admit false positives, so
    every surviving tuple re-checks the full WHERE expression (§IV-B).
    """

    def __init__(self, child: Operator, predicate: Expr):
        self._child = child
        self._predicate = predicate

    def execute(self, stats: ExecutionStats) -> Iterator[Dict[str, Any]]:
        predicate = self._predicate
        for row in self._child.execute(stats):
            if predicate.evaluate(row):
                yield row

    def describe(self) -> str:
        return f"Filter({self._predicate.sql()}) <- {self._child.describe()}"


class Project(Operator):
    """Column projection."""

    def __init__(self, child: Operator, columns: Sequence[str]):
        if not columns:
            raise ValueError("projections need at least one column")
        self._child = child
        self._columns = list(columns)

    def execute(self, stats: ExecutionStats) -> Iterator[Dict[str, Any]]:
        columns = self._columns
        for row in self._child.execute(stats):
            yield {name: row.get(name) for name in columns}

    def describe(self) -> str:
        return (
            f"Project({', '.join(self._columns)}) <- "
            f"{self._child.describe()}"
        )


class Limit(Operator):
    """Stop after *n* rows."""

    def __init__(self, child: Operator, n: int):
        if n < 0:
            raise ValueError("LIMIT must be non-negative")
        self._child = child
        self._n = n

    def execute(self, stats: ExecutionStats) -> Iterator[Dict[str, Any]]:
        if self._n == 0:
            return
        emitted = 0
        for row in self._child.execute(stats):
            yield row
            emitted += 1
            if emitted >= self._n:
                return

    def describe(self) -> str:
        return f"Limit({self._n}) <- {self._child.describe()}"


@dataclass
class _AggState:
    count: int = 0
    total: float = 0.0
    minimum: Any = None
    maximum: Any = None


class Aggregate(Operator):
    """COUNT/SUM/AVG/MIN/MAX over the child's rows (single output row).

    Null handling follows SQL: only COUNT(*) counts null-valued rows;
    per-column aggregates ignore nulls.
    """

    def __init__(self, child: Operator, items: Sequence):
        from .sql import SelectItem  # local to avoid cycle at import time

        self._child = child
        self._items: List[SelectItem] = list(items)
        for item in self._items:
            if item.aggregate is None:
                raise ValueError(
                    "Aggregate received a non-aggregate select item; "
                    "grouping is not supported"
                )

    def execute(self, stats: ExecutionStats) -> Iterator[Dict[str, Any]]:
        states = [_AggState() for _ in self._items]
        for row in self._child.execute(stats):
            for item, state in zip(self._items, states):
                if item.column == "*":
                    state.count += 1
                    continue
                value = row.get(item.column)
                if value is None:
                    continue
                state.count += 1
                if isinstance(value, (int, float)) and not isinstance(
                        value, bool):
                    state.total += value
                if state.minimum is None or value < state.minimum:
                    state.minimum = value
                if state.maximum is None or value > state.maximum:
                    state.maximum = value
        result: Dict[str, Any] = {}
        for item, state in zip(self._items, states):
            result[item.label] = self._finalize(item.aggregate, state)
        yield result

    @staticmethod
    def _finalize(aggregate: str, state: _AggState) -> Any:
        if aggregate == "COUNT":
            return state.count
        if aggregate == "SUM":
            return state.total if state.count else None
        if aggregate == "AVG":
            return state.total / state.count if state.count else None
        if aggregate == "MIN":
            return state.minimum
        if aggregate == "MAX":
            return state.maximum
        raise ValueError(f"unknown aggregate {aggregate}")

    def describe(self) -> str:
        labels = ", ".join(item.label for item in self._items)
        return f"Aggregate({labels}) <- {self._child.describe()}"


class GroupedAggregate(Operator):
    """GROUP BY aggregation: one output row per distinct key tuple.

    Select items must be either aggregates or bare group-by columns (the
    planner enforces this).  Output order is first-appearance order of
    each group, which keeps results deterministic for tests.
    """

    def __init__(self, child: Operator, group_columns: Sequence[str],
                 items: Sequence):
        if not group_columns:
            raise ValueError("GroupedAggregate needs group columns")
        self._child = child
        self._group_columns = list(group_columns)
        self._items = list(items)
        for item in self._items:
            if item.aggregate is None and \
                    item.column not in self._group_columns:
                raise ValueError(
                    f"column {item.column!r} is neither aggregated nor "
                    f"grouped"
                )

    def execute(self, stats: ExecutionStats) -> Iterator[Dict[str, Any]]:
        groups: Dict[tuple, List[_AggState]] = {}
        order: List[tuple] = []
        agg_items = [i for i in self._items if i.aggregate is not None]
        for row in self._child.execute(stats):
            key = tuple(row.get(c) for c in self._group_columns)
            states = groups.get(key)
            if states is None:
                states = [_AggState() for _ in agg_items]
                groups[key] = states
                order.append(key)
            for item, state in zip(agg_items, states):
                if item.column == "*":
                    state.count += 1
                    continue
                value = row.get(item.column)
                if value is None:
                    continue
                state.count += 1
                if isinstance(value, (int, float)) and not isinstance(
                        value, bool):
                    state.total += value
                if state.minimum is None or value < state.minimum:
                    state.minimum = value
                if state.maximum is None or value > state.maximum:
                    state.maximum = value
        for key in order:
            states = groups[key]
            result: Dict[str, Any] = {}
            agg_index = 0
            for item in self._items:
                if item.aggregate is None:
                    result[item.label] = key[
                        self._group_columns.index(item.column)
                    ]
                else:
                    result[item.label] = Aggregate._finalize(
                        item.aggregate, states[agg_index]
                    )
                    agg_index += 1
            yield result

    def describe(self) -> str:
        labels = ", ".join(item.label for item in self._items)
        keys = ", ".join(self._group_columns)
        return (
            f"GroupedAggregate([{keys}] -> {labels}) <- "
            f"{self._child.describe()}"
        )
