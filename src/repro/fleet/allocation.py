"""Per-client budget allocation and online re-allocation.

One global :class:`~repro.core.optimizer.PushdownPlan` is optimized once
for the whole fleet; each client then executes the budget-restricted
*prefix* of it that its allocated share affords
(:meth:`PushdownPlan.restrict` — prefixes keep predicate ids globally
consistent, which the server's bit-vector bookkeeping requires).  The
aggregate budget is split by :func:`repro.core.budgets.allocate_budgets`:
proportional to speed, capped by slack, water-filled.

Re-allocation closes the loop: declared speed factors are guesses, and
hardware profiles drift (thermal throttling, co-tenants — the paper's
Table IV hypervisor noise).  Between loading intervals the coordinator
feeds *observed* per-client throughput into
:func:`repro.core.budgets.observed_speed_factors`, blends it with the
current factors, and recomputes the allocation; clients pick up their new
plan prefix at the next chunk boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.budgets import (
    Budget,
    ClientProfile,
    allocate_budgets,
    observed_speed_factors,
)
from ..core.optimizer import PushdownPlan


@dataclass
class FleetAllocation:
    """One allocation round's outcome."""

    round: int
    budgets: Dict[str, Budget]
    plans: Dict[str, PushdownPlan]
    speed_factors: Dict[str, float]

    def pushed(self, client_id: str) -> int:
        """Number of predicates client *client_id* executes."""
        return len(self.plans[client_id])

    def utilization(self, client_id: str) -> float:
        """Allocated-budget fraction the client's plan prefix consumes."""
        budget = self.budgets[client_id].us
        if budget <= 0:
            return 0.0
        return self.plans[client_id].total_cost_us() / budget


class FleetBudgetAllocator:
    """Allocate one global plan's prefixes across a fleet.

    Args:
        global_plan: The fleet-wide optimized plan (deepest any client
            can go).
        aggregate_budget: Mean per-record budget across the fleet, in
            calibrated-machine µs (see :func:`allocate_budgets`).
    """

    def __init__(self, global_plan: PushdownPlan,
                 aggregate_budget: Budget):
        self.global_plan = global_plan
        self.aggregate_budget = aggregate_budget
        self.rounds = 0

    def allocate(self, profiles: Sequence[ClientProfile]
                 ) -> FleetAllocation:
        """Initial (or recomputed) allocation for *profiles*."""
        budgets = allocate_budgets(profiles, self.aggregate_budget)
        plans = {
            cid: self.global_plan.restrict(budget)
            for cid, budget in budgets.items()
        }
        allocation = FleetAllocation(
            round=self.rounds,
            budgets=budgets,
            plans=plans,
            speed_factors={p.client_id: p.speed_factor for p in profiles},
        )
        self.rounds += 1
        return allocation

    def reallocate(self, profiles: Sequence[ClientProfile],
                   throughput: Mapping[str, float],
                   blend: float = 0.5) -> FleetAllocation:
        """Re-allocate from observed throughput (the online hook).

        *throughput* maps client ids to any proportional rate (the
        coordinator uses records retired per prefiltering wall-second
        from each client's :class:`~repro.simulate.runtime.CostLedger`).
        Clients absent from *throughput* — e.g. dead ones — are excluded
        from the new allocation entirely; their share of the aggregate
        budget flows to the survivors.
        """
        alive: List[ClientProfile] = [
            p for p in profiles if p.client_id in throughput
        ]
        if not alive:
            raise ValueError("no surviving clients to re-allocate across")
        factors = observed_speed_factors(
            {p.client_id: throughput[p.client_id] for p in alive},
            prior={p.client_id: p.speed_factor for p in alive},
            blend=blend,
        )
        updated = [
            replace(p, speed_factor=factors[p.client_id]) for p in alive
        ]
        return self.allocate(updated)


def uniform_allocation(plan: Optional[PushdownPlan],
                       client_ids: Sequence[str]) -> FleetAllocation:
    """Every client runs the same (possibly empty) plan — no budget split.

    The degenerate allocation used when a fleet runs without an aggregate
    budget: comparison baselines and plain multi-source loads.
    """
    budget = Budget(plan.total_cost_us()) if plan is not None else Budget(0)
    return FleetAllocation(
        round=0,
        budgets={cid: budget for cid in client_ids},
        plans={cid: plan for cid in client_ids},
        speed_factors={cid: 1.0 for cid in client_ids},
    )
