"""Coordinated fleet loading through the `CiaoSession` front door.

Generates a seeded 8-client population from the Table IV hardware
profiles (Zipf-skewed data shares, a few slack-capped devices), allocates
an aggregate budget across it, and runs the whole fleet concurrently
against a sharded CIAO server with bounded backpressure and online budget
re-allocation — one `DeploymentConfig` instead of hand-wiring optimizer,
server, coordinator, and channels.  A second run kills the fattest client
mid-load *and* makes every channel lossy (drops are retransmitted, seeded,
replayable): survivors absorb the dead client's partition and the fleet
still loses no records.

Run:  python examples/fleet_loading.py
"""

from repro.api import Budget, ChannelSpec, CiaoSession, DeploymentConfig
from repro.workload import table3_workload

N_RECORDS = 12_000
N_CLIENTS = 8
SEED = 7
AGGREGATE_BUDGET = Budget(8.0)  # mean µs/record across the fleet

BASE = DeploymentConfig(
    mode="fleet",
    n_shards=2,
    shard_mode="thread",
    chunk_size=500,
    n_clients=N_CLIENTS,
    population_seed=SEED,  # pinned so the straggler run can rebuild it
    aggregate_budget=AGGREGATE_BUDGET,
    realloc_interval=8,
)


def run_fleet(tag: str, config: DeploymentConfig, workload):
    with CiaoSession(workload, source="yelp", seed=SEED,
                     config=config) as session:
        session.plan(Budget(20.0))
        report = session.load(n_records=N_RECORDS).result()
        count = session.query("SELECT COUNT(*) FROM t").scalar()
    print(f"== {tag} ==")
    print(report.describe())
    print(f"COUNT(*) = {count} (of {N_RECORDS} records)\n")
    return report


def main() -> None:
    workload = table3_workload("yelp", "A", seed=SEED, n_queries=20)

    healthy = run_fleet(
        f"healthy fleet: {N_CLIENTS} clients, {N_RECORDS} records",
        BASE, workload,
    )

    fat = max(healthy.fleet.clients, key=lambda c: c.share).client_id
    flaky = BASE.with_mode(
        "fleet",
        population=_population_with_kill(fat),
        channel=ChannelSpec(drop_rate=0.2, seed=SEED),
        ship_batch=2,  # more, smaller messages: drops become visible
    )
    kill = run_fleet(
        f"straggler fleet over lossy links: {fat} dies after 1 chunk, "
        f"20% of transmissions dropped",
        flaky, workload,
    )
    print(
        f"killed={kill.fleet.killed_clients} reassigned "
        f"{kill.fleet.reassigned_records} records in "
        f"{kill.fleet.reassignment_events} events; "
        f"{kill.messages_dropped} transmissions dropped and retried; "
        f"no record loss: {kill.no_record_loss}"
    )


def _population_with_kill(client_id: str):
    from repro.api import ClientPopulation

    population = ClientPopulation.generate(N_CLIENTS, seed=SEED)
    return population.with_kill(client_id, after_chunks=1)


if __name__ == "__main__":
    main()
