"""CIAO: an optimization framework for client-assisted data loading.

A from-scratch Python reproduction of Ding et al., ICDE 2021
(arXiv:2102.11793).  Clients evaluate pushed-down string predicates on raw
JSON without parsing it, ship per-predicate bit-vectors with each chunk,
and the server uses them for partial loading and query-time data skipping.
Which predicates to push is a budgeted submodular maximization solved with
the paper's paired greedy algorithms.

Quickstart::

    from repro import (
        Budget, CiaoOptimizer, CiaoServer, CostModel,
        DEFAULT_COEFFICIENTS, SimulatedClient,
    )
    from repro.data import make_generator
    from repro.workload import estimate_selectivities, table3_workload

    gen = make_generator("yelp", seed=7)
    workload = table3_workload("yelp", "A", seed=7)
    sels = estimate_selectivities(workload.candidate_pool, gen.sample(2000))
    model = CostModel(DEFAULT_COEFFICIENTS, gen.average_record_length())
    plan = CiaoOptimizer(workload, sels, model).plan(Budget(1.0))

    server = CiaoServer("data/", plan=plan, workload=workload)
    client = SimulatedClient("sensor-0", plan=plan)
    for chunk in client.process(gen.raw_lines(10_000)):
        server.ingest(chunk)
    result = server.query(workload.queries[0].sql("t"))

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .core import (
    APPROXIMATION_GUARANTEE,
    Budget,
    CiaoOptimizer,
    Clause,
    ClientProfile,
    CostCoefficients,
    CostModel,
    DEFAULT_COEFFICIENTS,
    PredicateKind,
    PushdownEntry,
    PushdownPlan,
    Query,
    SelectionObjective,
    SelectionResult,
    SimplePredicate,
    UnsupportedPredicateError,
    Workload,
    allocate_budgets,
    clause,
    exact,
    key_present,
    key_value,
    prefix,
    select_predicates,
    substring,
    suffix,
)
from .client import ClientEvaluator, SimulatedClient
from .fleet import (
    ClientPopulation,
    FleetCoordinator,
    FleetReport,
)
from .server import CiaoServer, ClientAssistedLoader, EagerLoader

__version__ = "1.0.0"

__all__ = [
    "APPROXIMATION_GUARANTEE",
    "Budget",
    "CiaoOptimizer",
    "CiaoServer",
    "Clause",
    "ClientAssistedLoader",
    "ClientEvaluator",
    "ClientPopulation",
    "ClientProfile",
    "CostCoefficients",
    "CostModel",
    "DEFAULT_COEFFICIENTS",
    "EagerLoader",
    "FleetCoordinator",
    "FleetReport",
    "PredicateKind",
    "PushdownEntry",
    "PushdownPlan",
    "Query",
    "SelectionObjective",
    "SelectionResult",
    "SimplePredicate",
    "SimulatedClient",
    "UnsupportedPredicateError",
    "Workload",
    "__version__",
    "allocate_budgets",
    "clause",
    "exact",
    "key_present",
    "key_value",
    "prefix",
    "select_predicates",
    "substring",
    "suffix",
]
