"""Source model for ciaolint: parsed modules, roles, and directives.

The engine parses every target file exactly once into a
:class:`SourceModule` (text, lines, AST, inferred role, inline
directives); checkers share that model instead of re-reading files.

Inline directives (comments):

``# ciaolint: allow[RULE] -- reason``
    Suppress *RULE* (a rule id like ``PRO001``, a checker name like
    ``protocol-bounds``, or a comma list) on this line — or, when the
    comment stands alone on its line, on the next statement line.  The
    ``-- reason`` justification is mandatory; a marker without one is
    itself a finding (``META001``).

``# ciaolint: module-role=ROLE``
    Override the path-inferred module role (``protocol``, ``simulate``,
    ``data``, ``engine``, ``workload``).  Used by fixture corpora and by
    modules whose path does not reveal their role.

``# guarded-by: NAME`` / ``# guarded-by: <free text>``
    Declare the attribute assigned on this line (or the next) as guarded
    by the lock attribute *NAME* of the same object — statically verified
    by the lock-discipline checker.  The angle-bracket form documents a
    non-lock protocol (e.g. thread-join happens-before) and is recorded
    but not verified.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: Path segments / file names that assign a role to a module.  Roles
#: scope the protocol-bounds and determinism checkers.
_ROLE_BY_SEGMENT = {
    "simulate": "simulate",
    "data": "data",
    "engine": "engine",
    "workload": "workload",
    "rawjson": "protocol",
    "rawcsv": "protocol",
    "transport": "protocol",
    "server": "server",
    "storage": "storage",
    "service": "service",
    "compact": "compact",
    "recovery": "recovery",
}
_ROLE_BY_FILENAME = {
    "protocol.py": "protocol",
    "encodings.py": "protocol",
    "pages.py": "protocol",
    "plan_io.py": "protocol",
}

_ALLOW_RE = re.compile(
    r"#\s*ciaolint:\s*allow\[([A-Za-z0-9_,\- ]+)\]\s*(?:--\s*(\S.*))?"
)
_ROLE_RE = re.compile(r"#\s*ciaolint:\s*module-role=([a-z\-]+)")
_GUARDED_RE = re.compile(
    r"#\s*guarded-by:\s*(?:(?P<name>[A-Za-z_]\w*)\s*$|<(?P<doc>[^>]+)>)"
)


@dataclass(frozen=True)
class AllowMarker:
    """One parsed ``allow[...]`` directive."""

    line: int            # line the marker suppresses
    marker_line: int     # line the comment itself sits on
    rules: Tuple[str, ...]
    reason: Optional[str]

    def covers(self, rule: str, checker: str) -> bool:
        return rule in self.rules or checker in self.rules


@dataclass(frozen=True)
class GuardAnnotation:
    """One ``# guarded-by:`` declaration, attached to a source line."""

    line: int            # line of the annotated assignment
    lock: Optional[str]  # verified self-lock attribute, or None
    doc: Optional[str]   # documented-only free text, or None


@dataclass
class SourceModule:
    """One parsed source file plus everything checkers share."""

    path: Path
    rel_path: str
    text: str
    lines: List[str]
    tree: ast.Module
    role: Optional[str]
    allow_markers: List[AllowMarker] = field(default_factory=list)
    guard_annotations: Dict[int, GuardAnnotation] = field(
        default_factory=dict
    )

    def guard_for_line(self, line: int) -> Optional[GuardAnnotation]:
        """The guard annotation covering *line*, if any.

        An annotation on the assignment's own line wins; a standalone
        comment line annotates the next line.
        """
        return self.guard_annotations.get(line)


@dataclass
class ParseFailure:
    """A target file the engine could not parse (reported as a finding)."""

    path: Path
    rel_path: str
    line: int
    message: str


def _infer_role(rel_path: str) -> Optional[str]:
    parts = Path(rel_path).parts
    if "analysis" in parts or "tests" in parts:
        return None  # the linter and its fixtures choose roles explicitly
    name = Path(rel_path).name
    if name in _ROLE_BY_FILENAME:
        return _ROLE_BY_FILENAME[name]
    for part in parts:
        if part in _ROLE_BY_SEGMENT:
            return _ROLE_BY_SEGMENT[part]
    return None


def _statement_lines(tree: ast.Module) -> Set[int]:
    """First lines of every statement — targets for standalone markers."""
    return {
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.stmt)
    }


def _next_statement_line(start: int, stmt_lines: Set[int],
                         n_lines: int) -> int:
    for line in range(start + 1, n_lines + 1):
        if line in stmt_lines:
            return line
    return start


def parse_module(path: Path, root: Path) -> "SourceModule | ParseFailure":
    """Parse one file into a :class:`SourceModule` (or a failure)."""
    try:
        rel_path = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel_path = path.as_posix()
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return ParseFailure(path, rel_path, 1, f"unreadable: {exc}")
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return ParseFailure(
            path, rel_path, exc.lineno or 1, f"syntax error: {exc.msg}"
        )
    lines = text.splitlines()
    stmt_lines = _statement_lines(tree)

    role: Optional[str] = None
    allow_markers: List[AllowMarker] = []
    guards: Dict[int, GuardAnnotation] = {}
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        standalone = stripped.startswith("#")
        role_match = _ROLE_RE.search(line)
        if role_match and lineno <= 20:
            role = role_match.group(1)
        allow_match = _ALLOW_RE.search(line)
        if allow_match:
            target = lineno
            if standalone:
                target = _next_statement_line(
                    lineno, stmt_lines, len(lines)
                )
            rules = tuple(
                token.strip()
                for token in allow_match.group(1).split(",")
                if token.strip()
            )
            reason = allow_match.group(2)
            allow_markers.append(AllowMarker(
                line=target, marker_line=lineno, rules=rules,
                reason=reason.strip() if reason else None,
            ))
        guard_match = _GUARDED_RE.search(line)
        if guard_match:
            target = lineno
            if standalone:
                target = _next_statement_line(
                    lineno, stmt_lines, len(lines)
                )
            guards[target] = GuardAnnotation(
                line=target,
                lock=guard_match.group("name"),
                doc=guard_match.group("doc"),
            )
    if role is None:
        role = _infer_role(rel_path)
    return SourceModule(
        path=path, rel_path=rel_path, text=text, lines=lines,
        tree=tree, role=role, allow_markers=allow_markers,
        guard_annotations=guards,
    )


class Project:
    """Every parsed module under the analyzed paths, shared by checkers."""

    def __init__(self, modules: List[SourceModule],
                 failures: List[ParseFailure], root: Path):
        self.modules = modules
        self.failures = failures
        self.root = root

    @classmethod
    def load(cls, paths: Iterable[Path],
             root: Optional[Path] = None) -> "Project":
        """Parse every ``*.py`` file under *paths* (files or directories)."""
        root = (root or Path.cwd()).resolve()
        files: List[Path] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                files.extend(
                    p for p in sorted(path.rglob("*.py"))
                    if "__pycache__" not in p.parts
                )
            else:
                files.append(path)
        modules: List[SourceModule] = []
        failures: List[ParseFailure] = []
        for path in files:
            parsed = parse_module(path, root)
            if isinstance(parsed, ParseFailure):
                failures.append(parsed)
            else:
                modules.append(parsed)
        return cls(modules, failures, root)

    def by_role(self, *roles: str) -> List[SourceModule]:
        """Modules whose role is one of *roles*."""
        return [m for m in self.modules if m.role in roles]
