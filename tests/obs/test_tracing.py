"""Tracer: span nesting, ids, adoption, and exports."""

import json

from repro.obs import Tracer
from repro.obs.tracing import NULL_TRACER, TraceContext, resolve_tracer


class TestSpans:
    def test_root_span_gets_fresh_trace_id(self):
        tracer = Tracer("t")
        with tracer.trace("root") as span:
            assert span.trace_id.startswith("t-")
        spans = tracer.spans()
        assert [s.name for s in spans] == ["root"]
        assert spans[0].parent_id is None
        assert spans[0].end >= spans[0].start

    def test_nested_spans_link_parent_child(self):
        tracer = Tracer()
        with tracer.trace("outer") as outer:
            with tracer.trace("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["inner"].parent_id == by_name["outer"].span_id

    def test_explicit_parent_reroots(self):
        tracer = Tracer()
        parent = TraceContext("trace-9", "span-9")
        with tracer.trace("child", parent=parent):
            pass
        (span,) = tracer.spans()
        assert span.trace_id == "trace-9"
        assert span.parent_id == "span-9"

    def test_exception_recorded_and_reraised(self):
        tracer = Tracer()
        try:
            with tracer.trace("boom"):
                raise ValueError("nope")
        except ValueError:
            pass
        (span,) = tracer.spans()
        assert span.attrs["error"] == "ValueError"

    def test_drain_by_trace_id_keeps_others(self):
        tracer = Tracer()
        with tracer.trace("a") as a:
            pass
        with tracer.trace("b"):
            pass
        drained = tracer.drain(a.trace_id)
        assert [s.name for s in drained] == ["a"]
        assert [s.name for s in tracer.spans()] == ["b"]

    def test_adopt_files_foreign_spans(self):
        source, sink = Tracer("src"), Tracer("dst")
        with source.trace("remote-side"):
            pass
        records = [s.to_dict() for s in source.drain()]
        sink.adopt(records)
        (span,) = sink.spans()
        assert span.name == "remote-side"
        assert span.trace_id.startswith("src-")


class TestExports:
    def _three_span_tracer(self):
        tracer = Tracer()
        with tracer.trace("root"):
            with tracer.trace("child1"):
                pass
            with tracer.trace("child2"):
                pass
        return tracer

    def test_span_tree_nests_children(self):
        tracer = self._three_span_tracer()
        (root,) = tracer.span_tree()
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == \
            ["child1", "child2"]

    def test_format_tree_indents(self):
        text = self._three_span_tracer().format_tree()
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child1")
        assert "ms]" in lines[0]

    def test_chrome_trace_shape(self):
        tracer = self._three_span_tracer()
        doc = tracer.chrome_trace()
        events = doc["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        json.dumps(doc)  # must be serializable as-is

    def test_orphan_parent_becomes_root(self):
        tracer = Tracer()
        with tracer.trace("child",
                          parent=TraceContext("t-x", "gone")):
            pass
        (root,) = tracer.span_tree()
        assert root["name"] == "child"


class TestNullTracer:
    def test_trace_yields_no_span(self):
        with NULL_TRACER.trace("anything") as nothing:
            assert nothing is None
        assert NULL_TRACER.spans() == []
        assert not NULL_TRACER.enabled

    def test_null_is_shared_context_manager(self):
        a = NULL_TRACER.trace("a")
        b = NULL_TRACER.trace("b")
        assert a is b

    def test_resolve_defaults_to_null(self):
        assert resolve_tracer(None) is NULL_TRACER
        real = Tracer()
        assert resolve_tracer(real) is real
