"""Raw-JSON substrate: from-scratch tokenizer/parser/writer plus the
no-parse matchers and chunking that CIAO's client side is built on."""

from .chunks import DEFAULT_CHUNK_SIZE, JsonChunk, chunk_records, concat_chunks
from .errors import JsonError, JsonSyntaxError, JsonTokenError
from .parser import loads, parse_lines, parse_object, try_parse
from .raw_matcher import contains, key_present, key_value_match
from .tokenizer import Token, Tokenizer, TokenType, tokenize
from .writer import dump_record, dumps, escape_string

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "JsonChunk",
    "JsonError",
    "JsonSyntaxError",
    "JsonTokenError",
    "Token",
    "TokenType",
    "Tokenizer",
    "chunk_records",
    "concat_chunks",
    "contains",
    "dump_record",
    "dumps",
    "escape_string",
    "key_present",
    "key_value_match",
    "loads",
    "parse_lines",
    "parse_object",
    "tokenize",
    "try_parse",
]
