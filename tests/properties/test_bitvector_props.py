"""Property-based tests of bit-vector algebra and encodings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitvec import BitVector, RleBitVector, best_encoding

bit_lists = st.lists(st.booleans(), max_size=300)


@st.composite
def paired_bits(draw):
    a = draw(bit_lists)
    b = draw(st.lists(st.booleans(), min_size=len(a), max_size=len(a)))
    return a, b


@given(bit_lists)
def test_from_bits_roundtrip(bits):
    assert BitVector.from_bits(bits).to_bits() == [int(b) for b in bits]


@given(bit_lists)
def test_serialization_roundtrip(bits):
    bv = BitVector.from_bits(bits)
    assert BitVector.from_bytes(bv.to_bytes()) == bv


@given(bit_lists)
def test_rle_equivalence(bits):
    bv = BitVector.from_bits(bits)
    rle = RleBitVector.from_bitvector(bv)
    assert rle.to_bitvector() == bv
    assert rle.count() == bv.count()
    assert list(rle.iter_set()) == list(bv.iter_set())
    assert RleBitVector.from_bytes(rle.to_bytes()) == rle


@given(bit_lists)
def test_best_encoding_is_lossless(bits):
    bv = BitVector.from_bits(bits)
    encoded = best_encoding(bv)
    if isinstance(encoded, RleBitVector):
        assert encoded.to_bitvector() == bv
    else:
        assert encoded == bv


@given(paired_bits())
def test_de_morgan(pair):
    a, b = (BitVector.from_bits(x) for x in pair)
    assert ~(a & b) == (~a | ~b)
    assert ~(a | b) == (~a & ~b)


@given(paired_bits())
def test_commutativity(pair):
    a, b = (BitVector.from_bits(x) for x in pair)
    assert a & b == b & a
    assert a | b == b | a
    assert a ^ b == b ^ a


@given(bit_lists)
def test_involution_and_identities(bits):
    bv = BitVector.from_bits(bits)
    assert ~~bv == bv
    ones = BitVector.ones(len(bv))
    zeros = BitVector.zeros(len(bv))
    assert bv & ones == bv
    assert bv | zeros == bv
    assert bv & zeros == zeros
    assert bv | ones == ones


@given(paired_bits())
def test_count_inclusion_exclusion(pair):
    a, b = (BitVector.from_bits(x) for x in pair)
    assert (a | b).count() + (a & b).count() == a.count() + b.count()


@given(bit_lists)
def test_iter_set_matches_to_bits(bits):
    bv = BitVector.from_bits(bits)
    expected = [i for i, bit in enumerate(bits) if bit]
    assert list(bv.iter_set()) == expected


@given(bit_lists, bit_lists)
def test_concat_preserves_both_halves(first, second):
    a, b = BitVector.from_bits(first), BitVector.from_bits(second)
    merged = a.concat(b)
    assert merged.to_bits() == a.to_bits() + b.to_bits()


@given(paired_bits())
def test_inplace_ops_match_pure_ops(pair):
    a, b = (BitVector.from_bits(x) for x in pair)
    inplace_and = a.copy()
    inplace_and.intersect_update(b)
    assert inplace_and == a & b
    inplace_or = a.copy()
    inplace_or.union_update(b)
    assert inplace_or == a | b
