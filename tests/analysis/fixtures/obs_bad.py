# ciaolint: module-role=server
"""Fixture: OBS001 — print()/logging in a hot-path server module."""

import logging


def ingest(chunks):
    logging.info("ingesting %d chunks", len(chunks))
    for chunk in chunks:
        print("chunk", chunk)
    return len(chunks)
