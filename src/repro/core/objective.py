"""The optimization objective f(S) and its submodular structure (paper §V).

For a query ``q_i`` with candidate clause set ``P_i`` and a pushed-down set
``S``, the probability that a new tuple is filtered out for ``q_i`` is, under
the independence assumption,

    f(q_i, S) = 1 − Π_{p ∈ P_i ∩ S} sel(p)

and the expected benefit over the workload is

    f(S) = Σ_i freq(q_i) · f(q_i, S).

Section V-B proves f is submodular (diminishing marginal returns caused by
clause overlap across queries); :func:`is_submodular_on` re-checks the
defining inequality numerically and is used by the property-based tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from .predicates import Clause, Query, Workload

ClauseSet = FrozenSet[Clause]


class SelectionObjective:
    """Evaluate f(S) and marginal gains for a fixed workload and stats.

    Args:
        workload: The prospective queries Q.
        selectivities: Estimated ``sel(p)`` per candidate clause, the
            fraction of tuples *satisfying* the clause, in [0, 1].  Every
            clause in the workload's candidate pool must be present.
    """

    def __init__(self, workload: Workload,
                 selectivities: Mapping[Clause, float]):
        self._workload = workload
        missing = [
            c for c in workload.candidate_pool if c not in selectivities
        ]
        if missing:
            raise ValueError(
                f"missing selectivity estimates for {len(missing)} clauses, "
                f"first: {missing[0].sql()}"
            )
        bad = {
            c: s for c, s in selectivities.items() if not 0.0 <= s <= 1.0
        }
        if bad:
            raise ValueError(f"selectivities must lie in [0, 1]: {bad}")
        self._sel: Dict[Clause, float] = dict(selectivities)
        # Normalized frequencies so objective values are comparable across
        # workloads of different sizes.
        self._freq = workload.normalized_frequencies()
        # Flat (frequency, clause tuple) pairs: the evaluation hot path.
        self._flat: List[Tuple[float, Tuple[Clause, ...]]] = [
            (self._freq[q], q.clauses) for q in workload.queries
        ]

    @property
    def workload(self) -> Workload:
        """The workload this objective scores against."""
        return self._workload

    def selectivity(self, clause: Clause) -> float:
        """sel(p) for one clause."""
        return self._sel[clause]

    def query_benefit(self, query: Query, selected: ClauseSet) -> float:
        """f(q, S): probability a tuple is filtered for *query*."""
        product = 1.0
        for c in query.clauses:
            if c in selected:
                product *= self._sel[c]
        return 1.0 - product

    def value(self, selected: Iterable[Clause]) -> float:
        """f(S): expected filtering benefit across the workload."""
        selected_set = (
            selected if isinstance(selected, frozenset)
            else frozenset(selected)
        )
        total = 0.0
        sel = self._sel
        for freq, clauses in self._flat:
            product = 1.0
            for c in clauses:
                if c in selected_set:
                    product *= sel[c]
            total += freq * (1.0 - product)
        return total

    def marginal_gain(self, selected: ClauseSet, candidate: Clause) -> float:
        """f(S ∪ {p}) − f(S) without re-scoring unaffected queries."""
        if candidate in selected:
            return 0.0
        gain = 0.0
        sel = self._sel
        candidate_sel = sel[candidate]
        for freq, clauses in self._flat:
            if candidate not in clauses:
                continue
            product = 1.0
            for c in clauses:
                if c in selected:
                    product *= sel[c]
            # Adding the candidate scales the survival product by its
            # selectivity, so the query's benefit rises by product·(1−sel).
            gain += freq * product * (1.0 - candidate_sel)
        return gain


def is_monotone_step(objective: SelectionObjective, selected: ClauseSet,
                     candidate: Clause) -> bool:
    """Check f(S ∪ {p}) ≥ f(S) for one step (monotonicity witness)."""
    return objective.marginal_gain(selected, candidate) >= -1e-12


def is_submodular_on(objective: SelectionObjective,
                     sets: Iterable[ClauseSet]) -> bool:
    """Numerically verify f(S) + f(T) ≥ f(S ∩ T) + f(S ∪ T) over set pairs.

    Exhaustive over the given collection; intended for tests with small
    candidate pools, mirroring the §V-B proof obligation.
    """
    sets = list(sets)
    for s, t in combinations(sets, 2):
        lhs = objective.value(s) + objective.value(t)
        rhs = objective.value(s & t) + objective.value(s | t)
        if lhs < rhs - 1e-9:
            return False
    return True


def all_subsets(clauses: Iterable[Clause]) -> List[ClauseSet]:
    """Every subset of *clauses* (test helper; exponential — keep small)."""
    clauses = list(clauses)
    subsets: List[ClauseSet] = []
    for r in range(len(clauses) + 1):
        for combo in combinations(clauses, r):
            subsets.append(frozenset(combo))
    return subsets
