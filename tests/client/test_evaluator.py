"""Unit tests for the client-side evaluator."""

import pytest

from repro.client import ClientEvaluator
from repro.core import Budget, CostModel, DEFAULT_COEFFICIENTS, manual_plan
from repro.core import clause, exact, key_value, substring
from repro.rawjson import JsonChunk, dump_record

RECORDS = [
    {"name": "Bob", "age": 10, "text": "nice delicious food"},
    {"name": "Eve", "age": 10, "text": "awful"},
    {"name": "Bob", "age": 3, "text": "delicious"},
    {"name": "Zed", "age": 9, "text": "fine"},
]

C_NAME = clause(exact("name", "Bob"))
C_AGE = clause(key_value("age", 10))
C_TEXT = clause(substring("text", "delicious"))


@pytest.fixture()
def plan():
    model = CostModel(DEFAULT_COEFFICIENTS, 80)
    sels = {C_NAME: 0.5, C_AGE: 0.5, C_TEXT: 0.5}
    return manual_plan([C_NAME, C_AGE, C_TEXT], sels, model)


@pytest.fixture()
def chunk():
    return JsonChunk(0, [dump_record(r) for r in RECORDS])


class TestAnnotate:
    def test_bitvectors_match_semantics(self, plan, chunk):
        evaluator = ClientEvaluator(plan.entries)
        evaluator.annotate(chunk)
        assert chunk.bitvectors[0].to_bits() == [1, 0, 1, 0]  # name=Bob
        assert chunk.bitvectors[1].to_bits() == [1, 1, 0, 0]  # age=10
        assert chunk.bitvectors[2].to_bits() == [1, 0, 1, 0]  # delicious

    def test_report_counts(self, plan, chunk):
        evaluator = ClientEvaluator(plan.entries)
        report = evaluator.annotate(chunk)
        assert report.records == 4
        assert report.predicates == 3
        assert report.matches == {0: 2, 1: 2, 2: 2}
        assert report.wall_seconds >= 0

    def test_modeled_cost_scales_with_records(self, plan):
        evaluator = ClientEvaluator(plan.entries)
        small = JsonChunk(0, [dump_record(RECORDS[0])] * 2)
        large = JsonChunk(1, [dump_record(RECORDS[0])] * 8)
        r_small = evaluator.annotate(small)
        r_large = evaluator.annotate(large)
        assert r_large.modeled_us == pytest.approx(4 * r_small.modeled_us)
        assert r_small.modeled_us_per_record() == pytest.approx(
            plan.total_cost_us()
        )

    def test_predicate_ids_exposed(self, plan):
        assert ClientEvaluator(plan.entries).predicate_ids == [0, 1, 2]

    def test_empty_report(self, plan):
        evaluator = ClientEvaluator(plan.entries)
        report = evaluator.annotate(JsonChunk(0, []))
        assert report.modeled_us_per_record() == 0.0
