"""Fixture: a clean package surface."""

from .helpers import thing


def fetch(into=None):
    if into is None:
        into = {}
    try:
        return into["k"]
    except KeyError:
        return None


__all__ = ["fetch", "thing"]
