"""Concurrent remote query serving: throughput, tails, and exactness.

The service layer's headline claim, measured over real sockets:

1. **Mid-load serving** — while a fleet load is in flight, N remote
   readers issue ``snapshot_query()`` over TCP against the service and
   every answer must be internally consistent (monotone non-decreasing
   ``COUNT(*)`` as the load progresses).  Reported: queries served
   mid-load and their latency distribution.
2. **Scaling + identity** — after the load commits, sweeps client counts
   and reports aggregate queries/sec plus p50/p95/p99 latency per count.
   Every remote result is asserted *byte-identical* (canonical rows
   serialization) to the same query executed in-process on the served
   session.  Asserted unconditionally.
3. **Saturation** — a service configured with one execution slot and a
   one-deep queue under a client burst must surface BUSY
   (:class:`repro.service.RemoteBusyError`) instead of queuing without
   bound, and recover to serve cleanly afterwards.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_concurrent_serving.py``
(set ``REPRO_BENCH_SMOKE=1`` for a <60 s smoke configuration).
"""

from __future__ import annotations

import os
import threading
import time

from conftest import run_once

from repro.api import (
    Budget,
    CiaoSession,
    ClientPopulation,
    DeploymentConfig,
    LineSource,
)
from repro.bench import emit, emit_json
from repro.data import make_generator
from repro.service import (
    CiaoService,
    RemoteBusyError,
    RemoteSession,
    canonical_result_bytes,
)
from repro.workload import table3_workload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_RECORDS = 1600 if SMOKE else 6000
CHUNK_SIZE = 200
N_CLIENTS = 4
N_SHARDS = 2
SEED = 20260807

MIDLOAD_READERS = 3
CLIENT_COUNTS = (1, 2, 4) if SMOKE else (1, 2, 4, 8)
QUERIES_PER_CLIENT = 8 if SMOKE else 25

SQL_COUNT = "SELECT COUNT(*) FROM t"


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1,
              int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[idx]


def _make_session(tmp_path):
    generator = make_generator("yelp", SEED)
    source = LineSource(generator.raw_lines(N_RECORDS), name="yelp")
    workload = table3_workload("yelp", "A", seed=SEED, n_queries=10)
    config = DeploymentConfig(
        mode="fleet",
        n_shards=N_SHARDS,
        shard_mode="thread",
        seal_interval=2,
        chunk_size=CHUNK_SIZE,
        population=ClientPopulation.generate(N_CLIENTS, seed=SEED),
        aggregate_budget=Budget(8.0),
    )
    session = CiaoSession(workload, source=source, config=config,
                          data_dir=tmp_path / "served", seed=SEED)
    session.plan(Budget(20.0), sample_size=min(1000, N_RECORDS),
                 avg_record_length=160)
    return session, workload


def _midload_reader(address, stop, latencies, counts, errors):
    try:
        with RemoteSession(address, client_id=f"mid-{id(stop)}") as remote:
            while not stop.is_set():
                start = time.perf_counter()
                result = remote.snapshot_query(SQL_COUNT)
                latencies.append(time.perf_counter() - start)
                counts.append(result.scalar())
    except Exception as exc:  # pragma: no cover - surfaced by the test
        errors.append(exc)


def _sweep_reader(address, reader_id, latencies, errors):
    try:
        with RemoteSession(address,
                           client_id=f"sweep-{reader_id}") as remote:
            for _ in range(QUERIES_PER_CLIENT):
                start = time.perf_counter()
                remote.query(SQL_COUNT)
                latencies.append(time.perf_counter() - start)
    except Exception as exc:  # pragma: no cover - surfaced by the test
        errors.append(exc)


def test_concurrent_remote_serving(benchmark, tmp_path, results_dir):
    session, workload = _make_session(tmp_path)

    def experiment():
        service = CiaoService(session)
        address = service.address

        # 1. Fleet load in flight, N snapshot readers over sockets.
        job = session.load()
        stop = threading.Event()
        mid_lat, mid_counts, errors = [], [], []
        readers = [
            threading.Thread(
                target=_midload_reader,
                args=(address, stop, mid_lat, mid_counts, errors),
            )
            for _ in range(MIDLOAD_READERS)
        ]
        for t in readers:
            t.start()
        report = job.result()
        stop.set()
        for t in readers:
            t.join()

        # 2. Post-load sweep: queries/sec and tails vs client count.
        sweep = []
        for n in CLIENT_COUNTS:
            latencies = []
            threads = [
                threading.Thread(target=_sweep_reader,
                                 args=(address, f"{n}-{i}",
                                       latencies, errors))
                for i in range(n)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            latencies.sort()
            sweep.append({
                "clients": n,
                "queries": len(latencies),
                "queries_per_second": len(latencies) / elapsed,
                "p50_ms": _percentile(latencies, 0.50) * 1e3,
                "p95_ms": _percentile(latencies, 0.95) * 1e3,
                "p99_ms": _percentile(latencies, 0.99) * 1e3,
            })

        # 3. Remote ≡ in-process, byte for byte, over the workload.
        with RemoteSession(address, client_id="verify") as remote:
            pairs = [
                (canonical_result_bytes(remote.query(q.sql("t"))),
                 canonical_result_bytes(session.query(q.sql("t"))))
                for q in workload.queries
            ]
        return service, report, mid_lat, mid_counts, errors, sweep, pairs

    (service, report, mid_lat, mid_counts, errors, sweep,
     pairs) = run_once(benchmark, experiment)
    admission = service.admission.stats
    service.close()
    session.close()

    assert not errors, f"remote readers failed: {errors[:3]}"
    assert report.no_record_loss
    # Mid-load snapshot counts are monotone per reader stream only in
    # aggregate bounds: none may exceed the final count.
    assert all(0 <= c <= N_RECORDS for c in mid_counts)
    for remote_bytes, local_bytes in pairs:
        assert remote_bytes == local_bytes, (
            "remote result diverged from in-process execution"
        )
    assert admission.granted == admission.completed
    assert admission.rejected == 0

    mid_lat.sort()
    lines = [
        f"concurrent remote serving ({N_RECORDS} records, "
        f"{N_CLIENTS}-client fleet load, {N_SHARDS} thread shards, "
        f"{MIDLOAD_READERS} mid-load socket readers):",
        f"  mid-load: {len(mid_lat)} snapshot queries served during the "
        f"load, p50 {_percentile(mid_lat, 0.5) * 1e3:.2f} ms, "
        f"p95 {_percentile(mid_lat, 0.95) * 1e3:.2f} ms",
        "  post-load sweep:",
        "  clients   queries/s      p50       p95       p99",
    ]
    for row in sweep:
        lines.append(
            f"  {row['clients']:7d}   {row['queries_per_second']:9.1f}"
            f"   {row['p50_ms']:6.2f}ms  {row['p95_ms']:6.2f}ms"
            f"  {row['p99_ms']:6.2f}ms"
        )
    lines.append(
        f"  admission: granted={admission.granted} "
        f"completed={admission.completed} rejected={admission.rejected} "
        f"peak_active={admission.peak_active}"
    )
    lines.append(
        f"  remote ≡ in-process: {len(pairs)} workload queries "
        f"byte-identical"
    )
    emit("concurrent_serving", "\n".join(lines), results_dir)
    emit_json("BENCH_concurrent_serving", {
        "config": {
            "n_records": N_RECORDS,
            "fleet_clients": N_CLIENTS,
            "n_shards": N_SHARDS,
            "shard_mode": "thread",
            "midload_readers": MIDLOAD_READERS,
            "queries_per_client": QUERIES_PER_CLIENT,
            "smoke": SMOKE,
        },
        "midload": {
            "queries_served": len(mid_lat),
            "p50_ms": _percentile(mid_lat, 0.50) * 1e3,
            "p95_ms": _percentile(mid_lat, 0.95) * 1e3,
        },
        "sweep": sweep,
        "admission": {
            "granted": admission.granted,
            "completed": admission.completed,
            "rejected": admission.rejected,
            "peak_active": admission.peak_active,
            "peak_queued": admission.peak_queued,
        },
        "remote_identical_to_inprocess": True,
    }, results_dir)


def test_admission_saturation_surfaces_busy(benchmark, tmp_path,
                                            results_dir):
    """One slot, one-deep queue, a burst — BUSY must appear, then heal."""
    session, _ = _make_session(tmp_path)

    def experiment():
        session.load().result()
        service = CiaoService(session, query_max_active=1,
                              query_max_pending=1,
                              admission_timeout=0.05)
        busy = []
        lock = threading.Lock()

        def hammer(i):
            with RemoteSession(service.address,
                               client_id="same-client") as remote:
                for _ in range(6):
                    try:
                        remote.query(SQL_COUNT)
                    except RemoteBusyError:
                        with lock:
                            busy.append(i)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # After the burst, a fresh client is served normally.
        with RemoteSession(service.address, client_id="after") as remote:
            final = remote.query(SQL_COUNT).scalar()
        stats = service.admission.stats
        service.close()
        return busy, final, stats

    busy, final, stats = run_once(benchmark, experiment)
    session.close()
    assert final == N_RECORDS
    assert busy, (
        "a 4-thread burst against max_active=1/max_pending=1 never saw "
        "BUSY — admission control is not bounding the queue"
    )
    assert stats.rejected == len(busy)
    assert stats.granted == stats.completed
    emit_json("BENCH_concurrent_serving_saturation", {
        "burst_threads": 4,
        "requests_per_thread": 6,
        "busy_rejections": len(busy),
        "granted": stats.granted,
        "completed": stats.completed,
        "recovered_final_count": final,
        "smoke": SMOKE,
    }, results_dir)
