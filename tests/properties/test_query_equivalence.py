"""End-to-end property: the CIAO path answers every query exactly.

Random records flow through the full pipeline — client annotation, partial
loading (mask honoured), Parquet-lite conversion, bit-vector skipping,
residual filtering — and the COUNT(*) answers must equal a brute-force
oracle evaluated directly on the parsed records.  This composes every
single-sided error tolerance in the system and checks the total is exact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import SimulatedClient
from repro.core import (
    Clause,
    CostModel,
    DEFAULT_COEFFICIENTS,
    Query,
    Workload,
    exact,
    key_present,
    key_value,
    manual_plan,
    substring,
)
from repro.rawjson import dump_record
from repro.server import CiaoServer

NAMES = ["Ann", "Bob", "Cat", ""]
WORDS = ["kw", "other", "kw plus", ""]


@st.composite
def record_lists(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    records = []
    for _ in range(n):
        record = {
            "name": draw(st.sampled_from(NAMES)),
            "age": draw(st.integers(min_value=0, max_value=4)),
            "text": draw(st.sampled_from(WORDS)),
        }
        if draw(st.booleans()):
            record["email"] = draw(st.sampled_from(["e@x", None]))
        records.append(record)
    return records


@st.composite
def predicate_clauses(draw):
    kind = draw(st.sampled_from(["exact", "kv", "sub", "present", "disj"]))
    if kind == "exact":
        return Clause((exact("name", draw(st.sampled_from(NAMES[:3]))),))
    if kind == "kv":
        return Clause(
            (key_value("age", draw(st.integers(min_value=0, max_value=4))),)
        )
    if kind == "sub":
        return Clause((substring("text", "kw"),))
    if kind == "present":
        return Clause((key_present("email"),))
    return Clause((
        exact("name", draw(st.sampled_from(NAMES[:3]))),
        key_value("age", draw(st.integers(min_value=0, max_value=4))),
    ))


@st.composite
def pipelines(draw):
    records = draw(record_lists())
    n_queries = draw(st.integers(min_value=1, max_value=3))
    queries = tuple(
        Query(
            tuple(draw(st.lists(predicate_clauses(), min_size=1,
                                max_size=2, unique=True))),
            name=f"q{i}",
        )
        for i in range(n_queries)
    )
    workload = Workload(queries)
    pool = list(workload.candidate_pool)
    n_push = draw(st.integers(min_value=0, max_value=len(pool)))
    pushed = pool[:n_push]
    partial_mode = draw(st.sampled_from(["auto", "on", "off"]))
    chunk_size = draw(st.sampled_from([3, 7, 50]))
    return records, workload, pushed, partial_mode, chunk_size


@given(pipeline=pipelines())
@settings(max_examples=60, deadline=None)
def test_ciao_pipeline_answers_match_oracle(pipeline, tmp_path_factory):
    records, workload, pushed, partial_mode, chunk_size = pipeline
    workdir = tmp_path_factory.mktemp("pipe")

    plan = None
    if pushed:
        model = CostModel(DEFAULT_COEFFICIENTS, 60)
        sels = {c: 0.5 for c in pushed}
        plan = manual_plan(pushed, sels, model)

    server = CiaoServer(
        workdir, plan=plan, workload=workload, partial_loading=partial_mode
    )
    client = SimulatedClient("c", plan=plan, chunk_size=chunk_size)
    lines = [dump_record(r) for r in records]
    for chunk in client.process(lines):
        server.ingest(chunk)
    server.finalize_loading()

    for query in workload.queries:
        expected = sum(1 for r in records if query.evaluate(r))
        got = server.query(query.sql("t")).scalar()
        assert got == expected, (
            f"{query.sql('t')}: got {got}, want {expected} "
            f"(pushed={len(pushed)}, partial={partial_mode}, "
            f"chunk={chunk_size})"
        )
