"""RFC 4180-style CSV reading and writing.

Fields are quoted only when they contain the delimiter, the quote
character, or a newline; quotes inside quoted fields are doubled.  The
writer/parser pair is deterministic and self-inverse, which — exactly as
with the JSON writer — is what lets raw pattern matching guarantee no
false negatives: the matcher knows the one serialized form a value can
take.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple


class CsvError(ValueError):
    """Malformed CSV line or inconsistent row shape."""


@dataclass(frozen=True)
class CsvDialect:
    """Delimiter and quote configuration."""

    delimiter: str = ","
    quote: str = '"'

    def __post_init__(self) -> None:
        if len(self.delimiter) != 1 or len(self.quote) != 1:
            raise CsvError("delimiter and quote must be single characters")
        if self.delimiter == self.quote:
            raise CsvError("delimiter and quote must differ")


DEFAULT_DIALECT = CsvDialect()


def escape_field(value: str, dialect: CsvDialect = DEFAULT_DIALECT) -> str:
    """The serialized form of one field."""
    needs_quoting = (
        dialect.delimiter in value
        or dialect.quote in value
        or "\n" in value
        or "\r" in value
    )
    if not needs_quoting:
        return value
    doubled = value.replace(dialect.quote, dialect.quote * 2)
    return f"{dialect.quote}{doubled}{dialect.quote}"


def write_row(values: Sequence[str],
              dialect: CsvDialect = DEFAULT_DIALECT) -> str:
    """Serialize one row of string fields."""
    return dialect.delimiter.join(
        escape_field(v, dialect) for v in values
    )


def parse_line_details(line: str,
                       dialect: CsvDialect = DEFAULT_DIALECT
                       ) -> List[Tuple[str, bool]]:
    """Parse one CSV line into ``(text, was_quoted)`` fields.

    The quoting flag is what disambiguates SQL NULL from the empty
    string (PostgreSQL COPY semantics): an unquoted empty field is NULL,
    a quoted empty field (``""``) is ``''``.
    """
    fields: List[Tuple[str, bool]] = []
    buffer: List[str] = []
    quoted = False
    in_quotes = False
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if in_quotes:
            if ch == dialect.quote:
                if i + 1 < n and line[i + 1] == dialect.quote:
                    buffer.append(dialect.quote)
                    i += 2
                    continue
                in_quotes = False
                i += 1
                continue
            buffer.append(ch)
            i += 1
            continue
        if ch == dialect.quote:
            if buffer:
                raise CsvError(
                    f"quote in the middle of an unquoted field at {i}"
                )
            in_quotes = True
            quoted = True
            i += 1
            continue
        if ch == dialect.delimiter:
            fields.append(("".join(buffer), quoted))
            buffer = []
            quoted = False
            i += 1
            continue
        buffer.append(ch)
        i += 1
    if in_quotes:
        raise CsvError("unterminated quoted field")
    fields.append(("".join(buffer), quoted))
    return fields


def parse_line(line: str,
               dialect: CsvDialect = DEFAULT_DIALECT) -> List[str]:
    """Parse one CSV line into its field texts."""
    return [text for text, _ in parse_line_details(line, dialect)]


class CsvCodec:
    """Dict-record ↔ CSV-line conversion for a fixed column order.

    Values serialize via ``str`` with JSON-style booleans (``true`` /
    ``false``) and ``""`` for None; decoding optionally restores int,
    float and bool types per column.
    """

    def __init__(self, columns: Sequence[str],
                 types: Optional[Mapping[str, type]] = None,
                 dialect: CsvDialect = DEFAULT_DIALECT):
        if not columns:
            raise CsvError("a codec needs at least one column")
        if len(set(columns)) != len(columns):
            raise CsvError("duplicate column names")
        self.columns = list(columns)
        self.types = dict(types or {})
        unknown = set(self.types) - set(self.columns)
        if unknown:
            raise CsvError(f"types given for unknown columns: {unknown}")
        self.dialect = dialect

    def field_text(self, value: Any) -> str:
        """The pre-escaping text form of one value."""
        if value is None:
            return ""
        if value is True:
            return "true"
        if value is False:
            return "false"
        return str(value)

    def encode_record(self, record: Mapping[str, Any]) -> str:
        """Serialize one record to a CSV line.

        ``None`` becomes an unquoted empty field; an empty *string* is
        written quoted (``""``) so the two survive a roundtrip —
        PostgreSQL COPY semantics.
        """
        extra = set(record) - set(self.columns)
        if extra:
            raise CsvError(f"record has unknown columns: {sorted(extra)}")
        pieces: List[str] = []
        for column in self.columns:
            value = record.get(column)
            if value == "" and isinstance(value, str):
                pieces.append(self.dialect.quote * 2)
            else:
                pieces.append(
                    escape_field(self.field_text(value), self.dialect)
                )
        return self.dialect.delimiter.join(pieces)

    def decode_line(self, line: str) -> Dict[str, Any]:
        """Parse one CSV line back into a typed record."""
        fields = parse_line_details(line, self.dialect)
        if len(fields) != len(self.columns):
            raise CsvError(
                f"expected {len(self.columns)} fields, got {len(fields)}"
            )
        record: Dict[str, Any] = {}
        for column, (text, quoted) in zip(self.columns, fields):
            record[column] = self._restore(column, text, quoted)
        return record

    def _restore(self, column: str, text: str, quoted: bool) -> Any:
        target = self.types.get(column, str)
        if text == "":
            if not quoted:
                return None
            if target is str:
                return ""
            raise CsvError(
                f"quoted empty field in {target.__name__} column {column}"
            )
        if target is bool:
            if text == "true":
                return True
            if text == "false":
                return False
            raise CsvError(f"bad boolean {text!r} in column {column}")
        if target in (int, float):
            try:
                return target(text)
            except ValueError:
                raise CsvError(
                    f"bad {target.__name__} {text!r} in column {column}"
                ) from None
        return text
