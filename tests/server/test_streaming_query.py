"""Query-during-load: streaming snapshots, work stealing, and lifecycle.

The contract under test: a sharded server answers queries *while loading*,
and every mid-load answer equals what serial ingest of exactly the covered
chunks would answer; after finalize, answers equal serial ingest of the
whole stream.  Plus the lifecycle fixes that make the seam safe — explicit
``loading → finalized`` states and loud errors on ingest-after-finalize.
"""

import pytest

from repro.bitvec import BitVector
from repro.client import encode_chunk
from repro.rawjson import JsonChunk, dump_record
from repro.server import CiaoServer, ServerConfig
from repro.storage import JsonSideStore
from repro.server.pipeline import ShardedIngestPipeline

SEED = 4242
N_CHUNKS = 10
CHUNK_RECORDS = 30


def make_chunks(n_chunks=N_CHUNKS, n_records=CHUNK_RECORDS):
    chunks = []
    for cid in range(n_chunks):
        records = [
            dump_record({
                "i": (cid * n_records + k) % 7,
                "v": cid * n_records + k,
                "tag": f"t{k % 3}",
            })
            for k in range(n_records)
        ]
        chunks.append(JsonChunk(cid, records))
    return chunks


def make_skewed_chunks(n_shards=4, rounds=4, big=120, small=10):
    """Every n_shards-th chunk is huge: round-robin pins them to shard 0."""
    chunks = []
    cid = 0
    for _ in range(rounds):
        for pos in range(n_shards):
            size = big if pos == 0 else small
            records = [
                dump_record({"i": (cid * 1000 + k) % 5, "v": cid * 1000 + k})
                for k in range(size)
            ]
            chunks.append(JsonChunk(cid, records))
            cid += 1
    return chunks


def serial_reference(tmp_path, chunks, tag):
    """Serial ingest of *chunks*, finalized — the ground truth."""
    server = CiaoServer(tmp_path / tag)
    for chunk in chunks:
        server.ingest(chunk)
    server.finalize_loading()
    return server


QUERIES = [
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(*) FROM t WHERE i = 3",
    "SELECT SUM(v) FROM t WHERE i = 1",
]


def answers(server):
    return [server.query(sql).scalar() for sql in QUERIES]


class TestStreamingQueryEquivalence:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_mid_load_equals_serial_prefix(self, tmp_path, n_shards):
        chunks = make_chunks()
        prefix = len(chunks) // 2
        server = CiaoServer(tmp_path / "stream", n_shards=n_shards,
                            shard_mode="thread")
        for chunk in chunks[:prefix]:
            server.ingest(chunk)
        server.quiesce()
        reference = serial_reference(tmp_path, chunks[:prefix], "ref-prefix")
        assert answers(server) == answers(reference)
        assert server.state == "loading"
        # Loading continues after the mid-load queries.
        for chunk in chunks[prefix:]:
            server.ingest(chunk)
        server.finalize_loading()
        full = serial_reference(tmp_path, chunks, "ref-full")
        assert answers(server) == answers(full)
        assert server.load_summary.received == full.load_summary.received

    def test_one_shard_pipeline_streams_via_snapshot_scan(self, tmp_path):
        """1-shard arm, driven at the engine level: pipeline snapshots
        applied to a TableEntry in snapshot-scan mode must answer like
        serial ingest of the prefix."""
        from repro.engine.catalog import Catalog, TableEntry
        from repro.engine.executor import Executor
        from repro.storage import CompositeSidelineView

        chunks = make_chunks()
        prefix = 5
        side = JsonSideStore(tmp_path / "t.sideline.jsonl")
        pipeline = ShardedIngestPipeline(
            tmp_path / "t.pql", side, n_shards=1, partial_loading=False,
            mode="thread", seal_interval=2,
        )
        table = TableEntry(name="t", side_store=side)
        catalog = Catalog()
        catalog.register(table)
        executor = Executor(catalog)
        for chunk in chunks[:prefix]:
            pipeline.submit(chunk)
        snap = pipeline.quiesce()
        table.apply_snapshot(
            snap.version, snap.parquet_paths,
            CompositeSidelineView(side.path, snap.sideline_views),
        )
        assert table.in_snapshot_mode
        reference = serial_reference(tmp_path, chunks[:prefix], "ref")
        got = [executor.execute(sql).scalar() for sql in QUERIES]
        assert got == answers(reference)
        for chunk in chunks[prefix:]:
            pipeline.submit(chunk)
        pipeline.finalize()
        table.clear_snapshot()
        table.parquet_paths = pipeline.parquet_paths
        table.invalidate()
        full = serial_reference(tmp_path, chunks, "full")
        got = [executor.execute(sql).scalar() for sql in QUERIES]
        assert got == answers(full)

    def test_mid_load_group_by_matches(self, tmp_path):
        chunks = make_chunks()
        server = CiaoServer(tmp_path / "s", n_shards=3, shard_mode="thread")
        for chunk in chunks[:6]:
            server.ingest(chunk)
        server.quiesce()
        reference = serial_reference(tmp_path, chunks[:6], "ref")
        sql = "SELECT tag, COUNT(*) FROM t GROUP BY tag"
        got = sorted(
            (r["tag"], r["count(*)"]) for r in server.query(sql).rows
        )
        want = sorted(
            (r["tag"], r["count(*)"]) for r in reference.query(sql).rows
        )
        assert got == want

    def test_snapshot_covers_exactly_reported_chunks(self, tmp_path):
        """Without quiescing, whatever the snapshot covers must be exact."""
        chunks = make_chunks()
        server = CiaoServer(tmp_path / "s", n_shards=2, shard_mode="thread")
        for chunk in chunks:
            server.ingest(chunk)
        # No quiesce: the snapshot may cover any subset of the stream.
        result = server.query("SELECT COUNT(*) FROM t")
        covered = server._pipeline.snapshot()
        # The count the query saw cannot exceed what is now covered, and
        # must equal some consistent chunk-set size (multiples of whole
        # chunks: every chunk is all-in or all-out).
        assert result.scalar() % CHUNK_RECORDS == 0
        assert result.scalar() <= covered.summary.received
        server.finalize_loading()
        assert server.query(
            "SELECT COUNT(*) FROM t").scalar() == N_CHUNKS * CHUNK_RECORDS

    def test_mid_load_with_partial_loading_sideline(self, tmp_path):
        """Snapshot view = sealed parts + sideline watermarks, together."""
        n = 20
        side = JsonSideStore(tmp_path / "t.sideline.jsonl")
        pipeline = ShardedIngestPipeline(
            tmp_path / "t.pql", side, n_shards=2, partial_loading=True,
            mode="thread", seal_interval=2,
        )
        for cid in range(6):
            records = [dump_record({"i": cid * n + k}) for k in range(n)]
            chunk = JsonChunk(cid, records)
            chunk.attach(
                0, BitVector.from_bits([k % 4 == 0 for k in range(n)])
            )
            pipeline.submit(chunk)
        snap = pipeline.quiesce()
        assert snap.complete
        assert snap.summary.loaded == 6 * 5
        assert snap.summary.sidelined == 6 * 15
        # The sideline views expose exactly the sidelined records.
        viewed = sum(1 for view in snap.sideline_views
                     for _ in view.iter_raw())
        assert viewed == snap.summary.sidelined
        pipeline.finalize()

    def test_process_mode_mid_load(self, tmp_path):
        chunks = make_chunks(n_chunks=6)
        server = CiaoServer(tmp_path / "s", n_shards=2,
                            shard_mode="process")
        for chunk in chunks[:3]:
            server.ingest(encode_chunk(chunk))
        server.quiesce()
        reference = serial_reference(tmp_path, chunks[:3], "ref")
        assert answers(server) == answers(reference)
        for chunk in chunks[3:]:
            server.ingest(encode_chunk(chunk))
        server.finalize_loading()
        full = serial_reference(tmp_path, chunks, "full")
        assert answers(server) == answers(full)


class TestWorkStealing:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_equivalent_to_round_robin_on_skewed_chunks(self, tmp_path,
                                                        mode):
        chunks = make_skewed_chunks()
        results = {}
        for dispatch in ("work-stealing", "round-robin"):
            server = CiaoServer(
                tmp_path / dispatch, n_shards=4, shard_mode=mode,
                dispatch=dispatch,
            )
            for chunk in chunks:
                server.ingest(chunk)
            summary = server.finalize_loading()
            results[dispatch] = (
                answers(server),
                summary.received, summary.loaded, summary.sidelined,
                [r.chunk_id for r in summary.reports],
            )
        assert results["work-stealing"] == results["round-robin"]

    def test_reports_in_submission_order_under_stealing(self, tmp_path):
        chunks = make_skewed_chunks(rounds=2)
        server = CiaoServer(tmp_path, n_shards=3, shard_mode="thread")
        for chunk in chunks:
            server.ingest(chunk)
        summary = server.finalize_loading()
        assert [r.chunk_id for r in summary.reports] == [
            c.chunk_id for c in chunks
        ]


class TestLifecycle:
    def test_states(self, tmp_path):
        server = CiaoServer(tmp_path)
        assert server.state == "loading"
        server.ingest(make_chunks(1)[0])
        server.finalize_loading()
        assert server.state == "finalized"

    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_ingest_after_finalize_raises(self, tmp_path, n_shards):
        server = CiaoServer(tmp_path, n_shards=n_shards,
                            shard_mode="thread")
        chunk = make_chunks(1)[0]
        server.ingest(chunk)
        server.finalize_loading()
        with pytest.raises(RuntimeError, match="finalized server"):
            server.ingest(chunk)
        with pytest.raises(RuntimeError, match="finalized server"):
            server.ingest(encode_chunk(chunk))

    def test_ingest_channel_after_finalize_raises(self, tmp_path):
        from repro.simulate import MemoryChannel

        server = CiaoServer(tmp_path)
        server.finalize_loading()
        channel = MemoryChannel()
        channel.send(encode_chunk(make_chunks(1)[0]))
        with pytest.raises(RuntimeError, match="finalized server"):
            server.ingest_channel(channel)
        # The channel was not drained by the failed call.
        assert channel.pending() == 1

    def test_sharded_query_does_not_finalize(self, tmp_path):
        server = CiaoServer(tmp_path, n_shards=2, shard_mode="thread")
        server.ingest(make_chunks(1)[0])
        server.quiesce()
        assert server.query("SELECT COUNT(*) FROM t").scalar() \
            == CHUNK_RECORDS
        assert server.state == "loading"
        server.ingest(make_chunks(2)[1])  # still accepts data
        server.finalize_loading()
        assert server.state == "finalized"

    def test_streaming_disabled_falls_back_to_auto_finalize(self, tmp_path):
        # seal_interval=None opts out of streaming; a mid-load query then
        # behaves like the legacy sharded server (finalize on first
        # query) instead of crashing on an impossible snapshot.
        server = CiaoServer(tmp_path, n_shards=2, shard_mode="thread",
                            seal_interval=None)
        server.ingest(make_chunks(1)[0])
        assert server.query("SELECT COUNT(*) FROM t").scalar() \
            == CHUNK_RECORDS
        assert server.state == "finalized"
        with pytest.raises(RuntimeError):
            CiaoServer(tmp_path / "q", n_shards=2, shard_mode="thread",
                       seal_interval=None).quiesce(timeout=1)

    def test_serial_query_still_auto_finalizes(self, tmp_path):
        # Documented serial-mode behavior: a half-written Parquet part has
        # no footer, so the first query seals loading.
        server = CiaoServer(tmp_path)
        server.ingest(make_chunks(1)[0])
        server.query("SELECT COUNT(*) FROM t")
        assert server.state == "finalized"

    def test_finalize_idempotent_and_summary_stable(self, tmp_path):
        server = CiaoServer(tmp_path, n_shards=2, shard_mode="thread")
        for chunk in make_chunks(4):
            server.ingest(chunk)
        first = server.finalize_loading()
        second = server.finalize_loading()
        assert first.received == second.received == 4 * CHUNK_RECORDS


class TestServerConfig:
    def test_from_config_round_trip(self, tmp_path):
        config = ServerConfig(
            data_dir=tmp_path, table_name="events", n_shards=2,
            shard_mode="thread", dispatch="round-robin", seal_interval=4,
        )
        server = CiaoServer.from_config(config)
        assert server.table_name == "events"
        assert server._pipeline is not None
        assert server._pipeline.dispatch == "round-robin"
        assert server._pipeline.seal_interval == 4
        server.ingest(make_chunks(1)[0])
        server.finalize_loading()
        assert server.query(
            "SELECT COUNT(*) FROM events").scalar() == CHUNK_RECORDS

    def test_from_config_serial(self, tmp_path):
        server = CiaoServer.from_config(ServerConfig(data_dir=tmp_path))
        assert server._pipeline is None
        assert server.state == "loading"

    def test_invalid_shard_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="shard_mode"):
            CiaoServer(tmp_path, shard_mode="fiber")
        with pytest.raises(ValueError, match="shard_mode"):
            CiaoServer.from_config(
                ServerConfig(data_dir=tmp_path, shard_mode="fiber")
            )

    def test_invalid_dispatch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="dispatch"):
            CiaoServer(tmp_path, n_shards=2, dispatch="lottery")
