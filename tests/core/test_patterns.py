"""Unit tests for SQL-predicate → pattern-string compilation (Table I)."""

import pytest

from repro.core import (
    PredicateKind,
    clause,
    compile_clause,
    compile_predicate,
    exact,
    key_present,
    key_value,
    prefix,
    substring,
    suffix,
)
from repro.rawjson import dump_record


class TestTable1Patterns:
    """The exact pattern strings of the paper's Table I."""

    def test_exact_match_quotes_operand(self):
        spec = compile_predicate(exact("name", "Bob"))
        assert spec.patterns == ('"Bob"',)

    def test_substring_match_is_bare(self):
        spec = compile_predicate(substring("text", "delicious"))
        assert spec.patterns == ("delicious",)

    def test_key_presence_quotes_key(self):
        spec = compile_predicate(key_present("email"))
        assert spec.patterns == ('"email"',)

    def test_key_value_has_two_patterns(self):
        spec = compile_predicate(key_value("age", 10))
        assert spec.patterns == ('"age":', "10")

    def test_bool_value_patterns(self):
        assert compile_predicate(key_value("on", True)).patterns[1] == "true"
        assert compile_predicate(
            key_value("on", False)).patterns[1] == "false"

    def test_prefix_anchors_with_opening_quote(self):
        assert compile_predicate(prefix("d", "2016-")).patterns == ('"2016-',)

    def test_suffix_anchors_with_closing_quote(self):
        assert compile_predicate(suffix("t", ":30")).patterns == (':30"',)


class TestEscaping:
    def test_operand_escaping_matches_writer(self):
        pred = exact("k", 'a"b\\c')
        spec = compile_predicate(pred)
        raw = dump_record({"k": 'a"b\\c'})
        assert spec.match(raw)

    def test_newline_in_operand(self):
        pred = substring("k", "two\nlines")
        raw = dump_record({"k": "has two\nlines inside"})
        assert compile_predicate(pred).match(raw)


class TestMatching:
    def test_spec_matches_agree_with_semantics_on_positives(self):
        record = {"name": "Bob", "age": 10, "text": "so delicious",
                  "email": "e@f.g", "date": "2016-03-04"}
        raw = dump_record(record)
        predicates = [
            exact("name", "Bob"),
            substring("text", "delicious"),
            prefix("date", "2016-"),
            suffix("date", "-04"),
            key_present("email"),
            key_value("age", 10),
        ]
        for pred in predicates:
            assert pred.evaluate(record)
            assert compile_predicate(pred).match(raw), pred.sql()

    def test_negatives_reject(self):
        raw = dump_record({"name": "Eve", "age": 3, "text": "meh"})
        for pred in [
            exact("name", "Bob"),
            substring("text", "delicious"),
            key_present("email"),
            key_value("age", 10),
        ]:
            assert not compile_predicate(pred).match(raw), pred.sql()


class TestCompiledClause:
    def test_disjunction_matches_any(self):
        cc = compile_clause(clause(exact("n", "A"), exact("n", "B")))
        assert cc.match(dump_record({"n": "B"}))
        assert not cc.match(dump_record({"n": "C"}))

    def test_matcher_closure_equivalent(self):
        cc = compile_clause(clause(key_value("age", 10)))
        matcher = cc.matcher()
        for rec in ({"age": 10}, {"age": 11}, {"other": 10}):
            raw = dump_record(rec)
            assert matcher(raw) == cc.match(raw)

    def test_matcher_closure_for_disjunction(self):
        cc = compile_clause(clause(exact("n", "A"), key_value("m", 2)))
        matcher = cc.matcher()
        raw = dump_record({"n": "Z", "m": 2})
        assert matcher(raw) and cc.match(raw)

    def test_total_pattern_length_sums_everything(self):
        cc = compile_clause(clause(key_value("age", 10)))
        assert cc.total_pattern_length() == len('"age":') + len("10")

    def test_search_count(self):
        cc = compile_clause(clause(key_value("a", 1), substring("t", "x")))
        assert cc.search_count() == 3  # two for key-value, one substring
